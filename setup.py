"""Setup shim.

The execution environment has no ``wheel`` package and no network, so PEP
517/660 editable installs (which must build a wheel) cannot work; keeping
the project metadata here lets ``pip install -e .`` use the legacy
setup.py-develop path, which works offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "ProChecker: automated security and privacy analysis of 4G LTE "
        "protocol implementations (ICDCS 2021 reproduction)"
    ),
    author="ProChecker reproduction",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
