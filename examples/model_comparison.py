#!/usr/bin/env python3
"""RQ2 model comparison: the extracted model refines LTEInspector's.

Extracts the reference implementation's FSM, checks the paper's
refinement relation against the hand-built LTEInspector model, prints the
mapping breakdown (the Fig. 7 cases), and writes both models in the
Graphviz-like model-generator language.
"""

from repro.baselines import SUBSTATE_MAP, lteinspector_ue
from repro.core import ProChecker
from repro.fsm import (STRICTER_CONDITION, check_refinement,
                       guard_strictness, to_dot)


def main() -> None:
    extracted = ProChecker("reference").extract()
    baseline = lteinspector_ue()

    print("=== Model sizes ===")
    for name, fsm in (("LTEInspector (hand-built)", baseline),
                      ("ProChecker (extracted)", extracted)):
        summary = fsm.summary()
        mean, peak = guard_strictness(fsm)
        print(f"  {name:28s}: {summary['states']} states, "
              f"{summary['transitions']} transitions, "
              f"{summary['conditions']} conditions "
              f"({mean:.2f} data predicates/transition)")

    print("\n=== Refinement check (Section VII-B definition) ===")
    report = check_refinement(baseline, extracted,
                              substate_map=SUBSTATE_MAP)
    print(f"  clause 1 (state mapping):      {report.states_ok}")
    print(f"  clause 2 (condition superset): {report.condition_superset}")
    print(f"           (action superset):    {report.action_superset}")
    print(f"  clause 3 (transition mapping): {report.mapping_counts()}")

    print("\nStricter-condition mappings (Fig. 7(i)):")
    for mapping in report.transition_mappings:
        if mapping.kind == STRICTER_CONDITION:
            print(f"  {mapping.abstract.describe()}")
            print(f"    + new conditions: "
                  f"{', '.join(mapping.new_conditions)}")

    print("\nNew conditions ProChecker extracted beyond the hand model "
          "(sample):")
    for condition in sorted(report.new_conditions)[:12]:
        print(f"  {condition}")

    print("\n=== Graphviz-like export (the model-generator input) ===")
    dot = to_dot(extracted)
    print("\n".join(dot.splitlines()[:12]))
    print(f"... ({len(dot.splitlines())} lines total; "
          f"feed to repro.fsm.from_dot / the threat instrumentor)")


if __name__ == "__main__":
    main()
