#!/usr/bin/env python3
"""Using the extracted FSM to enhance testing.

The paper notes the extracted model "can also be used to enhance testing
by detecting missing test cases".  This example extracts an
implementation's FSM and reports:

1. (state, stimulus) pairs the conformance suite never exercised —
   candidate new test cases;
2. dead states (protocol sinks) worth a resurrection test;
3. behavioural differences between two implementations' extracted models
   — each difference is a discriminating test the suite should pin down.
"""

from repro.core import ProChecker
from repro.fsm import dead_states, diff, missing_stimuli
from repro.lte import constants as c


def main() -> None:
    print("=== Extracting models ===")
    srsue = ProChecker("srsue").extract()
    oai = ProChecker("oai").extract()

    print("\n=== 1. Missing stimuli (srsue model) ===")
    gaps = missing_stimuli(srsue, alphabet=set(c.DOWNLINK_MESSAGES))
    print(f"{len(gaps)} unexercised (state, message) pairs; first ten:")
    for gap in gaps[:10]:
        print(f"  {gap.suggested_test_case()}")

    print("\n=== 2. Dead states ===")
    sinks = dead_states(srsue)
    if sinks:
        for state in sorted(sinks):
            print(f"  {state}: no observed way out — add a test that "
                  f"recovers from it")
    else:
        print("  none: every reachable state has observed exits")

    print("\n=== 3. Behavioural diff: srsue vs oai ===")
    delta = diff(srsue, oai)
    print(f"common transitions: {len(delta.common)}")
    print(f"only in srsue ({len(delta.only_in_first)}) — e.g.:")
    for transition in delta.only_in_first[:4]:
        print(f"  {transition.describe()}")
    print(f"only in oai ({len(delta.only_in_second)}) — e.g.:")
    for transition in delta.only_in_second[:4]:
        print(f"  {transition.describe()}")
    print("\nEach difference above is implementation-specific behaviour "
          "— exactly where\nthe Table I issues (I1-I6) live, and exactly "
          "what a conformance suite should\nassert explicitly.")


if __name__ == "__main__":
    main()
