#!/usr/bin/env python3
"""The paper's running example (Section V / Fig. 3).

1. Instruments a C-like implementation of the attach-accept path with the
   source-level instrumentor (the blue lines of Fig. 3).
2. Feeds the resulting execution log — the trace of the test case "when a
   properly formatted attach_accept with appropriate MAC is sent to the
   UE, the UE responds with attach_complete" — to the model extractor.
3. Prints the extracted transition: exactly the Fig. 3 reconstruction.
"""

from repro.extraction import SignatureTable, extract_model
from repro.instrumentation import CLikeInstrumenter, parse_globals
from repro.lte import constants as c

HEADER = """\
/* nas_state.h — global protocol state (Section IV-A insight #1) */
int emm_state;
int dl_count;
"""

SOURCE = """\
void air_msg_handler(msg_t *msg) {
    int msg_type = parse_type(msg);
    if (msg_type == ATTACH_ACCEPT) {
        recv_attach_accept(msg);
    }
}

int recv_attach_accept(msg_t *msg) {
    int mac_valid = check_mac(msg);
    if (!mac_valid) {
        return 0;
    }
    emm_state = UE_REGISTERED;
    send_attach_complete();
    return 1;
}

void send_attach_complete() {
    build_and_send(ATTACH_COMPLETE);
}
"""

#: What running the instrumented code under the test case prints —
#: the information-rich log of Fig. 3(d).
FIG3_LOG = """\
ENTER air_msg_handler
GLOBAL emm_state=UE_REGISTERED_INIT
ENTER recv_attach_accept
GLOBAL emm_state=UE_REGISTERED_INIT
ENTER send_attach_complete
GLOBAL emm_state=UE_REGISTERED
EXIT send_attach_complete
LOCAL mac_valid=1
GLOBAL emm_state=UE_REGISTERED
EXIT recv_attach_accept
EXIT air_msg_handler
"""


def main() -> None:
    print("=== Step 1: automatic source instrumentation (Fig. 3) ===\n")
    instrumenter = CLikeInstrumenter(parse_globals(HEADER))
    instrumented = instrumenter.instrument(SOURCE)
    print(instrumented)

    print("=== Step 2: the information-rich execution log ===\n")
    print(FIG3_LOG)

    print("=== Step 3: model extraction (Algorithm 1) ===\n")
    table = SignatureTable(
        state_signatures=("UE_REGISTERED_INIT", "UE_REGISTERED"),
        state_variable="emm_state",
        incoming_signatures={"recv_attach_accept": c.ATTACH_ACCEPT},
        outgoing_signatures={"send_attach_complete": c.ATTACH_COMPLETE},
        condition_variables=("mac_valid",),
        initial_state="UE_REGISTERED_INIT",
    )
    fsm, stats = extract_model(FIG3_LOG, table, name="fig3")
    print(f"log blocks: {stats.blocks}; extracted transitions:")
    for transition in fsm.transitions:
        print(f"  {transition.describe()}")
    print("\nThe incoming state (UE_REGISTERED_INIT), the condition "
          "(attach_accept with mac_valid=1), the action "
          "(attach_complete)\nand the outgoing state (UE_REGISTERED) "
          "were reconstructed purely from the log — no knowledge of the "
          "source code.")


if __name__ == "__main__":
    main()
