#!/usr/bin/env python3
"""Attack discovery walkthrough: the P1 service-disruption attack.

Shows the whole CEGAR pipeline on a single property — the paper's
"if the UE is in the registered initiated state, it will get
authenticated with an authentication sequence number (SQN) which is
greater than the previously accepted SQN":

1. extract the implementation model,
2. model check the threat-instrumented model,
3. have the protocol verifier confirm each adversarial step (the replay
   is feasible because the authentication_request verifies under the
   permanent key and is harvestable days in advance),
4. validate the counterexample end-to-end on the testbed (Fig. 4).
"""

from repro.baselines import lteinspector_mme
from repro.core import ProChecker
from repro.core.cegar import check_with_cegar
from repro.lte import constants as c
from repro.properties import property_by_id
from repro.testbed import run_attack

TRACE_COLUMNS = ("turn", "ue_state", "chan_dl", "chan_ul", "dl_sqn_rel",
                 "dl_mac_valid", "dl_replayed")


def main() -> None:
    implementation = "reference"
    prop = property_by_id("SEC-01")
    print(f"Property {prop.identifier}: {prop.description}\n")

    checker = ProChecker(implementation)
    ue_model = checker.extract()

    print("=== CEGAR loop: model checker + protocol verifier ===")
    result = check_with_cegar(
        ue_model, lteinspector_mme(),
        prop.formula_for(__import__(
            "repro.properties", fromlist=["EXTRACTED_VOCAB"]
        ).EXTRACTED_VOCAB),
        prop.threat, name=prop.identifier)

    print(f"iterations: {result.iterations}; "
          f"states explored: {result.states_explored}")
    if not result.is_attack:
        print("property verified — no attack")
        return

    print("\nCounterexample (the lasso the model checker found):")
    print(result.attack.format(TRACE_COLUMNS))

    print("\nProVerif-style feasibility verdicts per adversarial step:")
    for verdict in result.step_verdicts:
        if verdict.label.startswith("adv_pass"):
            continue
        print(f"  {verdict.label}: "
              f"{'FEASIBLE' if verdict.feasible else 'refuted'} "
              f"— {verdict.reason}")

    print("\n=== Testbed validation (Fig. 4 message sequence) ===")
    outcome = run_attack("P1", implementation)
    print(f"P1 on {implementation}: "
          f"{'SUCCEEDED' if outcome.succeeded else 'failed'}")
    print(f"evidence: {outcome.evidence}")
    print(f"victim responses: {outcome.details['responses']}")


if __name__ == "__main__":
    main()
