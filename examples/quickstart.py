#!/usr/bin/env python3
"""Quickstart: analyse a 4G LTE implementation end-to-end.

Runs the full ProChecker pipeline (Fig. 2) against the srsUE-like
implementation: instrumented conformance testing, FSM extraction
(Algorithm 1), and CEGAR verification of the 62-property catalog —
then prints the per-property report and the detected attacks.
Verification fans out over a process pool (``AnalysisConfig.jobs``).

    python examples/quickstart.py [reference|srsue|oai] [jobs]
"""

import sys

from repro import AnalysisConfig, ProChecker


def main() -> None:
    implementation = sys.argv[1] if len(sys.argv) > 1 else "srsue"
    jobs = int(sys.argv[2]) if len(sys.argv) > 2 else None
    print(f"=== ProChecker quickstart: analysing {implementation!r} ===\n")

    checker = ProChecker.from_config(
        AnalysisConfig(implementation, jobs=jobs))

    # Stage 1+2: conformance run under instrumentation + extraction.
    fsm = checker.extract()
    print(f"Extracted FSM: {len(fsm.states)} states, "
          f"{len(fsm.transitions)} transitions, "
          f"{len(fsm.conditions)} conditions, "
          f"{len(fsm.actions)} actions")
    print("Sample transitions:")
    for transition in sorted(fsm.transitions)[:6]:
        print(f"  {transition.describe()}")
    print()

    # Stage 3-5: verify the full 62-property catalog.
    report = checker.analyze()
    print(report.format_table())

    print("\nDetected attacks (Table I view):")
    for attack in sorted(report.detected_attacks()):
        print(f"  {attack}")
    print(f"\nVerified with {report.jobs} worker(s) in "
          f"{report.verification_seconds:.2f}s "
          f"(total {report.elapsed_seconds:.2f}s)")


if __name__ == "__main__":
    main()
