#!/usr/bin/env python3
"""Privacy analysis: linkability via observational distinguishability.

Runs the paper's linkability experiments — P2 (replayed
authentication_request, Fig. 6), I6 (replayed security_mode_command) and
the prior IMSI-paging attack — against all three implementations, and
shows the CPV distinguishing test for each positive.
"""

from repro.testbed import run_attack

EXPERIMENTS = (
    ("P2", "linkability via replayed authentication_request (Fig. 6)"),
    ("I6", "linkability via replayed security_mode_command"),
    ("PRIOR-linkability-imsi-paging", "linkability via IMSI paging"),
    ("PRIOR-linkability-auth-sync", "failure-message-type oracle"),
    ("PRIOR-linkability-guti", "GUTI persistence across windows"),
)

IMPLEMENTATIONS = ("reference", "srsue", "oai")


def main() -> None:
    for attack_id, title in EXPERIMENTS:
        print(f"=== {title} ===")
        for implementation in IMPLEMENTATIONS:
            result = run_attack(attack_id, implementation)
            verdict = "LINKABLE" if result.succeeded else "unlinkable"
            print(f"  {implementation:10s}: {verdict}")
            if result.succeeded:
                victim = result.details.get("victim")
                bystander = result.details.get("bystander")
                if victim is not None:
                    print(f"{'':14s}victim responses:    {victim}")
                    print(f"{'':14s}bystander responses: {bystander}")
                else:
                    print(f"{'':14s}{result.evidence}")
        print()

    print("The observational-equivalence engine behind these verdicts is "
          "repro.cpv.equivalence:\ntwo response frames are distinguishable "
          "when their message-type sequences differ,\nwhen a value-reuse "
          "equality test separates them, or when a probe term is\n"
          "derivable in only one world.")


if __name__ == "__main__":
    main()
