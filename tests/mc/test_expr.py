"""Unit and property tests for the guard expression language."""

import pytest
from hypothesis import given, strategies as st

from repro.mc.expr import (And, Compare, Const, ExprError, FALSE, Not, Or,
                           TRUE, conjoin, parse_expr, var_equals)

STATE = {"x": 1, "y": 2, "mode": "run", "flag": True}
VARS = tuple(STATE)


class TestCompare:
    def test_equality(self):
        assert Compare("x", "=", 1).evaluate(STATE)
        assert not Compare("x", "=", 2).evaluate(STATE)

    def test_inequality_operators(self):
        assert Compare("x", "<", 2).evaluate(STATE)
        assert Compare("y", ">=", 2).evaluate(STATE)
        assert Compare("x", "!=", 5).evaluate(STATE)
        assert not Compare("y", "<=", 1).evaluate(STATE)

    def test_variable_rhs(self):
        assert Compare("x", "<", "y", right_is_var=True).evaluate(STATE)
        assert not Compare("y", "=", "x", right_is_var=True).evaluate(STATE)

    def test_string_comparison(self):
        assert Compare("mode", "=", "run").evaluate(STATE)

    def test_unknown_variable_raises(self):
        with pytest.raises(ExprError):
            Compare("nope", "=", 1).evaluate(STATE)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExprError):
            Compare("x", "~", 1)

    def test_incomparable_types_raise(self):
        with pytest.raises(ExprError):
            Compare("mode", "<", 1).evaluate(STATE)


class TestBooleanConnectives:
    def test_and_or_not(self):
        e = And(Compare("x", "=", 1), Compare("y", "=", 2))
        assert e.evaluate(STATE)
        assert not And(e, FALSE).evaluate(STATE)
        assert Or(FALSE, e).evaluate(STATE)
        assert not Not(e).evaluate(STATE)

    def test_operator_overloads(self):
        e = var_equals("x", 1) & var_equals("y", 2)
        assert e.evaluate(STATE)
        assert (~e | TRUE).evaluate(STATE)

    def test_implies(self):
        assert var_equals("x", 5).implies(FALSE).evaluate(STATE)
        assert not var_equals("x", 1).implies(FALSE).evaluate(STATE)

    def test_variables_collected(self):
        e = And(Compare("x", "=", 1),
                Compare("y", "<", "x", right_is_var=True))
        assert e.variables() == {"x", "y"}

    def test_conjoin_drops_true(self):
        assert conjoin([TRUE, TRUE]) is TRUE
        single = var_equals("x", 1)
        assert conjoin([TRUE, single]) is single


class TestParser:
    def test_simple_comparison(self):
        assert parse_expr("x = 1", VARS).evaluate(STATE)

    def test_enum_literal(self):
        assert parse_expr("mode = run", VARS).evaluate(STATE)

    def test_variable_reference_rhs(self):
        assert parse_expr("x < y", VARS).evaluate(STATE)

    def test_enum_not_confused_with_variable(self):
        # "run" is not declared, so it is an enum literal
        expr = parse_expr("mode = run", ["mode"])
        assert expr.evaluate({"mode": "run"})

    def test_precedence_and_over_or(self):
        expr = parse_expr("x = 0 | x = 1 & y = 2", VARS)
        assert expr.evaluate(STATE)          # (x=0) | ((x=1)&(y=2))
        assert not expr.evaluate({"x": 1, "y": 3})

    def test_implication(self):
        expr = parse_expr("x = 5 -> y = 99", VARS)
        assert expr.evaluate(STATE)          # vacuous
        expr2 = parse_expr("x = 1 -> y = 2", VARS)
        assert expr2.evaluate(STATE)

    def test_iff(self):
        expr = parse_expr("x = 1 <-> y = 2", VARS)
        assert expr.evaluate(STATE)
        assert not expr.evaluate({"x": 1, "y": 3})

    def test_negation_and_parens(self):
        expr = parse_expr("!(x = 2) & (y = 2 | false)", VARS)
        assert expr.evaluate(STATE)

    def test_bare_identifier_is_boolean_test(self):
        assert parse_expr("flag", VARS).evaluate(STATE)

    def test_true_false_literals(self):
        assert parse_expr("true", VARS).evaluate(STATE)
        assert not parse_expr("false", VARS).evaluate(STATE)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ExprError):
            parse_expr("x = 1 )", VARS)

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(ExprError):
            parse_expr("(x = 1", VARS)


@st.composite
def _comparisons(draw):
    name = draw(st.sampled_from(["a", "b", "c"]))
    op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
    value = draw(st.integers(min_value=-5, max_value=5))
    return f"{name} {op} {value}"


@st.composite
def _expressions(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return draw(_comparisons())
    left = draw(_expressions(depth=depth + 1))
    right = draw(_expressions(depth=depth + 1))
    connective = draw(st.sampled_from(["&", "|", "->"]))
    return f"({left} {connective} {right})"


class TestParserProperties:
    @given(_expressions(),
           st.dictionaries(st.sampled_from(["a", "b", "c"]),
                           st.integers(-5, 5),
                           min_size=3, max_size=3))
    def test_parse_never_crashes_and_evaluates_bool(self, text, state):
        expr = parse_expr(text, ("a", "b", "c"))
        assert isinstance(expr.evaluate(state), bool)

    @given(_expressions(),
           st.dictionaries(st.sampled_from(["a", "b", "c"]),
                           st.integers(-5, 5),
                           min_size=3, max_size=3))
    def test_double_negation_preserves_value(self, text, state):
        expr = parse_expr(text, ("a", "b", "c"))
        assert expr.evaluate(state) == Not(Not(expr)).evaluate(state)

    @given(_expressions(), _expressions(),
           st.dictionaries(st.sampled_from(["a", "b", "c"]),
                           st.integers(-5, 5),
                           min_size=3, max_size=3))
    def test_de_morgan(self, left_text, right_text, state):
        left = parse_expr(left_text, ("a", "b", "c"))
        right = parse_expr(right_text, ("a", "b", "c"))
        lhs = Not(And(left, right)).evaluate(state)
        rhs = Or(Not(left), Not(right)).evaluate(state)
        assert lhs == rhs
