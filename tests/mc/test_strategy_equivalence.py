"""On-the-fly NDFS vs materialised-product SCC: verdict equivalence.

The two engines explore very different fractions of the product, but the
question they answer is the same; every verdict must agree, and every
counterexample either engine reports must violate the formula per the
independent lasso semantics in :mod:`tests.mc.ltl_semantics`."""

from hypothesis import given, settings, strategies as st

from repro.mc import (Choice, Model, Variable, parse_expr, parse_ltl)
from repro.mc.checker import (_check_formula, STRATEGY_MATERIALISED,
                              STRATEGY_ON_THE_FLY)

from .ltl_semantics import trace_violates


@st.composite
def random_models(draw):
    model = Model(
        "random",
        [Variable("v", (0, 1, 2)), Variable("f", (0, 1))],
        {"v": draw(st.integers(0, 2)), "f": 0},
    )
    for index in range(draw(st.integers(min_value=1, max_value=4))):
        guard_value = draw(st.integers(0, 2))
        updates = {"v": Choice(draw(st.integers(0, 2)),
                               draw(st.integers(0, 2))),
                   "f": draw(st.integers(0, 1))}
        model.add_command(f"cmd{index}",
                          parse_expr(f"v = {guard_value}", ["v"]),
                          updates)
    return model


_FORMULAS = [
    "G (v <= 2)",
    "F (v = 2)",
    "G (v = 0 -> F (v != 0))",
    "G F (f = 0)",
    "(v = 0) U (v != 0)",
    "G (f = 1 -> X (v = 0))",
    "F G (v = 0)",
    "G (v = 1 -> X (f = 1))",
    "(F (v = 2)) U (f = 1)",
]


class TestStrategyEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(random_models(), st.sampled_from(_FORMULAS))
    def test_verdicts_agree(self, model, text):
        formula = parse_ltl(text, model.variable_names)
        fly = _check_formula(model, formula, text,
                             strategy=STRATEGY_ON_THE_FLY)
        mat = _check_formula(model, formula, text,
                             strategy=STRATEGY_MATERIALISED)
        assert fly.holds == mat.holds
        if not fly.holds:
            # counterexamples may differ, but both must be genuine
            assert trace_violates(formula, fly.counterexample)
            assert trace_violates(formula, mat.counterexample)

    @settings(max_examples=30, deadline=None)
    @given(random_models(), st.sampled_from(_FORMULAS))
    def test_on_the_fly_never_explores_more_product_states(
            self, model, text):
        formula = parse_ltl(text, model.variable_names)
        fly = _check_formula(model, formula, text,
                             strategy=STRATEGY_ON_THE_FLY)
        mat = _check_formula(model, formula, text,
                             strategy=STRATEGY_MATERIALISED)
        # the invariant fast path reports 0 product states either way
        assert fly.product_states <= mat.product_states
