"""Tests for the guarded-command model language."""

import pytest

from repro.mc.model import (Choice, Model, ModelError, Plus, Ref, Variable)
from repro.mc.expr import TRUE, parse_expr


def make_model():
    return Model(
        "m",
        [Variable("a", (0, 1, 2)), Variable("b", ("x", "y"))],
        {"a": 0, "b": "x"},
    )


class TestConstruction:
    def test_empty_domain_rejected(self):
        with pytest.raises(ModelError):
            Variable("v", ())

    def test_init_outside_domain_rejected(self):
        with pytest.raises(ModelError):
            Model("m", [Variable("a", (0, 1))], {"a": 5})

    def test_missing_init_rejected(self):
        with pytest.raises(ModelError):
            Model("m", [Variable("a", (0, 1))], {})

    def test_duplicate_variables_rejected(self):
        with pytest.raises(ModelError):
            Model("m", [Variable("a", (0,)), Variable("a", (1,))],
                  {"a": 0})

    def test_unknown_update_variable_rejected(self):
        model = make_model()
        with pytest.raises(ModelError):
            model.add_command("bad", TRUE, {"zz": 1})


class TestStateKeys:
    def test_key_roundtrip(self):
        model = make_model()
        state = {"a": 2, "b": "y"}
        assert model.unkey(model.key(state)) == state

    def test_variable_names_sorted(self):
        assert make_model().variable_names == ("a", "b")


class TestSuccessors:
    def test_plain_update(self):
        model = make_model()
        model.add_command("go", parse_expr("a = 0", ["a"]),
                          {"a": 1, "b": "y"})
        successors = list(model.successors(model.initial_state()))
        assert successors == [("go", {"a": 1, "b": "y"})]

    def test_ref_copies_current_value(self):
        model = Model("m", [Variable("a", (0, 1)), Variable("c", (0, 1))],
                      {"a": 1, "c": 0})
        model.add_command("copy", TRUE, {"c": Ref("a")})
        (_, successor), = model.successors(model.initial_state())
        assert successor["c"] == 1

    def test_plus_saturates_at_ceiling(self):
        model = Model("m", [Variable("n", (0, 1, 2))], {"n": 2})
        model.add_command("inc", TRUE, {"n": Plus("n", 1, 2)})
        (_, successor), = model.successors(model.initial_state())
        assert successor["n"] == 2

    def test_plus_on_non_integer_rejected(self):
        model = make_model()
        model.add_command("bad", TRUE, {"b": Plus("b", 1)})
        with pytest.raises(ModelError):
            list(model.successors(model.initial_state()))

    def test_choice_expands_all_options(self):
        model = make_model()
        model.add_command("pick", TRUE, {"a": Choice(1, 2)})
        values = sorted(successor["a"] for _, successor
                        in model.successors(model.initial_state()))
        assert values == [1, 2]

    def test_two_choices_expand_product(self):
        model = make_model()
        model.add_command("pick", TRUE,
                          {"a": Choice(0, 1), "b": Choice("x", "y")})
        assert len(list(model.successors(model.initial_state()))) == 4

    def test_choice_requires_options(self):
        with pytest.raises(ModelError):
            Choice()

    def test_deadlock_stutters(self):
        model = make_model()   # no commands
        (label, successor), = model.successors(model.initial_state())
        assert label == "stutter"
        assert successor == model.initial_state()

    def test_update_outside_domain_rejected(self):
        model = make_model()
        model.add_command("bad", TRUE, {"a": 9})
        with pytest.raises(ModelError):
            list(model.successors(model.initial_state()))


class TestIntrospection:
    def test_state_count_bound(self):
        assert make_model().state_count_bound() == 6

    def test_validate_expression(self):
        model = make_model()
        model.validate_expression(parse_expr("a = 1", ["a"]))
        with pytest.raises(ModelError):
            model.validate_expression(parse_expr("zz = 1", ["zz"]))

    def test_enabled_commands(self):
        model = make_model()
        model.add_command("on0", parse_expr("a = 0", ["a"]), {"a": 1})
        model.add_command("on1", parse_expr("a = 1", ["a"]), {"a": 0})
        enabled = model.enabled_commands(model.initial_state())
        assert [command.label for command in enabled] == ["on0"]
