"""Tests for the LTL layer: construction, NNF negation, parsing."""

import pytest

from repro.mc.expr import parse_expr
from repro.mc.ltl import (Atom, BinOp, F, G, Implies, LTL_FALSE, LTL_TRUE,
                          LTLError, U, UnOp, X, And_, Or_, atom,
                          closure_size, parse_ltl)

VARS = ("x", "y", "mode")


class TestConstructors:
    def test_g_encodes_as_release(self):
        formula = G(atom("x = 1", VARS))
        assert isinstance(formula, BinOp)
        assert formula.op == "R"
        assert formula.left == LTL_FALSE

    def test_f_encodes_as_until(self):
        formula = F(atom("x = 1", VARS))
        assert isinstance(formula, BinOp)
        assert formula.op == "U"
        assert formula.left == LTL_TRUE

    def test_atom_from_expr(self):
        formula = atom(parse_expr("x = 1", VARS))
        assert isinstance(formula, Atom)


class TestNegation:
    def test_negation_is_nnf(self):
        """negate() pushes negations to the atoms (no Not nodes exist)."""
        formula = G(Implies(atom("x = 1", VARS), F(atom("y = 2", VARS))))
        negated = formula.negate()

        def assert_nnf(node):
            if isinstance(node, Atom):
                return
            if isinstance(node, BinOp):
                assert node.op in ("and", "or", "U", "R")
                assert_nnf(node.left)
                assert_nnf(node.right)
            elif isinstance(node, UnOp):
                assert node.op == "X"
                assert_nnf(node.operand)

        assert_nnf(negated)

    def test_double_negation_is_identity(self):
        formula = U(atom("x = 1", VARS), X(atom("y = 2", VARS)))
        assert formula.negate().negate() == formula

    def test_negation_duality(self):
        """!(G p) == F !p structurally under the R/U encodings."""
        p = atom("x = 1", VARS)
        assert G(p).negate() == F(p.negate())


class TestAtomEvaluation:
    def test_positive_and_negated(self):
        a = atom("x = 1", VARS)
        assert a.evaluate({"x": 1})
        assert not a.negate().evaluate({"x": 1})


class TestParser:
    def test_globally(self):
        formula = parse_ltl("G (x = 1)", VARS)
        assert formula == G(atom("x = 1", VARS))

    def test_response_pattern(self):
        formula = parse_ltl("G (x = 1 -> F y = 2)", VARS)
        expected = G(Implies(atom("x = 1", VARS), F(atom("y = 2", VARS))))
        assert formula == expected

    def test_until(self):
        formula = parse_ltl("(x = 1) U (y = 2)", VARS)
        assert formula == U(atom("x = 1", VARS), atom("y = 2", VARS))

    def test_next(self):
        formula = parse_ltl("X (x = 1)", VARS)
        assert formula == X(atom("x = 1", VARS))

    def test_not_equal_comparison_not_split(self):
        """`!=` must reach the atom parser intact (regression)."""
        formula = parse_ltl("G (x != 1)", VARS)
        assert formula.atoms()

    def test_le_ge_comparisons(self):
        parse_ltl("G (x <= 2 & y >= 0)", VARS)

    def test_enum_atoms(self):
        formula = parse_ltl("G (mode = run -> X mode != halt)", VARS)
        assert len(formula.atoms()) == 2

    def test_nested_temporal(self):
        parse_ltl("G F (x = 1)", VARS)
        parse_ltl("F G (x = 1)", VARS)

    def test_weak_until_encoding(self):
        parse_ltl("G (x = 1 -> ((y = 2) U (x = 0) | G (y = 2)))", VARS)

    def test_bad_atom_rejected(self):
        with pytest.raises(LTLError):
            parse_ltl("G (x == == 1)", VARS)

    def test_unbalanced_rejected(self):
        with pytest.raises(LTLError):
            parse_ltl("G (x = 1", VARS)


class TestClosureSize:
    def test_counts_distinct_subformulas(self):
        formula = G(Implies(atom("x = 1", VARS), F(atom("y = 2", VARS))))
        assert closure_size(formula) >= 4

    def test_shared_subformulas_counted_once(self):
        p = atom("x = 1", VARS)
        assert closure_size(And_(p, p)) == 2
