"""SMV export tests: structural fidelity of the NuXmv rendering."""

import re

import pytest

from repro.mc import (Choice, Model, Plus, Ref, Variable, parse_expr,
                      parse_ltl, to_smv)
from repro.mc.smv import SmvExportError


def make_model():
    model = Model(
        "demo",
        [Variable("count", (0, 1, 2)),
         Variable("mode", ("idle", "busy")),
         Variable("flag", (0, 1))],
        {"count": 0, "mode": "idle", "flag": 0},
    )
    model.add_command("start", parse_expr("mode = idle", ["mode"]),
                      {"mode": "busy", "count": Plus("count", 1, 2)})
    model.add_command("pick", parse_expr("mode = busy", ["mode"]),
                      {"flag": Choice(0, 1)})
    model.add_command("copy", parse_expr("flag = 1", ["flag"]),
                      {"count": Ref("flag")})
    return model


class TestStructure:
    def test_module_and_vars(self):
        text = to_smv(make_model())
        assert "MODULE main" in text
        assert "count : 0..2;" in text
        assert "mode : {idle, busy};" in text   # declaration order

    def test_init_section(self):
        text = to_smv(make_model())
        assert "INIT" in text
        assert "count = 0" in text
        assert "mode = idle" in text

    def test_trans_disjuncts_labelled(self):
        text = to_smv(make_model())
        assert "-- start" in text
        assert "-- pick" in text
        assert "-- stutter on deadlock" in text

    def test_updates_rendered(self):
        text = to_smv(make_model())
        assert "next(mode) = busy" in text
        assert "next(count) = min(count + 1, 2)" in text
        assert "next(flag) in {0, 1}" in text
        assert "next(count) = flag" in text          # Ref

    def test_frame_conditions_for_untouched_variables(self):
        text = to_smv(make_model())
        start = text.split("-- start")[1].split("-- pick")[0]
        assert "next(flag) = flag" in start

    def test_ltlspec(self):
        model = make_model()
        formula = parse_ltl("G (mode = busy -> F (flag = 1))",
                            model.variable_names)
        text = to_smv(model, [("liveness", formula)])
        assert "-- liveness" in text
        assert "LTLSPEC" in text
        assert "U" in text    # F encodes as true U ...

    def test_release_renders_as_v(self):
        model = make_model()
        formula = parse_ltl("G (count <= 2)", model.variable_names)
        text = to_smv(model, [("inv", formula)])
        assert " V " in text  # G encodes via release

    def test_boolean_domain(self):
        model = Model("b", [Variable("ok", (False, True))], {"ok": False})
        text = to_smv(model)
        assert "ok : boolean;" in text
        assert "ok = FALSE" in text

    def test_computed_choice_rejected(self):
        model = Model("x", [Variable("v", (0, 1))], {"v": 0})
        model.add_command("bad", parse_expr("v = 0", ["v"]),
                          {"v": Choice(Ref("v"), 1)})
        with pytest.raises(SmvExportError):
            to_smv(model)


class TestThreatModelExport:
    def test_extracted_threat_model_exports(self, extracted_models,
                                            mme_model):
        from repro.threat import ThreatConfig, build_threat_model
        model = build_threat_model(
            extracted_models["srsue"], mme_model,
            ThreatConfig(replay_dl=("authentication_request",)))
        text = to_smv(model)
        assert "MODULE main" in text
        # one disjunct per command plus the stutter fallback
        assert text.count("next(ue_state)") >= len(model.commands)
        # every variable is declared exactly once
        for name in model.variable_names:
            declarations = re.findall(rf"^  {name} :", text, re.M)
            assert len(declarations) == 1, name
