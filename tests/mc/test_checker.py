"""Model checker correctness: hand-built cases, random cross-validation
against the independent lasso-semantics oracle, and counterexample
validity (every reported counterexample must genuinely violate the
property per the reference semantics)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mc import (Choice, Model, ModelChecker, Plus, Variable,
                      parse_expr, parse_ltl)
from repro.mc.checker import as_invariant, formula_to_expr

from .ltl_semantics import brute_force_violation, trace_violates


def check_invariant(model, invariant, name="invariant"):
    return ModelChecker().check_invariant(model, invariant, name)


def check_ltl(model, formula, name="property"):
    return ModelChecker().check_formula(model, formula, name)


def counter_model():
    """0 -> 1 -> 2 -> 3 -> reset to 0; deterministic."""
    model = Model("counter", [Variable("c", tuple(range(4)))], {"c": 0})
    model.add_command("inc", parse_expr("c < 3", ["c"]),
                      {"c": Plus("c", 1, 3)})
    model.add_command("reset", parse_expr("c = 3", ["c"]), {"c": 0})
    return model


def branching_model():
    """From 0 choose 1 or 2; both sink (stutter)."""
    model = Model("branch", [Variable("x", (0, 1, 2))], {"x": 0})
    model.add_command("pick", parse_expr("x = 0", ["x"]),
                      {"x": Choice(1, 2)})
    return model


class TestInvariants:
    def test_holding_invariant(self):
        model = counter_model()
        result = check_invariant(model, parse_expr("c <= 3", ["c"]))
        assert result.holds
        assert result.states_explored == 4

    def test_violated_invariant_gives_shortest_prefix(self):
        model = counter_model()
        result = check_invariant(model, parse_expr("c < 2", ["c"]))
        assert not result.holds
        trace = result.counterexample
        assert trace.states[-1]["c"] == 2
        assert len(trace) == 2          # two increments

    def test_initial_state_violation(self):
        model = counter_model()
        result = check_invariant(model, parse_expr("c > 0", ["c"]))
        assert not result.holds
        assert len(result.counterexample) == 0


class TestFormulaHelpers:
    def test_as_invariant_recognises_g_propositional(self):
        formula = parse_ltl("G (c <= 3)", ["c"])
        assert as_invariant(formula) is not None

    def test_as_invariant_rejects_temporal_body(self):
        formula = parse_ltl("G (c = 0 -> F c = 3)", ["c"])
        assert as_invariant(formula) is None

    def test_formula_to_expr_roundtrip(self):
        formula = parse_ltl("c = 1 | c = 2", ["c"])
        expr = formula_to_expr(formula)
        assert expr.evaluate({"c": 1})
        assert not expr.evaluate({"c": 0})


class TestLTLVerdicts:
    @pytest.mark.parametrize("text,holds", [
        ("G (c <= 3)", True),
        ("F (c = 3)", True),
        ("G F (c = 0)", True),
        ("G (c = 0 -> X (c = 1))", True),
        ("(c < 3) U (c = 3)", True),
        ("G (c < 3)", False),
        ("F G (c = 0)", False),
        ("G (c = 1 -> X (c = 0))", False),
    ])
    def test_counter_model(self, text, holds):
        model = counter_model()
        formula = parse_ltl(text, ["c"])
        result = check_ltl(model, formula, text)
        assert result.holds == holds
        if not holds:
            assert trace_violates(formula, result.counterexample)

    @pytest.mark.parametrize("text,holds", [
        ("F (x = 1 | x = 2)", True),
        ("F (x = 2)", False),          # the run choosing 1 avoids 2
        ("G (x = 0)", False),
        ("G (x != 0 -> X (x != 0))", True),   # sinks stutter
    ])
    def test_branching_model(self, text, holds):
        model = branching_model()
        formula = parse_ltl(text, ["x"])
        result = check_ltl(model, formula, text)
        assert result.holds == holds
        if not holds:
            assert trace_violates(formula, result.counterexample)

    def test_lasso_counterexample_shape(self):
        model = branching_model()
        result = check_ltl(model, parse_ltl("F (x = 2)", ["x"]))
        trace = result.counterexample
        assert trace.is_lasso
        # the loop must return to the anchor state
        anchor = trace.states[trace.loop_start]
        assert trace.states[-1] == anchor


# ---------------------------------------------------------------------------
# Random cross-validation
# ---------------------------------------------------------------------------
@st.composite
def random_models(draw):
    """Small nondeterministic models over one 0..2 variable and one flag."""
    model = Model(
        "random",
        [Variable("v", (0, 1, 2)), Variable("f", (0, 1))],
        {"v": 0, "f": 0},
    )
    command_count = draw(st.integers(min_value=1, max_value=4))
    for index in range(command_count):
        guard_value = draw(st.integers(0, 2))
        target = draw(st.integers(0, 2))
        flag = draw(st.integers(0, 1))
        alt = draw(st.integers(0, 2))
        updates = {"v": Choice(target, alt), "f": flag}
        model.add_command(f"cmd{index}",
                          parse_expr(f"v = {guard_value}", ["v"]),
                          updates)
    return model


_FORMULAS = [
    "G (v <= 2)",
    "F (v = 2)",
    "G (v = 0 -> F (v != 0))",
    "G F (f = 0)",
    "(v = 0) U (v != 0)",
    "G (f = 1 -> X (v = 0))",
    "F G (v = 0)",
]


class TestCrossValidation:
    @settings(max_examples=40, deadline=None)
    @given(random_models(), st.sampled_from(_FORMULAS))
    def test_checker_agrees_with_oracle(self, model, text):
        formula = parse_ltl(text, model.variable_names)
        result = check_ltl(model, formula, text)
        oracle_violation = brute_force_violation(model, formula,
                                                 max_length=8)
        if result.holds:
            # the oracle must not find any bounded violating lasso
            assert not oracle_violation
        else:
            # the reported counterexample must be genuinely violating
            assert trace_violates(formula, result.counterexample)


class TestDeprecatedShims:
    def test_check_ltl_warns_but_still_answers(self):
        import repro.mc as mc
        model = counter_model()
        with pytest.warns(DeprecationWarning, match="ModelChecker"):
            result = mc.check_ltl(model, parse_ltl("G (c < 3)", ["c"]))
        assert not result.holds

    def test_check_invariant_warns_but_still_answers(self):
        import repro.mc as mc
        model = counter_model()
        with pytest.warns(DeprecationWarning, match="ModelChecker"):
            result = mc.check_invariant(model,
                                        parse_expr("c <= 3", ["c"]))
        assert result.holds
