"""Tests for the GPVW LTL -> Büchi translation."""

from repro.mc.buchi import ltl_to_buchi
from repro.mc.ltl import F, G, U, X, atom, parse_ltl

VARS = ("p", "q")
P = atom("p = 1", VARS)
Q = atom("q = 1", VARS)

STATE_P = {"p": 1, "q": 0}
STATE_Q = {"p": 0, "q": 1}
STATE_NONE = {"p": 0, "q": 0}


def accepts(automaton, word, loop_start):
    """Does the automaton accept the lasso word?

    Exact check: build the product of the automaton with the lasso's
    position structure and look for a reachable cycle through an
    accepting product node.
    """
    def next_position(i):
        return i + 1 if i + 1 < len(word) else loop_start

    # product nodes (position, buchi state); edges follow both structures
    initial = {(0, q) for q in automaton.initial
               if automaton.state_satisfies(q, word[0])}
    edges = {}
    stack = list(initial)
    nodes = set(initial)
    while stack:
        position, q = stack.pop()
        succ_position = next_position(position)
        successors = []
        for succ_q in automaton.successors(q):
            if automaton.state_satisfies(succ_q, word[succ_position]):
                node = (succ_position, succ_q)
                successors.append(node)
                if node not in nodes:
                    nodes.add(node)
                    stack.append(node)
        edges[(position, q)] = successors

    # accepting node on a cycle reachable from initial?
    def on_cycle(start):
        seen = set()
        frontier = list(edges.get(start, []))
        while frontier:
            node = frontier.pop()
            if node == start:
                return True
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(edges.get(node, []))
        return False

    return any(on_cycle(node) for node in nodes
               if node[1] in automaton.accepting)


class TestTranslation:
    def test_g_p_accepts_constant_p(self):
        automaton = ltl_to_buchi(G(P))
        assert accepts(automaton, [STATE_P], 0)

    def test_g_p_rejects_word_with_not_p(self):
        automaton = ltl_to_buchi(G(P))
        assert not accepts(automaton, [STATE_P, STATE_NONE], 1)

    def test_f_q_accepts_eventual_q(self):
        automaton = ltl_to_buchi(F(Q))
        assert accepts(automaton, [STATE_NONE, STATE_Q], 1)

    def test_f_q_rejects_never_q(self):
        automaton = ltl_to_buchi(F(Q))
        assert not accepts(automaton, [STATE_NONE], 0)

    def test_until(self):
        automaton = ltl_to_buchi(U(P, Q))
        assert accepts(automaton, [STATE_P, STATE_P, STATE_Q], 2)
        assert not accepts(automaton, [STATE_P, STATE_NONE], 1)

    def test_next(self):
        automaton = ltl_to_buchi(X(Q))
        assert accepts(automaton, [STATE_NONE, STATE_Q], 1)
        assert not accepts(automaton, [STATE_Q, STATE_NONE], 1)

    def test_gf_infinitely_often(self):
        automaton = ltl_to_buchi(G(F(P)))
        assert accepts(automaton, [STATE_P, STATE_NONE], 0)   # alternating
        assert not accepts(automaton, [STATE_P, STATE_NONE], 1)  # P once

    def test_negated_formula_is_complementary_on_words(self):
        formula = parse_ltl("G (p = 1 -> F q = 1)", VARS)
        positive = ltl_to_buchi(formula)
        negative = ltl_to_buchi(formula.negate())
        words = [
            ([STATE_P, STATE_Q], 0),
            ([STATE_P, STATE_NONE], 1),
            ([STATE_NONE], 0),
            ([STATE_P, STATE_Q, STATE_NONE], 2),
        ]
        for word, loop in words:
            assert accepts(positive, word, loop) != accepts(
                negative, word, loop), (word, loop)

    def test_automaton_size_reported(self):
        automaton = ltl_to_buchi(G(F(P)))
        states, edges = automaton.size()
        assert states > 0
        assert edges > 0
