"""Counterexample trace structure tests."""

from repro.mc.counterexample import (ADVERSARY_PREFIX, CheckResult, Step,
                                     Trace)


def sample_trace():
    trace = Trace(initial_state={"x": 0, "y": "a"})
    trace.steps.append(Step("cmd_one", {"x": 1, "y": "a"}))
    trace.steps.append(Step("adv_drop", {"x": 1, "y": "b"}))
    trace.steps.append(Step("cmd_two", {"x": 2, "y": "b"}))
    return trace


class TestTrace:
    def test_states_includes_initial(self):
        trace = sample_trace()
        assert len(trace.states) == 4
        assert trace.states[0] == {"x": 0, "y": "a"}

    def test_labels(self):
        assert sample_trace().labels == ["cmd_one", "adv_drop", "cmd_two"]

    def test_adversary_steps_filtered_by_prefix(self):
        trace = sample_trace()
        assert trace.adversary_actions() == ["adv_drop"]
        assert all(step.label.startswith(ADVERSARY_PREFIX)
                   for step in trace.adversary_steps())

    def test_lasso_flag(self):
        trace = sample_trace()
        assert not trace.is_lasso
        trace.loop_start = 1
        assert trace.is_lasso

    def test_project(self):
        rows = sample_trace().project(["x"])
        assert rows == [(0,), (1,), (1,), (2,)]

    def test_format_contains_all_steps(self):
        trace = sample_trace()
        trace.loop_start = 2
        text = trace.format(["x", "y"])
        assert "(init)" in text
        assert "adv_drop" in text
        assert "(loop back to step 2)" in text
        # loop region rows are starred
        starred = [line for line in text.splitlines()
                   if line.startswith("*")]
        assert len(starred) == 2

    def test_hide_idle_elides_pass_steps(self):
        trace = sample_trace()
        trace.steps.insert(0, Step("adv_pass_dl", {"x": 0, "y": "a"}))
        text = trace.format(["x"], hide_idle=True)
        assert "adv_pass_dl" not in text
        assert "idle step(s) elided" in text
        assert "cmd_one" in text

    def test_hide_idle_keeps_loop_region(self):
        trace = sample_trace()
        trace.steps.append(Step("adv_pass_ul", {"x": 2, "y": "b"}))
        trace.loop_start = 4
        text = trace.format(["x"], hide_idle=True)
        assert "adv_pass_ul" in text    # inside the loop: kept

    def test_step_state_copied(self):
        state = {"x": 1}
        step = Step("cmd", state)
        state["x"] = 99
        assert step.state["x"] == 1

    def test_len(self):
        assert len(sample_trace()) == 3


class TestCheckResult:
    def test_summary_verdicts(self):
        holds = CheckResult("p", holds=True, states_explored=10,
                            elapsed_seconds=0.5)
        assert "HOLDS" in holds.summary()
        violated = CheckResult("p", holds=False)
        assert violated.violated
        assert "VIOLATED" in violated.summary()
