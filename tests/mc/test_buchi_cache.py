"""Büchi template memoisation: alpha-equivalent formulas share one
compiled automaton; distinct shapes or arities do not collide."""

import pytest

from repro.mc import (buchi_cache_stats, clear_buchi_cache, ltl_to_buchi,
                      normalise_ltl, normalised_key, parse_ltl)

VOCAB_A = ["c"]
VOCAB_B = ["x"]


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_buchi_cache()
    yield
    clear_buchi_cache()


class TestNormalisation:
    def test_alpha_renamed_formulas_share_a_shape(self):
        shape_a, atoms_a = normalise_ltl(parse_ltl("G (c = 0)", VOCAB_A))
        shape_b, atoms_b = normalise_ltl(parse_ltl("G (x = 0)", VOCAB_B))
        assert shape_a == shape_b
        assert len(atoms_a) == len(atoms_b) == 1

    def test_operator_canonical_forms_share_a_shape(self):
        # parse_ltl already rewrites sugar (->, F, G) into the NNF core,
        # so an implication and its disjunctive expansion normalise
        # identically.
        implied = parse_ltl("G (c = 0 -> X (c = 1))", VOCAB_A)
        expanded = parse_ltl("G (!(c = 0) | X (c = 1))", VOCAB_A)
        assert normalise_ltl(implied)[0] == normalise_ltl(expanded)[0]
        assert normalised_key(implied) == normalised_key(expanded)

    def test_distinct_atoms_distinct_key_same_shape(self):
        f1 = parse_ltl("G (c = 0)", VOCAB_A)
        f2 = parse_ltl("G (c = 1)", VOCAB_A)
        assert normalise_ltl(f1)[0] == normalise_ltl(f2)[0]
        assert normalised_key(f1) != normalised_key(f2)

    def test_repeated_atom_uses_one_slot(self):
        shape, atoms = normalise_ltl(
            parse_ltl("(c = 0) U (c = 0)", VOCAB_A))
        assert len(atoms) == 1


class TestTemplateCache:
    def test_alpha_renamed_pair_hits_one_entry(self):
        ltl_to_buchi(parse_ltl("F (c = 2)", VOCAB_A))
        stats = buchi_cache_stats()
        assert stats == {"entries": 1, "hits": 0, "misses": 1}
        ltl_to_buchi(parse_ltl("F (x = 2)", VOCAB_B))
        stats = buchi_cache_stats()
        assert stats == {"entries": 1, "hits": 1, "misses": 1}

    def test_operator_canonicalised_pair_hits_one_entry(self):
        ltl_to_buchi(parse_ltl("G (c = 0 -> X (c = 1))", VOCAB_A))
        ltl_to_buchi(parse_ltl("G (!(x = 0) | X (x = 1))", VOCAB_B))
        assert buchi_cache_stats()["entries"] == 1
        assert buchi_cache_stats()["hits"] == 1

    def test_instantiation_rebinds_atoms_not_structure(self):
        auto_a = ltl_to_buchi(parse_ltl("F (c = 2)", VOCAB_A))
        auto_b = ltl_to_buchi(parse_ltl("F (x = 2)", VOCAB_B))
        # identical automaton skeletons ...
        assert auto_a.states == auto_b.states
        assert auto_a.initial == auto_b.initial
        assert auto_a.accepting == auto_b.accepting
        assert auto_a.transitions == auto_b.transitions
        # ... over different concrete atoms
        strs_a = {str(lit) for lits in auto_a.labels.values()
                  for lit in lits}
        strs_b = {str(lit) for lits in auto_b.labels.values()
                  for lit in lits}
        assert any("c" in s for s in strs_a)
        assert any("x" in s for s in strs_b)

    def test_distinct_shapes_get_distinct_entries(self):
        ltl_to_buchi(parse_ltl("F (c = 2)", VOCAB_A))
        ltl_to_buchi(parse_ltl("G F (c = 2)", VOCAB_A))
        assert buchi_cache_stats()["entries"] == 2

    def test_clear_resets_counters(self):
        ltl_to_buchi(parse_ltl("F (c = 2)", VOCAB_A))
        clear_buchi_cache()
        assert buchi_cache_stats() == {"entries": 0, "hits": 0,
                                       "misses": 0}
