"""Persistent MC verdict cache + the ModelChecker facade around it."""

import json

import pytest

from repro.mc import (CheckRequest, CheckResult, McVerdictCache, Model,
                      ModelChecker, Plus, STRATEGY_MATERIALISED, Variable,
                      parse_expr, parse_ltl, verdict_digest)
from repro.mc.checker import CheckerError


def counter_model(name="counter"):
    model = Model(name, [Variable("c", tuple(range(4)))], {"c": 0})
    model.add_command("inc", parse_expr("c < 3", ["c"]),
                      {"c": Plus("c", 1, 3)})
    model.add_command("reset", parse_expr("c = 3", ["c"]), {"c": 0})
    return model


class TestModelFingerprint:
    def test_name_does_not_matter(self):
        assert (counter_model("a").fingerprint()
                == counter_model("b").fingerprint())

    def test_commands_do(self):
        plain = counter_model()
        mutated = counter_model()
        mutated.add_command("jump", parse_expr("c = 0", ["c"]), {"c": 2})
        assert plain.fingerprint() != mutated.fingerprint()


class TestVerdictDigest:
    def test_sensitive_to_every_component(self):
        base = verdict_digest("fp", "formula", "threat")
        assert verdict_digest("fp2", "formula", "threat") != base
        assert verdict_digest("fp", "formula2", "threat") != base
        assert verdict_digest("fp", "formula", "threat2") != base
        assert verdict_digest("fp", "formula", "threat") == base

    def test_components_do_not_bleed(self):
        # "ab"+"c" must not collide with "a"+"bc"
        assert (verdict_digest("ab", "c", "")
                != verdict_digest("a", "bc", ""))


class TestMcVerdictCache:
    def test_round_trip_marks_from_cache(self, tmp_path):
        cache = McVerdictCache(tmp_path)
        checker = ModelChecker()
        model = counter_model()
        result = checker.check_formula(model, parse_ltl("G (c < 3)",
                                                        ["c"]))
        digest = verdict_digest(model.fingerprint(), "k", "")
        cache.put(digest, result)
        restored = cache.get(digest)
        assert restored is not None
        assert restored.from_cache
        assert not restored.holds
        assert restored.counterexample is not None
        assert (restored.counterexample.to_dict()
                == result.counterexample.to_dict())

    def test_miss_returns_none(self, tmp_path):
        assert McVerdictCache(tmp_path).get("ab" * 32) is None

    def test_corrupt_entry_is_quarantined_miss(self, tmp_path):
        cache = McVerdictCache(tmp_path)
        digest = "cd" * 32
        path = cache.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{not json")
        assert cache.get(digest) is None
        assert not path.exists()
        assert cache.stats()["quarantined"] == 1

    def test_malformed_digest_rejected(self, tmp_path):
        with pytest.raises(Exception):
            McVerdictCache(tmp_path).path_for("../escape")


class TestModelCheckerFacade:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(CheckerError):
            ModelChecker(strategy="guess")

    def test_cache_hit_skips_exploration(self, tmp_path):
        checker = ModelChecker(cache=McVerdictCache(tmp_path))
        model = counter_model()
        request = CheckRequest(formula="F (c = 3)", name="reach")
        cold = checker.check(model, request)
        warm = checker.check(model, request)
        assert not cold.from_cache
        assert warm.from_cache
        assert warm.holds == cold.holds
        assert warm.property_name == "reach"

    def test_threat_digest_partitions_the_cache(self, tmp_path):
        checker = ModelChecker(cache=McVerdictCache(tmp_path))
        model = counter_model()
        first = checker.check(model, CheckRequest(
            formula="F (c = 3)", threat_digest="t1"))
        other = checker.check(model, CheckRequest(
            formula="F (c = 3)", threat_digest="t2"))
        assert not first.from_cache
        assert not other.from_cache

    def test_model_edit_invalidates(self, tmp_path):
        checker = ModelChecker(cache=McVerdictCache(tmp_path))
        request = CheckRequest(formula="G (c < 3)")
        checker.check(counter_model(), request)
        mutated = counter_model()
        mutated.add_command("jump", parse_expr("c = 0", ["c"]), {"c": 3})
        assert not checker.check(mutated, request).from_cache

    def test_use_cache_false_bypasses(self, tmp_path):
        checker = ModelChecker(cache=McVerdictCache(tmp_path))
        model = counter_model()
        checker.check(model, CheckRequest(formula="F (c = 3)"))
        fresh = checker.check(model, CheckRequest(formula="F (c = 3)",
                                                  use_cache=False))
        assert not fresh.from_cache

    def test_per_request_strategy_override(self):
        result = ModelChecker().check(counter_model(), CheckRequest(
            formula="G F (c = 0)", strategy=STRATEGY_MATERIALISED))
        assert result.holds

    def test_export_smv(self):
        text = ModelChecker().export_smv(counter_model(), CheckRequest(
            formula="G (c <= 3)", name="bound"))
        assert "MODULE main" in text
        assert "LTLSPEC" in text


class TestWireForms:
    def test_check_request_round_trip(self):
        request = CheckRequest(formula="G (c < 3)", name="p",
                               threat_digest="td", use_cache=False,
                               strategy=STRATEGY_MATERIALISED)
        payload = json.loads(json.dumps(request.to_dict()))
        assert "schema_version" in payload
        restored = CheckRequest.from_dict(payload)
        assert restored == request

    def test_check_result_round_trip(self):
        result = ModelChecker().check_formula(
            counter_model(), parse_ltl("G (c < 3)", ["c"]), "p")
        payload = json.loads(json.dumps(result.to_dict()))
        assert "schema_version" in payload
        restored = CheckResult.from_dict(payload)
        assert restored.holds == result.holds
        assert restored.property_name == "p"
        assert restored.states_explored == result.states_explored
        assert (restored.counterexample.to_dict()
                == result.counterexample.to_dict())

    def test_future_major_rejected(self):
        from repro import schema
        result = ModelChecker().check_formula(
            counter_model(), parse_ltl("G (c <= 3)", ["c"]))
        payload = result.to_dict()
        payload["schema_version"] = "999.0"
        with pytest.raises(schema.SchemaVersionError):
            CheckResult.from_dict(payload)
