"""Reference LTL semantics on lasso words (test oracle).

Independent of the Büchi-based checker: evaluates a formula over an
ultimately-periodic word ``s_0 .. s_{l-1} (s_l .. s_k)^omega`` by fixpoint
computation on the cyclic position structure (least fixpoint for U,
greatest for R).  Used to (a) confirm that every counterexample the
checker produces genuinely violates the property, and (b) brute-force
small models for cross-validation.
"""

from itertools import product

from repro.mc.ltl import Atom, BinOp, BoolConst, Formula, UnOp


def eval_on_lasso(formula: Formula, states, loop_start: int) -> bool:
    """Does the lasso word satisfy ``formula`` (at position 0)?"""
    count = len(states)
    assert 0 <= loop_start < count

    def next_position(i: int) -> int:
        return i + 1 if i + 1 < count else loop_start

    cache = {}

    def vector(node: Formula):
        if node in cache:
            return cache[node]
        if isinstance(node, BoolConst):
            result = [node.value] * count
        elif isinstance(node, Atom):
            result = [node.evaluate(state) for state in states]
        elif isinstance(node, UnOp):      # X
            sub = vector(node.operand)
            result = [sub[next_position(i)] for i in range(count)]
        elif node.op == "and":
            left, right = vector(node.left), vector(node.right)
            result = [a and b for a, b in zip(left, right)]
        elif node.op == "or":
            left, right = vector(node.left), vector(node.right)
            result = [a or b for a, b in zip(left, right)]
        elif node.op == "U":
            left, right = vector(node.left), vector(node.right)
            result = [False] * count
            for _ in range(count + 1):   # lfp: b | (a & X v)
                updated = [right[i] or (left[i]
                                        and result[next_position(i)])
                           for i in range(count)]
                if updated == result:
                    break
                result = updated
        elif node.op == "R":
            left, right = vector(node.left), vector(node.right)
            result = [True] * count
            for _ in range(count + 1):   # gfp: b & (a | X v)
                updated = [right[i] and (left[i]
                                         or result[next_position(i)])
                           for i in range(count)]
                if updated == result:
                    break
                result = updated
        else:  # pragma: no cover
            raise AssertionError(f"unknown node {node!r}")
        cache[node] = result
        return result

    return vector(formula)[0]


def trace_violates(formula: Formula, trace) -> bool:
    """Does a checker counterexample genuinely violate the formula?

    Safety prefixes (no loop) are closed with a self-loop on the final
    state, which is sound for the G(propositional) fast path that
    produces them.
    """
    states = trace.states
    loop_start = trace.loop_start if trace.loop_start is not None \
        else len(states) - 1
    return not eval_on_lasso(formula, states, loop_start)


def brute_force_violation(model, formula: Formula,
                          max_length: int = 10) -> bool:
    """Exhaustively search bounded lassos for a violating path.

    Sound for small models: if a violation with prefix+period within
    ``max_length`` exists, it is found.
    """
    initial = model.initial_state()

    def search(path_keys, path_states):
        # try closing the lasso at any earlier position with equal state
        for position, key in enumerate(path_keys[:-1]):
            if key == path_keys[-1]:
                if not eval_on_lasso(formula, path_states[:-1], position):
                    return True
        if len(path_states) > max_length:
            return False
        current = path_states[-1]
        # The word a lasso spells depends only on the state sequence, so
        # successors reached by several commands/choices are explored once.
        seen_keys = set()
        for _label, successor in model.successors(current):
            key = model.key(successor)
            if key in seen_keys:
                continue
            seen_keys.add(key)
            if search(path_keys + [key], path_states + [successor]):
                return True
        return False

    return search([model.key(initial)], [initial])
