"""Conformance framework tests: suite composition, runner, coverage."""

import pytest

from repro.conformance import (ConformanceRunner, additional_cases,
                               coverage_gain, full_suite, generated_suite,
                               handler_universe, measure_coverage,
                               run_conformance, standard_suite)
from repro.lte.implementations import REGISTRY


class TestSuiteComposition:
    def test_standard_suite_covers_all_procedures(self):
        procedures = {case.procedure for case in standard_suite()}
        assert {"attach", "authentication", "security-mode",
                "guti-reallocation", "tracking-area-update", "paging",
                "detach", "identity"} <= procedures

    def test_additional_case_counts_match_paper(self):
        """Nine added for srsLTE, seven for OAI (Section VI)."""
        added = additional_cases()
        assert sum(1 for case in added if "srsue" in case.added_for) == 9
        assert sum(1 for case in added if "oai" in case.added_for) == 7

    def test_full_suite_filters_by_implementation(self):
        srsue_ids = {case.identifier for case in full_suite("srsue")}
        oai_ids = {case.identifier for case in full_suite("oai")}
        reference_ids = {case.identifier
                         for case in full_suite("reference")}
        assert "TC_X_REJ_1" in srsue_ids
        assert "TC_X_REJ_1" not in oai_ids
        assert "TC_X_ID_1" in oai_ids
        # the reference gets every case (its suite is "complete")
        assert srsue_ids <= reference_ids
        assert oai_ids <= reference_ids

    def test_unique_identifiers(self):
        identifiers = [case.identifier for case in full_suite()]
        assert len(identifiers) == len(set(identifiers))

    def test_generated_suite_scales(self):
        base = len(full_suite())
        assert len(generated_suite(multiplier=3)) == 3 * base


class TestRunner:
    def test_unknown_implementation_rejected(self):
        with pytest.raises(ValueError):
            ConformanceRunner("nokia")

    def test_all_cases_execute_cleanly(self, conformance_runs):
        for impl, run in conformance_runs.items():
            assert not run.failures, (impl, [f.error
                                             for f in run.failures])

    def test_instrumented_run_produces_log(self, conformance_runs):
        run = conformance_runs["reference"]
        assert run.log_lines() > 1000
        assert "TESTCASE TC_ATTACH_1" in run.log_text

    def test_uninstrumented_run_has_no_log(self):
        result = run_conformance("reference", standard_suite()[:2],
                                 instrument=False)
        assert result.log_text == ""
        assert result.executed == 2

    def test_fresh_subscriber_per_case(self, conformance_runs):
        """Each case gets its own context (MSIN sweep)."""
        run = conformance_runs["reference"]
        assert run.executed == len(full_suite("reference"))


class TestCoverage:
    def test_handler_universe(self):
        universe = handler_universe(REGISTRY["srsue"])
        assert "parse_attach_accept" in universe
        assert "send_attach_request" in universe

    def test_full_suite_reaches_total_coverage(self, conformance_runs):
        for impl, run in conformance_runs.items():
            report = measure_coverage(REGISTRY[impl], run.log_text, impl)
            assert report.percent == 100.0, (impl, report.uncovered())

    def test_additional_cases_enrich_the_extracted_model(self):
        """The added probes do not just cover handlers — they witness
        behaviours (transitions) the stock suite never exercises."""
        from repro.extraction import extract_model, \
            table_for_implementation
        table = table_for_implementation(REGISTRY["srsue"])
        base_run = run_conformance("srsue", standard_suite())
        full_run = run_conformance("srsue", full_suite("srsue"))
        base_fsm, _ = extract_model(base_run.log_text, table)
        full_fsm, _ = extract_model(full_run.log_text, table)
        assert len(full_fsm.transitions) > len(base_fsm.transitions)

    def test_coverage_gain_from_additional_cases(self):
        base_run = run_conformance("srsue", standard_suite())
        full_run = run_conformance("srsue", full_suite("srsue"))
        base = measure_coverage(REGISTRY["srsue"], base_run.log_text)
        extended = measure_coverage(REGISTRY["srsue"], full_run.log_text)
        gain = coverage_gain(base, extended)
        assert gain["extended_percent"] >= gain["base_percent"]

    def test_per_testcase_attribution(self, conformance_runs):
        run = conformance_runs["reference"]
        report = measure_coverage(REGISTRY["reference"], run.log_text)
        covering = report.testcases_covering("recv_attach_accept")
        assert "TC_ATTACH_1" in covering

    def test_stimulus_pairs_collected(self, conformance_runs):
        run = conformance_runs["reference"]
        report = measure_coverage(REGISTRY["reference"], run.log_text)
        assert ("EMM_REGISTERED_INITIATED", "authentication_request") \
            in report.stimulus_pairs
