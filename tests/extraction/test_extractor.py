"""Model extractor tests: Algorithm 1 on synthetic and real logs."""

import pytest

from repro.extraction import (ModelExtractor, SignatureTable, divide_blocks,
                              extract_model, table_for_implementation)
from repro.fsm import NULL_ACTION
from repro.instrumentation.logfmt import parse_log
from repro.lte import constants as c
from repro.lte.implementations import REGISTRY

# A synthetic log in the paper's Fig. 3(d) shape.
FIG3_LOG = """\
ENTER recv_attach_accept
GLOBAL emm_state=EMM_REGISTERED_INITIATED_SECURE
LOCAL mac_valid=1
ENTER send_attach_complete
GLOBAL emm_state=EMM_REGISTERED
EXIT send_attach_complete
GLOBAL emm_state=EMM_REGISTERED
EXIT recv_attach_accept
"""

TABLE = SignatureTable(
    state_signatures=(c.EMM_REGISTERED_INITIATED_SECURE,
                      c.EMM_REGISTERED),
    state_variable="emm_state",
    incoming_signatures={"recv_attach_accept": "attach_accept"},
    outgoing_signatures={"send_attach_complete": "attach_complete"},
    condition_variables=("mac_valid",),
    initial_state=c.EMM_REGISTERED_INITIATED_SECURE,
)


class TestRunningExample:
    def test_fig3_transition_extracted(self):
        fsm, stats = extract_model(FIG3_LOG, TABLE)
        assert stats.blocks == 1
        (transition,) = fsm.transitions
        assert transition.source == c.EMM_REGISTERED_INITIATED_SECURE
        assert transition.target == c.EMM_REGISTERED
        assert transition.conditions == ("attach_accept", "mac_valid=1")
        assert transition.actions == ("attach_complete",)


class TestBlockDivision:
    def test_split_on_incoming_signatures(self):
        log = FIG3_LOG + FIG3_LOG
        records = parse_log(log)
        blocks = divide_blocks(records, TABLE)
        assert len(blocks) == 2
        assert all(block.condition == "attach_accept" for block in blocks)

    def test_testcase_markers_close_blocks(self):
        log = FIG3_LOG + "TESTCASE TC_2\nGLOBAL emm_state=EMM_REGISTERED\n"
        records = parse_log(log)
        blocks = divide_blocks(records, TABLE)
        # the stray GLOBAL after the marker is not inside any block
        assert len(blocks) == 1
        assert len(blocks[0].records) == 7

    def test_preamble_before_first_signature_ignored(self):
        log = "GLOBAL emm_state=EMM_REGISTERED\n" + FIG3_LOG
        fsm, stats = extract_model(log, TABLE)
        assert stats.blocks == 1
        assert len(fsm.transitions) == 1


class TestNullAction:
    def test_no_outgoing_handler_yields_null_action(self):
        log = ("ENTER recv_attach_accept\n"
               "GLOBAL emm_state=EMM_REGISTERED_INITIATED_SECURE\n"
               "LOCAL mac_valid=0\n"
               "GLOBAL emm_state=EMM_REGISTERED_INITIATED_SECURE\n"
               "EXIT recv_attach_accept\n")
        fsm, _ = extract_model(log, TABLE)
        (transition,) = fsm.transitions
        assert transition.actions == (NULL_ACTION,)
        assert transition.source == transition.target

    def test_state_less_block_skipped(self):
        log = "ENTER recv_attach_accept\nLOCAL mac_valid=1\n"
        fsm, stats = extract_model(log, TABLE)
        assert stats.blocks == 1
        assert not fsm.transitions


class TestConditionLifting:
    def test_only_configured_variables_lifted(self):
        log = FIG3_LOG.replace("LOCAL mac_valid=1",
                               "LOCAL mac_valid=1\nLOCAL noise_var=7")
        fsm, _ = extract_model(log, TABLE)
        (transition,) = fsm.transitions
        assert "noise_var=7" not in transition.conditions

    def test_exact_state_value_matching(self):
        """State matching is by exact GLOBAL value, so MME_EMM_* values
        sharing a substring never confuse the extractor."""
        log = FIG3_LOG.replace(
            "GLOBAL emm_state=EMM_REGISTERED\nEXIT send",
            "GLOBAL emm_state=MME_EMM_REGISTERED\nEXIT send")
        fsm, _ = extract_model(log, TABLE)
        (transition,) = fsm.transitions
        assert transition.target == c.EMM_REGISTERED  # from the later dump


class TestDuplicateBlocks:
    def test_identical_blocks_collapse_to_one_transition(self):
        fsm, _ = extract_model(FIG3_LOG * 3, TABLE)
        assert len(fsm.transitions) == 1

    def test_different_predicates_make_distinct_transitions(self):
        log = FIG3_LOG + FIG3_LOG.replace(
            "LOCAL mac_valid=1", "LOCAL mac_valid=0").replace(
            "ENTER send_attach_complete\nGLOBAL emm_state=EMM_REGISTERED\n"
            "EXIT send_attach_complete\nGLOBAL emm_state=EMM_REGISTERED\n",
            "")
        fsm, _ = extract_model(log, TABLE)
        assert len(fsm.transitions) == 2


class TestRealImplementations:
    @pytest.mark.parametrize("impl", ("reference", "srsue", "oai"))
    def test_extracted_models_have_expected_shape(self, impl,
                                                  extracted_models):
        fsm = extracted_models[impl]
        assert len(fsm.states) >= 8
        assert len(fsm.transitions) >= 25
        assert fsm.initial_state == c.EMM_DEREGISTERED
        # every extracted state is a standards state name
        assert fsm.states <= set(c.UE_STATES)

    def test_srsue_shows_equal_sqn_acceptance(self, extracted_models):
        fsm = extracted_models["srsue"]
        assert any("sqn_equal=1" in t.conditions
                   and "authentication_response" in t.actions
                   for t in fsm.transitions)

    def test_reference_rejects_equal_sqn(self, extracted_models):
        fsm = extracted_models["reference"]
        assert not any("sqn_equal=1" in t.conditions
                       and "authentication_response" in t.actions
                       for t in fsm.transitions)

    def test_oai_shows_plain_header_acceptance(self, extracted_models):
        fsm = extracted_models["oai"]
        assert any("plain_hdr=1" in t.conditions
                   and "guti_reallocation_complete" in t.actions
                   for t in fsm.transitions)

    def test_all_implementations_show_sqn_window(self, extracted_models):
        """The Annex C out-of-order acceptance is standards-mandated."""
        for impl, fsm in extracted_models.items():
            assert any("sqn_fresh=0" in t.conditions
                       and "sqn_in_window=1" in t.conditions
                       and "authentication_response" in t.actions
                       for t in fsm.transitions), impl

    def test_extraction_is_deterministic(self, conformance_runs):
        run = conformance_runs["reference"]
        table = table_for_implementation(REGISTRY["reference"])
        first, _ = extract_model(run.log_text, table)
        second, _ = extract_model(run.log_text, table)
        assert set(first.transitions) == set(second.transitions)

    def test_stats_populated(self, conformance_runs):
        run = conformance_runs["srsue"]
        table = table_for_implementation(REGISTRY["srsue"])
        extractor = ModelExtractor(table)
        fsm = extractor.extract(run.log_text)
        stats = extractor.stats
        assert stats.blocks > 50
        assert stats.transitions == len(fsm.transitions)
        assert stats.log_lines > 1000
        assert stats.elapsed_seconds > 0
