"""Consensus FSM extraction under chaos-perturbed radio links."""

import pytest

from repro.conformance import standard_suite
from repro.extraction import (ConsensusError, StabilityReport,
                              consensus_extract, merge_with_support)
from repro.core.engine import run_extraction
from repro.fsm import FiniteStateMachine
from repro.lte.channel import ChaosConfig, ImpairmentRates


def machine(*transitions):
    fsm = FiniteStateMachine(name="m", initial_state="s0")
    for source, target, trigger in transitions:
        fsm.add_transition(source, target, (trigger,))
    return fsm


class TestMergeWithSupport:
    def test_union_tracks_supporting_runs(self):
        a = machine(("s0", "s1", "go"), ("s1", "s0", "back"))
        b = machine(("s0", "s1", "go"))
        votes = merge_with_support([a, b])
        support = {t.trigger: runs for t, runs in votes.items()}
        assert support["go"] == (0, 1)
        assert support["back"] == (0,)

    def test_empty_input(self):
        assert merge_with_support([]) == {}


class TestValidation:
    def test_unknown_implementation_rejected(self):
        with pytest.raises(ConsensusError):
            consensus_extract("nope", ChaosConfig.default(), runs=3)

    def test_zero_runs_rejected(self):
        with pytest.raises(ConsensusError):
            consensus_extract("reference", ChaosConfig.default(), runs=0)

    def test_negative_runs_rejected(self):
        with pytest.raises(ConsensusError):
            consensus_extract("reference", ChaosConfig.default(), runs=-3)

    def test_threshold_out_of_range_rejected(self):
        with pytest.raises(ConsensusError):
            consensus_extract("reference", ChaosConfig.default(),
                              runs=3, threshold=4)


class TestSingleRunBaseCase:
    """``runs=1`` is well-defined: the consensus machine *is* the single
    run's machine, agreement is trivially 1.0 and the report is stable."""

    def test_single_run_matches_clean_extraction(self):
        suite = standard_suite()[:6]
        clean = run_extraction("reference", suite)
        outcome = consensus_extract("reference", ChaosConfig.default(),
                                    runs=1, cases=suite,
                                    clean_fsm=clean.fsm)
        report = outcome.report
        assert report.fingerprint_agreement == 1.0
        assert report.stable
        assert report.quarantined == []
        assert report.flaky == []
        assert report.run_fingerprints == (clean.fsm.fingerprint(),)
        assert report.consensus_fingerprint == clean.fsm.fingerprint()
        assert report.clean_is_subgraph is True
        assert outcome.fsm.fingerprint() == clean.fsm.fingerprint()

    def test_single_run_deterministic(self):
        suite = standard_suite()[:4]
        first = consensus_extract("reference", ChaosConfig.default(),
                                  runs=1, cases=suite)
        second = consensus_extract("reference", ChaosConfig.default(),
                                   runs=1, cases=suite)
        assert (first.report.consensus_fingerprint
                == second.report.consensus_fingerprint)


class TestConsensusOnReference:
    """The headline guarantee: at default rates every impairment is
    absorbed by the retransmission discipline, so N noisy runs and the
    clean run all extract the same machine."""

    CASES = None  # full suite

    def test_default_rates_are_fully_absorbed(self):
        suite = standard_suite()[:6]
        clean = run_extraction("reference", suite)
        outcome = consensus_extract("reference", ChaosConfig.default(),
                                    runs=3, cases=suite,
                                    clean_fsm=clean.fsm)
        report = outcome.report
        assert report.quarantined == []
        assert report.flaky == []
        assert report.fingerprint_agreement == 1.0
        assert report.clean_is_subgraph is True
        assert report.consensus_fingerprint == clean.fsm.fingerprint()
        assert report.stable
        assert outcome.fsm.fingerprint() == clean.fsm.fingerprint()

    def test_determinism_across_invocations(self):
        suite = standard_suite()[:4]
        chaos = ChaosConfig.default(seed=11)
        first = consensus_extract("reference", chaos, runs=2, cases=suite)
        second = consensus_extract("reference", chaos, runs=2, cases=suite)
        assert (first.report.run_fingerprints
                == second.report.run_fingerprints)
        assert (first.report.consensus_fingerprint
                == second.report.consensus_fingerprint)
        assert first.report.impairments == second.report.impairments

    def test_aggressive_unscoped_chaos_quarantines(self):
        """scope=all loss (no absorption guarantee) must surface as
        quarantined or flaky transitions, never silently merge."""
        suite = standard_suite()[:6]
        chaos = ChaosConfig(
            downlink=ImpairmentRates(drop=0.5),
            uplink=ImpairmentRates(drop=0.2),
            messages=None, seed=3)
        clean = run_extraction("reference", suite)
        outcome = consensus_extract("reference", chaos, runs=3,
                                    cases=suite, clean_fsm=clean.fsm)
        report = outcome.report
        assert report.fingerprint_agreement < 1.0
        assert report.quarantined or report.flaky
        assert not report.stable
        assert sum(report.impairments.values()) > 0

    def test_report_serializes(self):
        suite = standard_suite()[:3]
        outcome = consensus_extract("reference", ChaosConfig.default(),
                                    runs=2, cases=suite)
        payload = outcome.report.to_dict()
        assert payload["runs"] == 2
        assert payload["seeds"] == [0, 1]
        assert payload["stable"] is True
        assert isinstance(payload["chaos"], dict)
        assert all(isinstance(entry["transition"], str)
                   for entry in payload["support"])


class TestEngineIntegration:
    def test_run_extraction_attaches_stability(self):
        suite = standard_suite()[:4]
        record = run_extraction("reference", suite,
                                chaos=ChaosConfig.default(), chaos_runs=3)
        assert isinstance(record.stability, StabilityReport)
        assert record.stability.stable
        assert record.stability.clean_is_subgraph is True

    def test_single_chaos_run_has_no_stability(self):
        suite = standard_suite()[:4]
        record = run_extraction("reference", suite,
                                chaos=ChaosConfig.default(), chaos_runs=1)
        assert record.stability is None
        assert record.fsm.transitions
