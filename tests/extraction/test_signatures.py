"""Signature table tests: per-implementation mappings."""

from repro.extraction.signatures import (DEFAULT_CONDITION_VARIABLES,
                                         INTERNAL_TRIGGERS, mme_table,
                                         table_for_implementation)
from repro.lte import constants as c
from repro.lte.implementations import OaiLikeUe, ReferenceUe, SrsueLikeUe


class TestImplementationTables:
    def test_reference_prefixes(self):
        table = table_for_implementation(ReferenceUe)
        assert table.incoming_condition("recv_attach_accept") \
            == "attach_accept"
        assert table.outgoing_action("send_attach_complete") \
            == "attach_complete"

    def test_srsue_prefixes(self):
        table = table_for_implementation(SrsueLikeUe)
        assert table.incoming_condition("parse_attach_accept") \
            == "attach_accept"
        assert table.incoming_condition("recv_attach_accept") == ""

    def test_oai_prefixes(self):
        table = table_for_implementation(OaiLikeUe)
        assert table.incoming_condition("emm_recv_paging") == "paging"
        assert table.outgoing_action("emm_send_service_request") \
            == "service_request"

    def test_internal_triggers_mapped(self):
        table = table_for_implementation(ReferenceUe)
        for method, condition in INTERNAL_TRIGGERS.items():
            assert table.incoming_condition(method) == condition

    def test_state_signatures_are_standards_names(self):
        table = table_for_implementation(ReferenceUe)
        assert set(table.state_signatures) == set(c.UE_STATES)
        assert table.initial_state == c.EMM_DEREGISTERED

    def test_all_downlink_messages_covered(self):
        table = table_for_implementation(ReferenceUe)
        for message in c.DOWNLINK_MESSAGES:
            assert table.incoming_condition("recv_" + message) == message

    def test_condition_variables_include_check_inputs(self):
        assert "mac_valid" in DEFAULT_CONDITION_VARIABLES
        assert "count_higher" in DEFAULT_CONDITION_VARIABLES
        assert "sqn_in_window" in DEFAULT_CONDITION_VARIABLES
        assert "paging_match" in DEFAULT_CONDITION_VARIABLES


class TestMmeTable:
    def test_uplink_messages_incoming(self):
        table = mme_table()
        assert table.incoming_condition("recv_attach_request") \
            == "attach_request"
        assert table.outgoing_action("send_attach_accept") \
            == "attach_accept"

    def test_mme_states(self):
        table = mme_table()
        assert set(table.state_signatures) == set(c.MME_STATES)
        assert table.initial_state == c.MME_DEREGISTERED
