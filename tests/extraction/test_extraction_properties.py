"""Property-style invariants of the model extractor on real logs."""

from repro.conformance import full_suite, run_conformance, standard_suite
from repro.extraction import extract_model, table_for_implementation
from repro.lte.implementations import REGISTRY


def _extract(log_text, implementation="srsue"):
    table = table_for_implementation(REGISTRY[implementation])
    fsm, _stats = extract_model(log_text, table)
    return fsm


class TestExtractionInvariants:
    def test_monotone_in_the_log(self, conformance_runs):
        """More log can only add behaviour, never remove it."""
        full = conformance_runs["srsue"].log_text
        # split at a TESTCASE boundary near the middle
        marker = "TESTCASE"
        positions = [i for i in range(len(full))
                     if full.startswith(marker, i)]
        half = full[:positions[len(positions) // 2]]
        small = _extract(half)
        large = _extract(full)
        assert set(small.transitions) <= set(large.transitions)
        assert small.states <= large.states

    def test_concatenation_is_union(self, conformance_runs):
        """Extracting log A + log B equals merging the two extractions
        (blocks are independent, so extraction distributes over
        concatenation at TESTCASE boundaries)."""
        log_a = run_conformance("srsue", standard_suite()[:5]).log_text
        log_b = run_conformance("srsue", standard_suite()[5:10]).log_text
        combined = _extract(log_a + log_b)
        first = _extract(log_a)
        second = _extract(log_b)
        first.merge(second)
        assert set(combined.transitions) == set(first.transitions)

    def test_idempotent_on_repeated_log(self, conformance_runs):
        log = conformance_runs["oai"].log_text
        once = _extract(log, "oai")
        thrice = _extract(log * 3, "oai")
        assert set(once.transitions) == set(thrice.transitions)

    def test_extraction_only_uses_signature_lines(self, conformance_runs):
        """Injecting arbitrary non-signature noise between records does
        not change the extracted machine."""
        log = conformance_runs["reference"].log_text
        noisy_lines = []
        for index, line in enumerate(log.splitlines()):
            noisy_lines.append(line)
            if index % 7 == 0:
                noisy_lines.append("[build] compiling nas_worker.cc")
                noisy_lines.append("random stdout 12345")
        clean = _extract(log, "reference")
        noisy = _extract("\n".join(noisy_lines), "reference")
        assert set(clean.transitions) == set(noisy.transitions)

    def test_states_subset_of_standards(self, extracted_models):
        from repro.lte import constants as c
        for implementation, fsm in extracted_models.items():
            assert fsm.states <= set(c.UE_STATES), implementation
