"""End-to-end MC verdict cache: a warm re-analysis does zero MC work.

This is the pipeline-level contract behind ``--mc-cache``: with an
unchanged implementation and property selection, every CEGAR iteration's
model-checking call resolves from the persistent cache, so the canonical
stats of the warm run contain no ``mc.checks`` at all — while the
verdicts (and detected attacks) are exactly those of a cold run.
"""

import pytest

from repro.api import AnalysisConfig, ProChecker

# A deliberately mixed slice of the catalog: multi-iteration CEGAR
# (SEC-11 refines), a violated property with a counterexample, and a
# plain verified one.  Small enough to keep the test fast.
_PROPERTY_IDS = ["SEC-01", "SEC-11", "SEC-13", "PRIV-10"]


def _analyze(cache_dir):
    config = AnalysisConfig("srsue", jobs=1,
                            property_ids=_PROPERTY_IDS,
                            mc_cache_dir=str(cache_dir))
    return ProChecker.from_config(config).analyze()


@pytest.fixture(scope="module")
def cold_and_warm(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("mc-cache")
    return _analyze(cache_dir), _analyze(cache_dir)


class TestWarmReanalysis:
    def test_cold_run_does_mc_work_and_fills_the_cache(self,
                                                       cold_and_warm):
        cold, _ = cold_and_warm
        assert cold.stats.to_dict()["totals"].get("mc.checks", 0) > 0

    def test_warm_run_does_zero_mc_checks(self, cold_and_warm):
        _, warm = cold_and_warm
        totals = warm.stats.to_dict()["totals"]
        assert totals.get("mc.checks", 0) == 0
        assert totals.get("mc.states_explored", 0) == 0
        assert totals.get("mc.product_states", 0) == 0

    def test_warm_verdicts_identical(self, cold_and_warm):
        cold, warm = cold_and_warm
        assert (sorted(r.signature() for r in cold.results)
                == sorted(r.signature() for r in warm.results))
        assert cold.detected_attacks() == warm.detected_attacks()

    def test_warm_counterexamples_survive_the_cache(self, cold_and_warm):
        _, warm = cold_and_warm
        violated = [r for r in warm.results if r.violated]
        assert violated
        for result in violated:
            assert result.evidence

    def test_uncached_config_matches_cached_verdicts(self, cold_and_warm):
        cold, _ = cold_and_warm
        plain = ProChecker.from_config(AnalysisConfig(
            "srsue", jobs=1, property_ids=_PROPERTY_IDS)).analyze()
        assert (sorted(r.signature() for r in plain.results)
                == sorted(r.signature() for r in cold.results))
