"""Report structure tests."""

import pytest

from repro.core.report import (AnalysisReport, PropertyResult, Verdict,
                               VERDICT_ERROR, VERDICT_NOT_APPLICABLE,
                               VERDICT_VERIFIED, VERDICT_VIOLATED)
from repro.properties import property_by_id
from repro.threat import ThreatConfig
from repro.properties.spec import Property, KIND_LTL


def make_property(identifier="SEC-X", attack_id=""):
    return Property(identifier, "security", KIND_LTL, "test property",
                    formula="G (true)", threat=ThreatConfig(),
                    attack_id=attack_id)


def make_report():
    report = AnalysisReport(implementation="srsue",
                            fsm_summary={"states": 9, "transitions": 40},
                            coverage_percent=100.0)
    report.results.append(PropertyResult(
        make_property("SEC-A"), VERDICT_VERIFIED, elapsed_seconds=0.1))
    report.results.append(PropertyResult(
        make_property("SEC-B", attack_id="P1"), VERDICT_VIOLATED,
        evidence="replay accepted", iterations=2, elapsed_seconds=0.2))
    report.results.append(PropertyResult(
        make_property("SEC-C", attack_id="P1"), VERDICT_VIOLATED))
    return report


class TestVerdictEnum:
    def test_members_and_values(self):
        assert Verdict.VERIFIED.value == "verified"
        assert Verdict.VIOLATED.value == "violated"
        assert Verdict.NOT_APPLICABLE.value == "not-applicable"

    def test_legacy_constants_are_enum_members(self):
        assert VERDICT_VERIFIED is Verdict.VERIFIED
        assert VERDICT_VIOLATED is Verdict.VIOLATED
        assert VERDICT_NOT_APPLICABLE is Verdict.NOT_APPLICABLE
        assert VERDICT_ERROR is Verdict.ERROR

    def test_error_member(self):
        assert Verdict.ERROR.value == "error"
        result = PropertyResult(make_property(), "error",
                                evidence="checker error: boom")
        assert result.outcome is Verdict.ERROR
        assert not result.violated

    def test_string_coercion_in_constructor(self):
        result = PropertyResult(make_property(), "violated")
        assert result.outcome is Verdict.VIOLATED

    def test_deprecated_verdict_alias(self):
        result = PropertyResult(make_property(), Verdict.VERIFIED)
        with pytest.deprecated_call():
            value = result.verdict
        assert value == "verified"
        assert value == result.outcome.value

    def test_to_dict_emits_plain_strings(self):
        # from_dict resolves the property from the catalog, so the
        # round-trip needs a real identifier
        result = PropertyResult(property_by_id("SEC-37"), Verdict.VERIFIED)
        assert result.to_dict()["verdict"] == "verified"
        restored = PropertyResult.from_dict(result.to_dict())
        assert restored.outcome is Verdict.VERIFIED


class TestPropertyResult:
    def test_violated_flag(self):
        result = PropertyResult(make_property(), VERDICT_VIOLATED)
        assert result.violated
        assert not PropertyResult(make_property(),
                                  VERDICT_VERIFIED).violated

    def test_summary_mentions_cegar_iterations(self):
        result = PropertyResult(make_property(), VERDICT_VERIFIED,
                                iterations=3, elapsed_seconds=1.0)
        assert "3 CEGAR iterations" in result.summary()

    def test_summary_quiet_for_single_iteration(self):
        result = PropertyResult(make_property(), VERDICT_VERIFIED,
                                iterations=1)
        assert "CEGAR" not in result.summary()


class TestAnalysisReport:
    def test_partitions(self):
        report = make_report()
        assert len(report.verified()) == 1
        assert len(report.violated()) == 2

    def test_attack_ids_deduplicated(self):
        report = make_report()
        assert report.detected_attacks() == {"P1"}

    def test_counts(self):
        counts = make_report().counts()
        assert counts == {"properties": 3, "verified": 1,
                          "violated": 2, "errors": 0, "attacks": 1}

    def test_result_lookup(self):
        report = make_report()
        assert report.result_for("SEC-B").violated
        with pytest.raises(KeyError):
            report.result_for("SEC-Z")

    def test_format_table(self):
        text = make_report().format_table()
        assert "srsue" in text
        assert "SEC-A" in text
        assert "P1" in text
        assert "total: 3 properties" in text
        assert "checker errors" not in text   # quiet when error-free

    def test_error_partition_and_counts(self):
        report = make_report()
        report.results.append(PropertyResult(
            make_property("SEC-D"), VERDICT_ERROR,
            evidence="checker error: InjectedFault: boom"))
        assert [r.property.identifier for r in report.errors()] == ["SEC-D"]
        assert report.counts()["errors"] == 1
        # an errored property is not a detection
        assert report.detected_attacks() == {"P1"}
        assert "1 checker errors" in report.format_table()
