"""Fault-tolerant engine: crash isolation, timeouts, serial fallback.

Every test drives the engine through :mod:`repro.faults`, the
deterministic fault-injection harness: a fault fires on the k-th call to
a named site, so crashed workers, hung groups and raising checkers are
reproducible on demand.  The contract under test is the ISSUE's
acceptance criterion — with a fault injected into any one property
group, ``analyze``/``analyze_many`` still return a *complete* report
whose healthy verdicts are byte-identical to a fault-free serial run.
"""

import json

import pytest

import repro.obs as obs
from repro import faults
from repro.cli import main as cli_main
from repro.core import (AnalysisConfig, ProChecker, Verdict, analyze_many,
                        exception_chain)
from repro.core.engine import error_result
from repro.properties import ALL_PROPERTIES, property_by_id

#: a small cross-section: the SEC-01 LTL group (SEC-01/02/05 share one
#: threat config), a second LTL group, and one testbed property
SUBSET = ("SEC-01", "SEC-02", "SEC-05", "PRIV-01", "SEC-10", "SEC-11")


@pytest.fixture(autouse=True)
def clean_faults():
    faults.clear()
    yield
    faults.clear()


@pytest.fixture(scope="module")
def baseline():
    """Fault-free serial run of the full catalog (the golden verdicts)."""
    faults.clear()
    return ProChecker.from_config(
        AnalysisConfig("reference", jobs=1)).analyze()


def signatures_by_id(report):
    return {sig[0]: sig for sig in report.verdict_signature()}


def engine_counters(report):
    counters = report.stats.runtime["metrics"]["counters"]
    return {name: value for name, value in counters.items()
            if name.startswith("engine.")}


# ---------------------------------------------------------------------------
# The harness itself
# ---------------------------------------------------------------------------
class TestFaultSpec:
    def test_parse_full_form(self):
        spec = faults.FaultSpec.parse("engine.verify_group@SEC-01:exit:2:all")
        assert spec.site == "engine.verify_group"
        assert spec.key == "SEC-01"
        assert spec.kind == faults.KIND_EXIT
        assert spec.nth == 2
        assert spec.scope == faults.SCOPE_ALL

    def test_parse_defaults(self):
        spec = faults.FaultSpec.parse("cegar.iteration:raise")
        assert spec.key is None
        assert spec.nth == 1
        assert spec.scope == faults.SCOPE_WORKER

    @pytest.mark.parametrize("bad", [
        "no-kind", "site:frobnicate", "site:raise:zero", "site:raise:-1",
        "a:raise:1:everywhere", "a:raise:1:all:extra", ":raise",
    ])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(faults.FaultSpecError):
            faults.FaultSpec.parse(bad)

    def test_round_trip(self):
        spec = faults.FaultSpec.parse("testbed.advance:hang:3")
        assert faults.FaultSpec.from_dict(spec.to_dict()) == spec
        plan = faults.FaultPlan.of(spec)
        assert faults.FaultPlan.from_dict(plan.to_dict()) == plan
        assert spec.describe() in plan.describe()


class TestTrip:
    def test_nth_zero_fires_on_every_matching_call(self):
        faults.install(faults.FaultPlan.parse(["site.x@k:raise:0:all"]))
        for _ in range(3):
            with pytest.raises(faults.InjectedFault):
                faults.trip("site.x", key="k")
        faults.trip("site.x", key="other")   # key mismatch: never fires

    def test_fires_on_nth_matching_call_only(self):
        faults.install(faults.FaultPlan.parse(["site.x@k:raise:3:all"]))
        faults.trip("site.x", key="k")
        faults.trip("site.x", key="other")   # key mismatch: not counted
        faults.trip("site.y", key="k")       # site mismatch: not counted
        faults.trip("site.x", key="k")
        with pytest.raises(faults.InjectedFault):
            faults.trip("site.x", key="k")
        faults.trip("site.x", key="k")       # nth passed: quiet again

    def test_worker_scope_does_not_fire_in_parent(self):
        faults.install(faults.FaultPlan.parse(["site.x:raise:1"]))
        faults.trip("site.x")                # scope=worker, main process
        assert faults.call_counts() == {"site.x:raise:1:worker": 1}

    def test_reset_counters_restarts_counting(self):
        faults.install(faults.FaultPlan.parse(["site.x:raise:2:all"]))
        faults.trip("site.x")
        faults.reset_counters()
        faults.trip("site.x")                # first call again, no fire
        with pytest.raises(faults.InjectedFault):
            faults.trip("site.x")

    def test_no_plan_is_a_no_op(self):
        faults.clear()
        faults.trip("anything", key="at-all")
        assert faults.call_counts() == {}


# ---------------------------------------------------------------------------
# Crash isolation: ERROR verdicts
# ---------------------------------------------------------------------------
class TestErrorVerdict:
    def test_exception_chain_walks_causes(self):
        try:
            try:
                raise KeyError("inner")
            except KeyError as inner:
                raise RuntimeError("outer") from inner
        except RuntimeError as exc:
            rendered = exception_chain(exc)
        assert rendered == "RuntimeError: outer <- caused by KeyError: 'inner'"

    def test_error_result_carries_chain_in_evidence(self):
        result = error_result(property_by_id("SEC-01"), ValueError("bad"))
        assert result.outcome is Verdict.ERROR
        assert "ValueError: bad" in result.evidence
        assert result.evidence.startswith("checker error:")

    def test_serial_run_isolates_a_raising_property(self, baseline):
        plan = faults.FaultPlan.parse(["engine.verify_one@SEC-02:raise:1:all"])
        report = ProChecker.from_config(AnalysisConfig(
            "reference", jobs=1, fault_plan=plan)).analyze()
        assert len(report.results) == 62
        errored = report.result_for("SEC-02")
        assert errored.outcome is Verdict.ERROR
        assert "InjectedFault" in errored.evidence
        assert report.counts()["errors"] == 1
        healthy = signatures_by_id(report)
        golden = signatures_by_id(baseline)
        for identifier, sig in golden.items():
            if identifier != "SEC-02":
                assert healthy[identifier] == sig

    def test_pooled_run_isolates_a_raising_property(self, baseline):
        plan = faults.FaultPlan.parse(["engine.verify_one@SEC-02:raise:1:all"])
        report = analyze_many([AnalysisConfig(
            "reference", jobs=4, fault_plan=plan)])["reference"]
        assert report.result_for("SEC-02").outcome is Verdict.ERROR
        # the raise is caught at the group boundary: the group's other
        # members (SEC-01, SEC-05 share SEC-02's threat config) are fine
        golden = signatures_by_id(baseline)
        healthy = signatures_by_id(report)
        for identifier in ("SEC-01", "SEC-05"):
            assert healthy[identifier] == golden[identifier]
        # no retries needed — isolation happened inside the worker
        assert "engine.group_retries" not in engine_counters(report)
        assert report.stats.canonical_json() != ""   # stats still collected

    def test_error_surfaces_in_json_payload(self):
        plan = faults.FaultPlan.parse(["engine.verify_one@SEC-10:raise:1:all"])
        report = ProChecker.from_config(AnalysisConfig(
            "reference", jobs=1, property_ids=SUBSET,
            fault_plan=plan)).analyze()
        payload = json.loads(json.dumps(report.to_dict()))
        row = next(item for item in payload["results"]
                   if item["property"] == "SEC-10")
        assert row["verdict"] == "error"
        assert "InjectedFault" in row["evidence"]
        assert payload["counts"]["errors"] == 1


# ---------------------------------------------------------------------------
# Pool resilience: crashed workers, retries, rebuilds, degradation
# ---------------------------------------------------------------------------
class TestPoolResilience:
    def test_worker_exit_still_yields_full_report(self, baseline):
        """The acceptance criterion: an exit(13) in the SEC-01 group's
        worker at --jobs 4 must not cost a single verdict."""
        plan = faults.FaultPlan.parse(["engine.verify_group@SEC-01:exit:1"])
        report = analyze_many([AnalysisConfig(
            "reference", jobs=4, fault_plan=plan,
            retry_backoff_seconds=0.01)])["reference"]
        assert len(report.results) == 62
        assert report.counts()["errors"] == 0
        # verdicts (order included) byte-identical to fault-free serial
        assert report.verdict_signature() == baseline.verdict_signature()
        counters = engine_counters(report)
        assert counters.get("engine.group_crashes", 0) >= 1
        assert counters.get("engine.group_retries", 0) >= 1
        assert counters.get("engine.pool_rebuilds", 0) >= 1
        # the persistent fault re-fires per rebuilt worker, so the
        # faulty group completes via the in-process serial fallback
        assert counters.get("engine.group_degradations", 0) >= 1
        # degradation never changes the canonical stats projection
        assert report.stats.canonical_json() \
            == baseline.stats.canonical_json()

    def test_hung_group_times_out_then_falls_back(self, baseline):
        """A group exceeding group_timeout_seconds is retried and then
        completed serially without aborting the pool."""
        spec = faults.FaultSpec("engine.verify_group", faults.KIND_HANG,
                                key="SEC-01", hang_seconds=60.0)
        report = analyze_many([AnalysisConfig(
            "reference", jobs=2, property_ids=SUBSET,
            fault_plan=faults.FaultPlan.of(spec),
            group_timeout_seconds=1.5, max_group_retries=1,
            retry_backoff_seconds=0.01)])["reference"]
        assert [r.property.identifier for r in report.results] \
            == list(SUBSET)
        assert report.counts()["errors"] == 0
        golden = signatures_by_id(baseline)
        assert all(signatures_by_id(report)[i] == golden[i]
                   for i in SUBSET)
        counters = engine_counters(report)
        assert counters.get("engine.group_timeouts", 0) >= 1
        assert counters.get("engine.group_retries", 0) >= 1
        assert counters.get("engine.group_degradations", 0) >= 1

    def test_clean_pooled_run_reports_no_resilience_events(self, baseline):
        report = analyze_many([AnalysisConfig(
            "reference", jobs=4, group_timeout_seconds=120.0)])["reference"]
        assert report.verdict_signature() == baseline.verdict_signature()
        assert engine_counters(report) == {}

    def test_fallback_span_marks_degraded_groups(self):
        obs.reset()
        plan = faults.FaultPlan.parse(["engine.verify_group@SEC-01:exit:1"])
        analyze_many([AnalysisConfig(
            "reference", jobs=4, property_ids=SUBSET, fault_plan=plan,
            max_group_retries=0, retry_backoff_seconds=0.0)])
        roots = obs.drain_spans()
        analyze_root = next(r for r in roots if r.name == "pipeline.analyze")
        fallbacks = analyze_root.find("engine.fallback")
        assert fallbacks
        assert any(span.attributes.get("group") == "SEC-01"
                   for span in fallbacks)


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------
class TestCliFaultInjection:
    def test_bad_spec_is_a_usage_error(self, capsys):
        code = cli_main(["analyze", "reference", "--inject-fault",
                         "engine.verify_group:frobnicate"])
        assert code == 2
        assert "bad --inject-fault" in capsys.readouterr().err

    def test_error_verdict_maps_to_exit_code_4(self, capsys):
        code = cli_main(["analyze", "reference", "--jobs", "1",
                         "--inject-fault",
                         "engine.verify_one@SEC-11:raise:1:all", "--json"])
        assert code == 4
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["errors"] == 1
        assert faults.installed() is None   # plan cleared after the run

    def test_degraded_run_exits_clean(self, capsys):
        """A worker-scope exit fault degrades but loses no verdict, so
        the exit code stays 0 — robustness is not an error."""
        code = cli_main(["analyze", "reference", "--jobs", "4",
                         "--inject-fault",
                         "engine.verify_group@SEC-01:exit:1", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["errors"] == 0
        assert len(payload["results"]) == 62
