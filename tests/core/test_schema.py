"""Wire-format versioning: schema_version stamping and major rejection."""

import pytest

from repro import schema
from repro.core import AnalysisConfig, AnalysisReport, PropertyResult, Verdict
from repro.obs.stats import PipelineStats
from repro.properties import property_by_id


def _small_report():
    result = PropertyResult(property=property_by_id("SEC-01"),
                            outcome=Verdict.VERIFIED,
                            evidence="holds", iterations=1)
    return AnalysisReport(implementation="reference", results=[result])


class TestSchemaModule:
    def test_current_version_parses(self):
        major, minor = schema.parse_version(schema.SCHEMA_VERSION)
        assert (major, minor) == (1, 2)
        assert schema.CURRENT_MAJOR == 1

    def test_stamp_sets_key(self):
        payload = schema.stamp({"x": 1})
        assert payload[schema.SCHEMA_KEY] == schema.SCHEMA_VERSION

    def test_check_accepts_current_and_legacy(self):
        assert schema.check({schema.SCHEMA_KEY: "1.0"}) == (1, 0)
        # Pre-versioning payloads are grandfathered in (None, no raise).
        assert schema.check({"implementation": "oai"}) is None

    def test_check_accepts_future_minor(self):
        # Minor bumps are additive by policy: old readers must accept.
        assert schema.check({schema.SCHEMA_KEY: "1.7"}) == (1, 7)

    def test_check_rejects_future_major(self):
        with pytest.raises(schema.SchemaVersionError, match="major"):
            schema.check({schema.SCHEMA_KEY: "99.0"}, "AnalysisReport")

    def test_check_rejects_malformed(self):
        for bad in ("one.zero", "", "v1.0", "1.x"):
            with pytest.raises(schema.SchemaVersionError):
                schema.check({schema.SCHEMA_KEY: bad})

    def test_error_is_a_value_error(self):
        assert issubclass(schema.SchemaVersionError, ValueError)


class TestReportVersioning:
    def test_report_round_trip_current(self):
        report = _small_report()
        payload = report.to_dict()
        assert payload[schema.SCHEMA_KEY] == schema.SCHEMA_VERSION
        assert (payload["results"][0][schema.SCHEMA_KEY]
                == schema.SCHEMA_VERSION)
        rebuilt = AnalysisReport.from_dict(payload)
        assert rebuilt.verdict_signature() == report.verdict_signature()

    def test_report_rejects_future_major(self):
        payload = _small_report().to_dict()
        payload[schema.SCHEMA_KEY] = "99.0"
        with pytest.raises(schema.SchemaVersionError):
            AnalysisReport.from_dict(payload)

    def test_property_result_rejects_future_major(self):
        payload = _small_report().results[0].to_dict()
        payload[schema.SCHEMA_KEY] = "99.0"
        with pytest.raises(schema.SchemaVersionError):
            PropertyResult.from_dict(payload)

    def test_report_accepts_future_minor(self):
        payload = _small_report().to_dict()
        payload[schema.SCHEMA_KEY] = "1.9"
        payload["brand_new_optional_field"] = True
        rebuilt = AnalysisReport.from_dict(payload)
        assert rebuilt.implementation == "reference"

    def test_legacy_unversioned_payload_accepted(self):
        payload = _small_report().to_dict()
        del payload[schema.SCHEMA_KEY]
        for item in payload["results"]:
            del item[schema.SCHEMA_KEY]
        rebuilt = AnalysisReport.from_dict(payload)
        assert len(rebuilt.results) == 1


class TestStatsVersioning:
    def test_stats_round_trip(self):
        stats = PipelineStats()
        payload = stats.to_dict()
        assert payload[schema.SCHEMA_KEY] == schema.SCHEMA_VERSION
        PipelineStats.from_dict(payload)

    def test_stats_rejects_future_major(self):
        payload = PipelineStats().to_dict()
        payload[schema.SCHEMA_KEY] = "99.0"
        with pytest.raises(schema.SchemaVersionError):
            PipelineStats.from_dict(payload)

    def test_canonical_dict_stays_unversioned(self):
        # canonical_dict feeds determinism comparisons and must stay
        # byte-identical across releases, so it is deliberately unstamped.
        assert schema.SCHEMA_KEY not in PipelineStats().canonical_dict()


class TestConfigVersioning:
    def test_config_round_trip(self):
        config = AnalysisConfig("srsue", property_ids=["SEC-01", "SEC-02"],
                                jobs=2)
        payload = config.to_dict()
        assert payload[schema.SCHEMA_KEY] == schema.SCHEMA_VERSION
        rebuilt = AnalysisConfig.from_dict(payload)
        assert rebuilt.implementation == "srsue"
        assert rebuilt.property_ids == ["SEC-01", "SEC-02"]
        assert rebuilt.jobs == 2

    def test_config_rejects_future_major(self):
        payload = AnalysisConfig("oai").to_dict()
        payload[schema.SCHEMA_KEY] = "99.0"
        with pytest.raises(schema.SchemaVersionError):
            AnalysisConfig.from_dict(payload)
