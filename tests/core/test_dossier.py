"""Attack dossier tests."""

import pytest

from repro.core import ProChecker, build_dossier, render_markdown
from repro.properties.expected import expected_detected


@pytest.fixture(scope="module")
def srsue_dossier():
    report = ProChecker("srsue").analyze()
    return build_dossier(report, validate_on_testbed=True)


class TestBuild:
    def test_one_finding_per_attack(self, srsue_dossier):
        attack_ids = [finding.attack_id
                      for finding in srsue_dossier.findings]
        assert len(attack_ids) == len(set(attack_ids))
        assert set(attack_ids) == expected_detected("srsue")

    def test_findings_group_properties(self, srsue_dossier):
        finding = srsue_dossier.finding("I1")
        identifiers = {result.property.identifier
                       for result in finding.properties}
        assert {"SEC-06", "SEC-07"} <= identifiers

    def test_testbed_validation_recorded(self, srsue_dossier):
        for finding in srsue_dossier.findings:
            assert finding.testbed_validated is True, finding.attack_id
            assert finding.testbed_evidence

    def test_counterexample_attached_for_mc_findings(self, srsue_dossier):
        finding = srsue_dossier.finding("P1")
        assert finding.counterexample is not None
        assert any(label.startswith("adv_replay")
                   for label in finding.counterexample.labels)

    def test_categories(self, srsue_dossier):
        assert srsue_dossier.finding("P2").categories == ["privacy"]
        assert "security" in srsue_dossier.finding("P3").categories

    def test_unknown_attack_lookup(self, srsue_dossier):
        with pytest.raises(KeyError):
            srsue_dossier.finding("P99")


class TestRender:
    def test_markdown_structure(self, srsue_dossier):
        text = render_markdown(srsue_dossier)
        assert text.startswith("# ProChecker findings — `srsue`")
        assert "| attack | property ids |" in text
        assert "## P1" in text
        assert "```" in text               # a counterexample block
        assert "adv_replay_dl_authentication_request" in text

    def test_summary_counts(self, srsue_dossier):
        text = render_markdown(srsue_dossier)
        assert f"{len(srsue_dossier.findings)} distinct attacks" in text
