"""Chaos channel ↔ analysis pipeline: the byte-identity guarantee.

The headline contract of the chaos subsystem: at the default sub-abort
impairment rates the retransmission discipline absorbs every loss, so a
chaos-perturbed analysis must produce the byte-identical verdict
signature and canonical PipelineStats of a clean run — noise changes the
report's *stability* block, never its conclusions.
"""

import json

from repro.core import AnalysisConfig, ProChecker
from repro.core.report import AnalysisReport
from repro.lte.channel import ChaosConfig
from repro.properties import ALL_PROPERTIES

SUBSET = ALL_PROPERTIES[:6]


def _analyze(chaos=None, chaos_runs=1):
    config = AnalysisConfig("reference", jobs=1, properties=SUBSET,
                            chaos=chaos, chaos_runs=chaos_runs)
    return ProChecker.from_config(config).analyze()


class TestChaosAnalysisIdentity:
    def test_verdicts_and_canonical_stats_byte_identical(self):
        clean = _analyze()
        chaotic = _analyze(chaos=ChaosConfig.default(seed=0),
                           chaos_runs=2)
        assert clean.verdict_signature() == chaotic.verdict_signature()
        assert (clean.stats.canonical_json()
                == chaotic.stats.canonical_json())

    def test_stability_attached_only_under_consensus_chaos(self):
        clean = _analyze()
        chaotic = _analyze(chaos=ChaosConfig.default(seed=0),
                           chaos_runs=2)
        assert clean.stability is None
        assert chaotic.stability is not None
        assert chaotic.stability["stable"] is True
        assert chaotic.stability["quarantined"] == []

    def test_stability_round_trips_through_report_dict(self):
        chaotic = _analyze(chaos=ChaosConfig.default(seed=0),
                           chaos_runs=2)
        payload = json.loads(json.dumps(chaotic.to_dict()))
        restored = AnalysisReport.from_dict(payload)
        assert restored.stability == chaotic.stability
        assert restored.verdict_signature() == chaotic.verdict_signature()
