"""End-to-end pipeline tests: the Table I detection matrix."""

import pytest

from repro.core import (ProChecker, ProCheckerError, VERDICT_NOT_APPLICABLE,
                        VERDICT_VERIFIED, VERDICT_VIOLATED)
from repro.properties import property_by_id
from repro.properties.expected import (NEW_ATTACKS,
                                       PRIOR_DETECTED,
                                       PRIOR_NOT_APPLICABLE)


@pytest.fixture(scope="module")
def reports():
    return {impl: ProChecker(impl).analyze()
            for impl in ("reference", "srsue", "oai")}


class TestPipelineBasics:
    def test_unknown_implementation_rejected(self):
        with pytest.raises(ProCheckerError):
            ProChecker("huawei")

    def test_extraction_cached(self):
        checker = ProChecker("reference")
        assert checker.extract() is checker.extract()

    def test_report_metadata(self, reports):
        report = reports["srsue"]
        assert report.fsm_summary["states"] >= 8
        assert report.coverage_percent == 100.0
        assert report.extraction_seconds > 0
        assert report.log_lines > 1000
        assert len(report.results) == 62

    def test_single_property_verification(self):
        checker = ProChecker("reference")
        result = checker.verify_property(property_by_id("SEC-37"))
        assert result.outcome == VERDICT_VERIFIED


class TestDetectionMatrix:
    """RQ1: the verdicts reproduce the paper's Table I exactly."""

    @pytest.mark.parametrize("attack_id", sorted(NEW_ATTACKS))
    def test_new_attacks(self, reports, attack_id):
        for implementation, should_detect in NEW_ATTACKS[
                attack_id].items():
            detected = attack_id in reports[
                implementation].detected_attacks()
            assert detected == should_detect, (attack_id, implementation)

    @pytest.mark.parametrize("attack_id", PRIOR_DETECTED)
    def test_prior_attacks_detected_everywhere(self, reports, attack_id):
        for implementation, report in reports.items():
            assert attack_id in report.detected_attacks(), implementation

    @pytest.mark.parametrize("attack_id", PRIOR_NOT_APPLICABLE)
    def test_dash_rows_not_applicable(self, reports, attack_id):
        """Table I marks these rows '-' (not evaluated)."""
        for report in reports.values():
            assert attack_id not in report.detected_attacks()

    def test_paper_headline_counts(self, reports):
        """3 new protocol attacks + per-implementation issues + at least
        the 12 applicable prior attacks."""
        for implementation, report in reports.items():
            attacks = report.detected_attacks()
            assert {"P1", "P2", "P3"} <= attacks
            prior = {a for a in attacks if a.startswith("PRIOR-")}
            assert len(prior) == 12

    def test_srsue_issue_set(self, reports):
        issues = {a for a in reports["srsue"].detected_attacks()
                  if a.startswith("I")}
        assert issues == {"I1", "I3", "I4", "I6"}

    def test_oai_issue_set(self, reports):
        issues = {a for a in reports["oai"].detected_attacks()
                  if a.startswith("I")}
        assert issues == {"I1", "I2", "I5", "I6"}

    def test_reference_has_no_implementation_issues(self, reports):
        issues = {a for a in reports["reference"].detected_attacks()
                  if a.startswith("I")}
        assert issues == set()


class TestVerdictQuality:
    def test_no_unexpected_violations(self, reports):
        """Every violated property maps to a known Table I attack."""
        for implementation, report in reports.items():
            for result in report.violated():
                assert result.property.attack_id, (
                    implementation, result.property.identifier)

    def test_violations_carry_evidence(self, reports):
        for report in reports.values():
            for result in report.violated():
                assert result.counterexample is not None \
                    or result.evidence

    def test_format_table_renders(self, reports):
        text = reports["srsue"].format_table()
        assert "SEC-01" in text
        assert "violated" in text

    def test_result_lookup(self, reports):
        result = reports["oai"].result_for("PRIV-08")
        assert result.outcome == VERDICT_VIOLATED
        with pytest.raises(KeyError):
            reports["oai"].result_for("NOPE-1")

    def test_not_applicable_verdict(self, reports):
        result = reports["reference"].result_for("PRIV-07")
        assert result.outcome == VERDICT_NOT_APPLICABLE
