"""CEGAR loop tests: feasibility bridge, refinement, convergence."""

import pytest

from repro.baselines import lteinspector_mme
from repro.core.cegar import (CounterexampleValidator, check_with_cegar,
                              harvestable_messages, message_term,
                              threat_config_key)
from repro.cpv.deduction import Knowledge
from repro.cpv.terms import const
from repro.lte import constants as c
from repro.properties import ALL_PROPERTIES
from repro.properties.spec import KIND_LTL
from repro.threat import ThreatConfig


class TestThreatConfigKey:
    def test_key_is_order_insensitive(self):
        """Capability tuples are sets semantically: listing them in a
        different order must not split the model cache."""
        a = ThreatConfig(replay_dl=(c.ATTACH_ACCEPT, c.PAGING),
                         inject_dl=(c.IDENTITY_REQUEST, c.PAGING),
                         inject_ul=(c.ATTACH_REQUEST, c.DETACH_REQUEST))
        b = ThreatConfig(replay_dl=(c.PAGING, c.ATTACH_ACCEPT),
                         inject_dl=(c.PAGING, c.IDENTITY_REQUEST),
                         inject_ul=(c.DETACH_REQUEST, c.ATTACH_REQUEST))
        assert threat_config_key(a) == threat_config_key(b)

    def test_distinct_capabilities_distinct_keys(self):
        a = ThreatConfig(replay_dl=(c.PAGING,))
        b = ThreatConfig(inject_dl=(c.PAGING,))
        assert threat_config_key(a) != threat_config_key(b)

    def test_catalog_dedups_49_ltl_properties_to_21_configs(self):
        """The sharing ratio the engine's grouping (and the model cache)
        is built on: the 49 LTL properties describe only 21 distinct
        adversaries."""
        ltl = [p for p in ALL_PROPERTIES if p.kind == KIND_LTL]
        assert len(ltl) == 49
        keys = {threat_config_key(p.threat) for p in ltl}
        assert len(keys) == 21


class TestMessageTerms:
    def test_plain_term_constructible(self):
        term = message_term(c.PAGING)
        assert Knowledge().can_construct(term)

    def test_forged_mac_not_constructible(self):
        term = message_term(c.SECURITY_MODE_COMMAND, forged_mac=True)
        assert not Knowledge().can_construct(term)

    def test_auth_request_forgery_needs_permanent_key(self):
        term = message_term(c.AUTHENTICATION_REQUEST, forged_mac=True)
        assert not Knowledge().can_construct(term)


class TestHarvestable:
    def test_auth_request_harvestable(self, mme_model):
        """The P1 capture phase as a reachability query: an adversary
        attach_request makes the network mint an authentication_request."""
        harvested = harvestable_messages(mme_model)
        assert c.AUTHENTICATION_REQUEST in harvested

    def test_context_protected_messages_not_harvestable(self, mme_model):
        harvested = harvestable_messages(mme_model)
        assert c.ATTACH_ACCEPT not in harvested
        assert c.SECURITY_MODE_COMMAND not in harvested

    def test_reject_harvestable(self, mme_model):
        # auth_mac_failure (constructible) makes the MME emit a reject
        harvested = harvestable_messages(mme_model)
        assert c.ATTACH_REJECT in harvested


class TestValidatorJudgements:
    @pytest.fixture
    def validator(self, mme_model):
        return CounterexampleValidator(mme_model)

    def test_pass_and_drop_feasible(self, validator):
        verdict = validator._judge("adv_drop_dl", {}, set(), Knowledge())
        assert verdict.feasible

    def test_auth_replay_feasible_via_harvest(self, validator):
        verdict = validator._judge(
            "adv_replay_dl_authentication_request", {}, set(),
            Knowledge())
        assert verdict.feasible
        assert "capture" in verdict.reason

    def test_session_replay_needs_prior_send(self, validator):
        label = "adv_replay_dl_attach_accept"
        verdict = validator._judge(label, {}, set(), Knowledge())
        assert not verdict.feasible
        assert verdict.refinement.kind == "replay_needs_capture"
        verdict = validator._judge(label, {}, {c.ATTACH_ACCEPT},
                                   Knowledge())
        assert verdict.feasible

    def test_forged_mac_injection_infeasible(self, validator):
        verdict = validator._judge(
            "adv_inject_dl_security_mode_command",
            {"dl_mac_valid": 1, "dl_plain": 0}, set(), Knowledge())
        assert not verdict.feasible
        assert verdict.refinement.kind == "no_forge"

    def test_plain_injection_feasible(self, validator):
        verdict = validator._judge(
            "adv_inject_dl_paging",
            {"dl_mac_valid": 0, "dl_plain": 1}, set(), Knowledge())
        assert verdict.feasible

    def test_plain_header_injection_of_protected_feasible(self,
                                                          validator):
        """The I2 vector: a plaintext-header protected-type message is
        trivially constructible."""
        verdict = validator._judge(
            "adv_inject_dl_guti_reallocation_command",
            {"dl_mac_valid": 0, "dl_plain": 1}, set(), Knowledge())
        assert verdict.feasible

    def test_protected_uplink_injection_infeasible(self, validator):
        verdict = validator._judge("adv_inject_ul_attach_complete",
                                   {}, set(), Knowledge())
        assert not verdict.feasible
        assert verdict.refinement.kind == "no_inject_ul"

    def test_plain_uplink_injection_feasible(self, validator):
        verdict = validator._judge("adv_inject_ul_detach_request",
                                   {}, set(), Knowledge())
        assert verdict.feasible


class TestCegarLoop:
    def test_verified_after_forge_refinement(self, extracted_models,
                                             mme_model):
        """The canonical CEGAR run: the abstract model lets the adversary
        forge a security_mode_command MAC (spurious counterexample); the
        CPV refutes it; the refined model verifies."""
        result = check_with_cegar(
            extracted_models["reference"], mme_model,
            "G (ue_state = EMM_REGISTERED_INITIATED_AUTHENTICATED & "
            "chan_dl = security_mode_command & dl_injected = 1 & "
            "turn = ue -> X (chan_ul != security_mode_complete))",
            ThreatConfig(inject_dl=(c.SECURITY_MODE_COMMAND,)),
            name="no-forged-smc")
        assert result.verified
        assert result.iterations == 2
        assert any(r.kind == "no_forge" for r in result.refinements)

    def test_real_attack_reported_with_feasible_steps(
            self, extracted_models, mme_model):
        result = check_with_cegar(
            extracted_models["reference"], mme_model,
            "G (turn = ue & chan_dl = authentication_request & "
            "dl_mac_valid = 1 & dl_sqn_rel != fresh "
            "-> X (chan_ul != authentication_response))",
            ThreatConfig(replay_dl=(c.AUTHENTICATION_REQUEST,)),
            name="P1")
        assert result.is_attack
        assert all(v.feasible for v in result.step_verdicts)
        labels = result.attack.adversary_actions()
        assert any("replay" in label for label in labels)

    def test_verified_without_iteration_when_nothing_to_refute(
            self, extracted_models, mme_model):
        result = check_with_cegar(
            extracted_models["reference"], mme_model,
            "G (F (turn = ue))",
            ThreatConfig(),
            name="liveness")
        assert result.verified
        assert result.iterations == 1

    def test_iteration_budget_respected(self, extracted_models,
                                        mme_model):
        result = check_with_cegar(
            extracted_models["reference"], mme_model,
            "G (F (turn = ue))",
            ThreatConfig(), max_iterations=1)
        assert result.iterations == 1
