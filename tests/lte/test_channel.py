"""Radio link tests: queued delivery, interception, injection."""

from repro.lte import constants as c
from repro.lte.channel import RadioLink
from repro.lte.messages import NasMessage


def frame(name=c.PAGING, **fields):
    return NasMessage(name=name, fields=fields).to_wire()


class TestDelivery:
    def test_uplink_reaches_mme(self):
        link = RadioLink()
        received = []
        link.attach_mme(received.append)
        assert link.send_uplink(frame())
        assert len(received) == 1

    def test_downlink_reaches_ue(self):
        link = RadioLink()
        received = []
        link.attach_ue(received.append)
        assert link.send_downlink(frame())
        assert received

    def test_unattached_endpoint_drops(self):
        link = RadioLink()
        assert not link.send_uplink(frame())

    def test_handlers_run_to_completion_before_next_delivery(self):
        """The event-driven pump: no nested handler execution."""
        link = RadioLink()
        order = []

        def ue_handler(data):
            order.append("ue-start")
            link.send_uplink(frame())    # response enqueued, not nested
            order.append("ue-end")

        def mme_handler(data):
            order.append("mme")

        link.attach_ue(ue_handler)
        link.attach_mme(mme_handler)
        link.send_downlink(frame())
        assert order == ["ue-start", "ue-end", "mme"]

    def test_detach_mme_returns_handler(self):
        link = RadioLink()
        handler = lambda data: None  # noqa: E731
        link.attach_mme(handler)
        assert link.detach_mme() is handler
        assert not link.send_uplink(frame())


class TestInterception:
    class Dropper:
        def __init__(self, name):
            self.name = name
            self.count = 0

        def intercept(self, direction, data):
            message = NasMessage.from_wire(data)
            if message.name == self.name:
                self.count += 1
                return None
            return data

    def test_selective_drop(self):
        link = RadioLink()
        received = []
        link.attach_ue(received.append)
        link.interceptor = self.Dropper(c.PAGING)
        assert not link.send_downlink(frame(c.PAGING))
        assert link.send_downlink(frame(c.ATTACH_REJECT))
        assert len(received) == 1
        assert link.interceptor.count == 1

    def test_modifying_interceptor(self):
        link = RadioLink()
        received = []
        link.attach_ue(received.append)

        class Swapper:
            def intercept(self, direction, data):
                return frame(c.ATTACH_REJECT)

        link.interceptor = Swapper()
        link.send_downlink(frame(c.PAGING))
        assert NasMessage.from_wire(received[0]).name == c.ATTACH_REJECT


class TestHistoryAndInjection:
    def test_history_records_even_dropped(self):
        link = RadioLink()
        link.attach_ue(lambda data: None)
        link.interceptor = TestInterception.Dropper(c.PAGING)
        link.send_downlink(frame(c.PAGING))
        assert len(link.history) == 1
        assert not link.history[0].delivered

    def test_injection_marked(self):
        link = RadioLink()
        link.attach_ue(lambda data: None)
        link.inject_downlink(frame())
        assert link.history[0].injected

    def test_captured_messages_parse(self):
        link = RadioLink()
        link.attach_mme(lambda data: None)
        link.send_uplink(frame(c.ATTACH_REQUEST, imsi="00101"))
        messages = link.captured_messages("uplink")
        assert messages[0].name == c.ATTACH_REQUEST

    def test_captured_skips_garbage(self):
        link = RadioLink()
        link.attach_ue(lambda data: None)
        link.inject_downlink(b"\x00garbage")
        assert link.captured_messages() == []


class TestMalformedFrameAccounting:
    """Regression: parse failures in capture paths were swallowed with no
    signal, so a decode regression could hide behind 'no messages'."""

    @staticmethod
    def _malformed_count():
        import repro.obs as obs
        return obs.metrics().snapshot()["counters"].get(
            "channel.malformed_frames", 0)

    def test_captured_messages_counts_garbage(self):
        link = RadioLink()
        link.attach_ue(lambda data: None)
        link.inject_downlink(b"\x00garbage")
        link.inject_downlink(frame())
        before = self._malformed_count()
        messages = link.captured_messages()
        assert len(messages) == 1          # the valid frame still parses
        assert self._malformed_count() == before + 1

    def test_clean_capture_counts_nothing(self):
        link = RadioLink()
        link.attach_ue(lambda data: None)
        link.inject_downlink(frame())
        before = self._malformed_count()
        link.captured_messages()
        assert self._malformed_count() == before
