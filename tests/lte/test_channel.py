"""Radio link tests: queued delivery, interception, injection, chaos."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import faults, obs
from repro.lte import constants as c
from repro.lte.channel import (ChaosConfig, ChaosConfigError,
                               ImpairmentRates, RadioLink)
from repro.lte.messages import NasMessage


def frame(name=c.PAGING, **fields):
    return NasMessage(name=name, fields=fields).to_wire()


class TestDelivery:
    def test_uplink_reaches_mme(self):
        link = RadioLink()
        received = []
        link.attach_mme(received.append)
        assert link.send_uplink(frame())
        assert len(received) == 1

    def test_downlink_reaches_ue(self):
        link = RadioLink()
        received = []
        link.attach_ue(received.append)
        assert link.send_downlink(frame())
        assert received

    def test_unattached_endpoint_drops(self):
        link = RadioLink()
        assert not link.send_uplink(frame())

    def test_handlers_run_to_completion_before_next_delivery(self):
        """The event-driven pump: no nested handler execution."""
        link = RadioLink()
        order = []

        def ue_handler(data):
            order.append("ue-start")
            link.send_uplink(frame())    # response enqueued, not nested
            order.append("ue-end")

        def mme_handler(data):
            order.append("mme")

        link.attach_ue(ue_handler)
        link.attach_mme(mme_handler)
        link.send_downlink(frame())
        assert order == ["ue-start", "ue-end", "mme"]

    def test_detach_mme_returns_handler(self):
        link = RadioLink()
        handler = lambda data: None  # noqa: E731
        link.attach_mme(handler)
        assert link.detach_mme() is handler
        assert not link.send_uplink(frame())


class TestInterception:
    class Dropper:
        def __init__(self, name):
            self.name = name
            self.count = 0

        def intercept(self, direction, data):
            message = NasMessage.from_wire(data)
            if message.name == self.name:
                self.count += 1
                return None
            return data

    def test_selective_drop(self):
        link = RadioLink()
        received = []
        link.attach_ue(received.append)
        link.interceptor = self.Dropper(c.PAGING)
        assert not link.send_downlink(frame(c.PAGING))
        assert link.send_downlink(frame(c.ATTACH_REJECT))
        assert len(received) == 1
        assert link.interceptor.count == 1

    def test_modifying_interceptor(self):
        link = RadioLink()
        received = []
        link.attach_ue(received.append)

        class Swapper:
            def intercept(self, direction, data):
                return frame(c.ATTACH_REJECT)

        link.interceptor = Swapper()
        link.send_downlink(frame(c.PAGING))
        assert NasMessage.from_wire(received[0]).name == c.ATTACH_REJECT


class TestHistoryAndInjection:
    def test_history_records_even_dropped(self):
        link = RadioLink()
        link.attach_ue(lambda data: None)
        link.interceptor = TestInterception.Dropper(c.PAGING)
        link.send_downlink(frame(c.PAGING))
        assert len(link.history) == 1
        assert not link.history[0].delivered

    def test_injection_marked(self):
        link = RadioLink()
        link.attach_ue(lambda data: None)
        link.inject_downlink(frame())
        assert link.history[0].injected

    def test_captured_messages_parse(self):
        link = RadioLink()
        link.attach_mme(lambda data: None)
        link.send_uplink(frame(c.ATTACH_REQUEST, imsi="00101"))
        messages = link.captured_messages("uplink")
        assert messages[0].name == c.ATTACH_REQUEST

    def test_captured_skips_garbage(self):
        link = RadioLink()
        link.attach_ue(lambda data: None)
        link.inject_downlink(b"\x00garbage")
        assert link.captured_messages() == []


class TestMalformedFrameAccounting:
    """Regression: parse failures in capture paths were swallowed with no
    signal, so a decode regression could hide behind 'no messages'."""

    @staticmethod
    def _malformed_count():
        import repro.obs as obs
        return obs.metrics().snapshot()["counters"].get(
            "channel.malformed_frames", 0)

    def test_captured_messages_counts_garbage(self):
        link = RadioLink()
        link.attach_ue(lambda data: None)
        link.inject_downlink(b"\x00garbage")
        link.inject_downlink(frame())
        before = self._malformed_count()
        messages = link.captured_messages()
        assert len(messages) == 1          # the valid frame still parses
        assert self._malformed_count() == before + 1

    def test_clean_capture_counts_nothing(self):
        link = RadioLink()
        link.attach_ue(lambda data: None)
        link.inject_downlink(frame())
        before = self._malformed_count()
        link.captured_messages()
        assert self._malformed_count() == before


def _counter(name):
    return obs.metrics().snapshot()["counters"].get(name, 0)


def _chaos(**kwargs):
    """A scope=all config (every frame eligible) for unit tests."""
    kwargs.setdefault("messages", None)
    return ChaosConfig(**kwargs)


class TestChaosConfig:
    def test_default_is_downlink_drop_on_supervised_messages(self):
        config = ChaosConfig.default(seed=7)
        assert config.downlink.drop == 0.05
        assert not config.uplink.any()
        assert config.seed == 7
        assert config.messages == c.ATTACH_SUPERVISED_DOWNLINK

    def test_parse_default_literal(self):
        assert ChaosConfig.parse("default", seed=3) == ChaosConfig.default(
            seed=3)

    def test_parse_rates_prefixes_and_scope(self):
        config = ChaosConfig.parse(
            "drop=0.1,dl.dup=0.2,ul.corrupt=0.05,scope=all,delay_rounds=2")
        assert config.uplink.drop == 0.1
        assert config.downlink.drop == 0.1
        assert config.downlink.duplicate == 0.2
        assert config.uplink.duplicate == 0.0
        assert config.uplink.corrupt == 0.05
        assert config.messages is None
        assert config.delay_rounds == 2

    @pytest.mark.parametrize("bad", [
        "bogus=1", "drop", "drop=lots", "scope=sometimes",
        "delay_rounds=two", "drop=1.5", "drop=0.7,dup=0.7",
        "delay_rounds=0",
    ])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ChaosConfigError):
            ChaosConfig.parse(bad)

    def test_rate_outside_unit_interval_rejected(self):
        with pytest.raises(ChaosConfigError):
            ImpairmentRates(drop=-0.1)

    def test_round_trip_and_with_seed(self):
        config = ChaosConfig.parse("drop=0.1,scope=all", seed=5)
        assert ChaosConfig.from_dict(config.to_dict()) == config
        assert config.with_seed(9) == ChaosConfig.parse(
            "drop=0.1,scope=all", seed=9)
        assert "seed=5" in config.describe()

    def test_in_text_seed_overrides_argument(self):
        config = ChaosConfig.parse("drop=0.1,seed=17", seed=5)
        assert config.seed == 17

    def test_bad_in_text_seed_rejected(self):
        with pytest.raises(ChaosConfigError):
            ChaosConfig.parse("drop=0.1,seed=five")


class TestChaosDescribeRoundTrip:
    """Property: ``parse(describe(c)) == c`` for every expressible
    config — ``describe`` is the canonical spec text, not a log line."""

    _rate = st.floats(min_value=0.0, max_value=0.2, allow_nan=False)
    _rates = st.builds(ImpairmentRates, drop=_rate, duplicate=_rate,
                       reorder=_rate, corrupt=_rate, delay=_rate)
    _configs = st.builds(
        ChaosConfig, uplink=_rates, downlink=_rates,
        seed=st.integers(min_value=-2**31, max_value=2**31),
        delay_rounds=st.integers(min_value=1, max_value=6),
        messages=st.sampled_from(
            [None, c.ATTACH_SUPERVISED_DOWNLINK]))

    @settings(max_examples=120, deadline=None)
    @given(_configs)
    def test_parse_inverts_describe(self, config):
        assert ChaosConfig.parse(config.describe()) == config

    @settings(max_examples=60, deadline=None)
    @given(_configs, st.integers(min_value=-100, max_value=100))
    def test_in_text_seed_wins_over_argument(self, config, other_seed):
        # describe() always embeds seed=, so the argument is inert.
        assert ChaosConfig.parse(config.describe(),
                                 seed=other_seed) == config

    @settings(max_examples=60, deadline=None)
    @given(_configs)
    def test_describe_is_a_fixpoint(self, config):
        text = config.describe()
        assert ChaosConfig.parse(text).describe() == text

    def test_zero_rate_config_round_trips(self):
        config = ChaosConfig(seed=3)
        parsed = ChaosConfig.parse(config.describe())
        assert parsed == config
        assert not parsed.uplink.any() and not parsed.downlink.any()

    def test_default_profile_round_trips(self):
        config = ChaosConfig.default(seed=11)
        assert ChaosConfig.parse(config.describe()) == config
        assert ChaosConfig.parse("default", seed=11) == config


class TestChaosImpairments:
    """Each impairment at rate 1.0, scope=all, so behaviour is exact."""

    def test_drop_suppresses_delivery_with_provenance(self):
        link = RadioLink(chaos=_chaos(downlink=ImpairmentRates(drop=1.0)))
        received = []
        link.attach_ue(received.append)
        before = _counter("channel.chaos.dropped")
        assert not link.send_downlink(frame())
        assert received == []
        assert link.history[-1].impairment == "drop"
        assert not link.history[-1].delivered
        assert _counter("channel.chaos.dropped") == before + 1

    def test_duplicate_delivers_twice(self):
        link = RadioLink(
            chaos=_chaos(downlink=ImpairmentRates(duplicate=1.0)))
        received = []
        link.attach_ue(received.append)
        assert link.send_downlink(frame())
        assert len(received) == 2
        assert received[0] == received[1]
        assert [r.impairment for r in link.history] == [None, "duplicate"]

    def test_corrupt_flips_wire_bytes_but_history_keeps_original(self):
        original = frame()
        link = RadioLink(
            chaos=_chaos(downlink=ImpairmentRates(corrupt=1.0)))
        received = []
        link.attach_ue(received.append)
        assert link.send_downlink(original)
        assert received[0] != original
        assert len(received[0]) == len(original)
        assert link.history[-1].frame == original
        assert link.history[-1].impairment == "corrupt"

    def test_delay_defers_to_a_later_pump_round(self):
        # Delay applies to PAGING only; the REJECT send then pumps the
        # held PAGING out, so it arrives second despite being sent first.
        config = ChaosConfig(downlink=ImpairmentRates(delay=1.0),
                             messages=(c.PAGING,))
        link = RadioLink(chaos=config)
        received = []
        link.attach_ue(received.append)
        link.send_downlink(frame(c.PAGING))
        assert received == []
        link.send_downlink(frame(c.ATTACH_REJECT))
        names = [NasMessage.from_wire(data).name for data in received]
        assert names == [c.ATTACH_REJECT, c.PAGING]
        assert link.history[-1].impairment == "delay"

    def test_reorder_defers_behind_current_stimulus(self):
        # UE's uplink response is reorder-held; MME's second downlink
        # (sent from its own handler) overtakes it.
        config = ChaosConfig(uplink=ImpairmentRates(reorder=1.0),
                             messages=(c.ATTACH_REQUEST,))
        link = RadioLink(chaos=config)
        order = []

        def ue_handler(data):
            order.append(("ue", NasMessage.from_wire(data).name))
            if NasMessage.from_wire(data).name == c.PAGING:
                link.send_uplink(frame(c.ATTACH_REQUEST, imsi="1"))
                link.send_uplink(frame(c.DETACH_REQUEST))

        def mme_handler(data):
            order.append(("mme", NasMessage.from_wire(data).name))

        link.attach_ue(ue_handler)
        link.attach_mme(mme_handler)
        link.send_downlink(frame(c.PAGING))
        assert order == [("ue", c.PAGING), ("mme", c.DETACH_REQUEST),
                         ("mme", c.ATTACH_REQUEST)]

    def test_messages_filter_exempts_other_traffic(self):
        link = RadioLink(chaos=ChaosConfig(
            downlink=ImpairmentRates(drop=1.0)))  # default attach scope
        received = []
        link.attach_ue(received.append)
        assert link.send_downlink(frame(c.PAGING))
        assert len(received) == 1
        assert not link.send_downlink(frame(c.ATTACH_ACCEPT))
        assert len(received) == 1

    def test_interceptor_sees_post_impairment_frame(self):
        original = frame()
        seen = []

        class Tap:
            def intercept(self, direction, data):
                seen.append(data)
                return data

        link = RadioLink(
            chaos=_chaos(downlink=ImpairmentRates(corrupt=1.0)))
        link.interceptor = Tap()
        link.attach_ue(lambda data: None)
        link.send_downlink(original)
        assert seen and seen[0] != original

    def test_injection_bypasses_chaos(self):
        link = RadioLink(chaos=_chaos(downlink=ImpairmentRates(drop=1.0)))
        received = []
        link.attach_ue(received.append)
        assert link.inject_downlink(frame())
        assert len(received) == 1


class TestChaosDeterminism:
    @staticmethod
    def _schedule(seed, stream, count=40):
        link = RadioLink(
            chaos=_chaos(downlink=ImpairmentRates(drop=0.5), seed=seed),
            chaos_stream=stream)
        link.attach_ue(lambda data: None)
        for _ in range(count):
            link.send_downlink(frame())
        return [(r.delivered, r.impairment) for r in link.history]

    def test_same_seed_same_stream_identical_history(self):
        assert self._schedule(1, "case-a") == self._schedule(1, "case-a")

    def test_distinct_seeds_differ(self):
        assert self._schedule(1, "case-a") != self._schedule(2, "case-a")

    def test_distinct_streams_decorrelated(self):
        assert self._schedule(1, "case-a") != self._schedule(1, "case-b")

    def test_ineligible_frames_consume_no_randomness(self):
        # A non-matching frame in the middle must not shift the schedule.
        config = ChaosConfig(downlink=ImpairmentRates(drop=0.5),
                             messages=(c.PAGING,), seed=1)
        plain, interleaved = [], []
        for bucket, inject_other in ((plain, False), (interleaved, True)):
            link = RadioLink(chaos=config, chaos_stream="s")
            link.attach_ue(lambda data: None)
            for index in range(20):
                if inject_other and index == 10:
                    link.send_downlink(frame(c.ATTACH_REJECT))
                link.send_downlink(frame(c.PAGING))
            bucket.extend(
                (r.delivered, r.impairment) for r in link.history
                if NasMessage.from_wire(r.frame).name == c.PAGING)
        assert plain == interleaved


class TestFaultImpairSite:
    def test_raise_fault_drops_exactly_the_keyed_message(self):
        faults.install(faults.FaultPlan.parse(
            [f"channel.impair@downlink:{c.ATTACH_ACCEPT}:raise:0:all"]))
        try:
            link = RadioLink()
            received = []
            link.attach_ue(received.append)
            assert not link.send_downlink(frame(c.ATTACH_ACCEPT))
            assert not link.send_downlink(frame(c.ATTACH_ACCEPT))
            assert link.send_downlink(frame(c.PAGING))
        finally:
            faults.clear()
        assert len(received) == 1
        assert [r.impairment for r in link.history] == [
            "fault", "fault", None]


class TestPumpAbort:
    """Regression: a raising handler used to leave queued frames behind,
    which then delivered inside the *next* stimulus's handler block."""

    def test_abort_clears_pending_and_counts_them(self):
        link = RadioLink()
        mme_received = []

        def ue_handler(data):
            link.send_uplink(frame(c.ATTACH_REQUEST, imsi="1"))
            link.send_uplink(frame(c.DETACH_REQUEST))
            raise RuntimeError("handler crashed")

        link.attach_ue(ue_handler)
        link.attach_mme(mme_received.append)
        before = _counter("channel.aborted_deliveries")
        with pytest.raises(RuntimeError, match="handler crashed"):
            link.send_downlink(frame(c.PAGING))
        # Both queued uplinks were abandoned, counted, and must not
        # surface during any later traffic.
        assert mme_received == []
        assert _counter("channel.aborted_deliveries") == before + 2
        link.attach_ue(lambda data: None)
        link.send_downlink(frame(c.PAGING))
        assert mme_received == []

    def test_abort_clears_held_and_delayed_frames(self):
        config = ChaosConfig(uplink=ImpairmentRates(reorder=0.5,
                                                    delay=0.5),
                             messages=(c.ATTACH_REQUEST,), seed=0)
        link = RadioLink(chaos=config)
        mme_received = []

        def ue_handler(data):
            for _ in range(6):   # a mix of reorder and delay holds
                link.send_uplink(frame(c.ATTACH_REQUEST, imsi="1"))
            raise RuntimeError("boom")

        link.attach_ue(ue_handler)
        link.attach_mme(mme_received.append)
        with pytest.raises(RuntimeError):
            link.send_downlink(frame(c.PAGING))
        link.attach_ue(lambda data: None)
        link.send_downlink(frame(c.PAGING))
        assert mme_received == []
