"""MME NAS behaviour tests: procedures, timers, uplink verification."""

from repro.lte import constants as c
from repro.lte.channel import RadioLink
from repro.lte.hss import Hss, HssError
from repro.lte.identifiers import make_subscriber
from repro.lte.messages import NasMessage
from repro.lte.mme import MmeNas
from repro.lte.timers import SimClock
from repro.lte.ue import UeNas

import pytest


class Harness:
    def __init__(self):
        self.clock = SimClock()
        self.link = RadioLink()
        self.subscriber = make_subscriber("000000001")
        self.hss = Hss()
        self.hss.provision(self.subscriber)
        self.mme = MmeNas(self.hss, self.link, clock=self.clock)
        self.ue = UeNas(self.subscriber, self.link, clock=self.clock)

    def attach(self):
        self.ue.power_on()
        assert self.mme.emm_state == c.MME_REGISTERED
        return self

    def inject_uplink(self, name, **fields):
        msg = NasMessage(name=name, fields=fields)
        self.link.inject_uplink(msg.to_wire())

    def downlink_names(self):
        return [m.name for m in self.link.captured_messages("downlink")]


class TestHss:
    def test_unknown_imsi_rejected(self):
        hss = Hss()
        with pytest.raises(HssError):
            hss.get_auth_vector("00101000000099")

    def test_vectors_advance_sqn(self):
        harness = Harness()
        imsi = str(harness.subscriber.imsi)
        first = harness.hss.get_auth_vector(imsi)
        second = harness.hss.get_auth_vector(imsi)
        assert second.autn_sqn.seq == first.autn_sqn.seq + 1

    def test_resynchronise_jumps_forward(self):
        harness = Harness()
        imsi = str(harness.subscriber.imsi)
        harness.hss.resynchronise(imsi, 50)
        vector = harness.hss.get_auth_vector(imsi)
        assert vector.autn_sqn.seq == 51


class TestAttachFlow:
    def test_full_attach_reaches_registered(self):
        Harness().attach()

    def test_identity_request_when_unknown_guti(self):
        harness = Harness()
        harness.inject_uplink(c.ATTACH_REQUEST,
                              guti="00101-0001-01-ffffffff")
        assert c.IDENTITY_REQUEST in harness.downlink_names()

    def test_known_guti_reattach_skips_identity(self):
        harness = Harness().attach()
        guti = str(harness.mme.current_guti)
        harness.mme.emm_state = c.MME_DEREGISTERED
        harness.link.detach_ue()
        harness.inject_uplink(c.ATTACH_REQUEST, guti=guti)
        names = harness.downlink_names()
        assert names[-1] == c.AUTHENTICATION_REQUEST

    def test_wrong_res_rejected(self):
        harness = Harness()
        harness.link.detach_ue()
        harness.inject_uplink(c.ATTACH_REQUEST,
                              imsi=str(harness.subscriber.imsi))
        harness.inject_uplink(c.AUTHENTICATION_RESPONSE, res=b"\x00" * 8)
        assert c.AUTHENTICATION_REJECT in harness.downlink_names()
        assert harness.mme.emm_state == c.MME_DEREGISTERED

    def test_sync_failure_resynchronises_and_retries(self):
        harness = Harness()
        harness.link.detach_ue()
        harness.inject_uplink(c.ATTACH_REQUEST,
                              imsi=str(harness.subscriber.imsi))
        harness.inject_uplink(c.AUTH_SYNC_FAILURE, resync_seq=30)
        auth_requests = [m for m in
                         harness.link.captured_messages("downlink")
                         if m.name == c.AUTHENTICATION_REQUEST]
        assert len(auth_requests) == 2
        assert auth_requests[-1].fields["sqn_seq"] == 31

    def test_mac_failure_aborts(self):
        harness = Harness()
        harness.link.detach_ue()
        harness.inject_uplink(c.ATTACH_REQUEST,
                              imsi=str(harness.subscriber.imsi))
        harness.inject_uplink(c.AUTH_MAC_FAILURE, cause=20)
        assert c.ATTACH_REJECT in harness.downlink_names()


class TestUplinkVerification:
    def test_plain_protected_uplink_rejected(self):
        harness = Harness().attach()
        harness.link.detach_ue()
        harness.inject_uplink(c.TAU_REQUEST, tracking_area=2)
        assert c.TAU_ACCEPT not in harness.downlink_names()
        assert any(e.kind == "uplink_plain_rejected"
                   for e in harness.mme.events)

    def test_replayed_uplink_rejected(self):
        harness = Harness().attach()
        smc_complete = next(
            r.frame for r in harness.link.history
            if r.direction == "uplink"
            and NasMessage.from_wire(r.frame).name
            == c.SECURITY_MODE_COMPLETE)
        harness.link.inject_uplink(smc_complete)
        assert any(e.kind == "uplink_replay" for e in harness.mme.events)

    def test_plain_detach_accepted_kickoff_vector(self):
        """The standards-level kick-off flaw on the network side."""
        harness = Harness().attach()
        harness.link.detach_ue()
        harness.inject_uplink(c.DETACH_REQUEST, switch_off=1)
        assert harness.mme.emm_state == c.MME_DEREGISTERED


class TestNetworkInitiated:
    def test_guti_reallocation_completes(self):
        harness = Harness().attach()
        old = str(harness.mme.current_guti)
        harness.mme.initiate_guti_reallocation()
        assert str(harness.mme.current_guti) != old
        assert not harness.clock.is_running(c.T3450)

    def test_t3450_retransmits_then_aborts(self):
        """Four retransmissions; the fifth expiry aborts (P3 budget)."""
        harness = Harness().attach()
        harness.link.detach_ue()
        harness.mme.initiate_guti_reallocation()
        for _ in range(6):
            harness.clock.advance(10.0)
        sent = [m for m in harness.link.captured_messages("downlink")
                if m.name == c.GUTI_REALLOCATION_COMMAND]
        assert len(sent) == 5                       # initial + 4 retx
        assert harness.mme.aborted_procedures == [
            c.GUTI_REALLOCATION_COMMAND]

    def test_response_stops_retransmission(self):
        harness = Harness().attach()
        harness.mme.initiate_guti_reallocation()
        harness.clock.advance(60.0)
        sent = [m for m in harness.link.captured_messages("downlink")
                if m.name == c.GUTI_REALLOCATION_COMMAND]
        assert len(sent) == 1

    def test_paging_uses_current_guti(self):
        harness = Harness().attach()
        harness.link.detach_ue()
        harness.mme.initiate_paging()
        paging = harness.link.captured_messages("downlink")[-1]
        assert paging.fields["paging_id"] == str(harness.mme.current_guti)

    def test_network_detach(self):
        harness = Harness().attach()
        harness.mme.initiate_detach()
        assert harness.mme.emm_state == c.MME_DEREGISTERED
        assert harness.ue.emm_state == c.EMM_DEREGISTERED

    def test_ciphered_information_deciphered_by_ue(self):
        harness = Harness().attach()
        harness.mme.send_information("SecretNet", ciphered=True)
        events = [e for e in harness.ue.events
                  if e.kind == "emm_information"]
        assert events[-1].detail == "SecretNet"

    def test_ciphered_payload_opaque_on_the_wire(self):
        harness = Harness().attach()
        harness.mme.send_information("SecretNet", ciphered=True)
        frame = harness.link.history[-1].frame
        assert b"SecretNet" not in frame
        message = NasMessage.from_wire(frame)
        assert message.ciphertext is not None

    def test_ciphered_frame_useless_without_context(self):
        harness = Harness().attach()
        harness.mme.send_information("SecretNet", ciphered=True)
        frame = harness.link.history[-1].frame
        # a second, fresh UE (different keys) cannot decipher it
        other = Harness()
        other.link.detach_mme()
        other.ue.power_on()
        before = len(other.ue.events)
        other.link.inject_downlink(frame)
        kinds = [e.kind for e in other.ue.events[before:]]
        assert "emm_information" not in kinds

    def test_t3460_retransmits_auth(self):
        harness = Harness()
        harness.link.detach_ue()
        harness.inject_uplink(c.ATTACH_REQUEST,
                              imsi=str(harness.subscriber.imsi))
        for _ in range(6):
            harness.clock.advance(10.0)
        sent = [m for m in harness.link.captured_messages("downlink")
                if m.name == c.AUTHENTICATION_REQUEST]
        assert len(sent) == 5
        assert c.AUTHENTICATION_REQUEST in harness.mme.aborted_procedures


class TestTimerExhaustionUnderFrameLoss:
    """TS 24.301 Section 10.2: each supervised downlink is retransmitted
    on expiry up to TIMER_MAX_RETRANSMISSIONS and the procedure aborts on
    the next expiry.  Unlike the detach_ue-based tests above, these drive
    the timers through *actual* downlink frame loss (the ``channel.impair``
    fault site drops every copy on the wire) with the peer UE attached."""

    @staticmethod
    def _drop_every(message):
        from repro import faults
        faults.install(faults.FaultPlan.parse(
            [f"channel.impair@downlink:{message}:raise:0:all"]))

    @staticmethod
    def _cleanup():
        from repro import faults
        faults.clear()

    def _sent(self, harness, name):
        return [m for m in harness.link.captured_messages("downlink")
                if m.name == name]

    def test_t3450_guti_reallocation_exhausts_and_aborts(self):
        harness = Harness().attach()
        old_guti = str(harness.ue.current_guti)
        self._drop_every(c.GUTI_REALLOCATION_COMMAND)
        try:
            harness.mme.initiate_guti_reallocation()
            for _ in range(6):
                harness.clock.advance(10.0)
        finally:
            self._cleanup()
        sent = self._sent(harness, c.GUTI_REALLOCATION_COMMAND)
        limit = c.TIMER_MAX_RETRANSMISSIONS[c.T3450]
        assert len(sent) == limit + 1               # initial + 4 retx
        # Every retransmission carries the identical payload.
        assert all(m.fields == sent[0].fields for m in sent)
        assert harness.mme.aborted_procedures == [
            c.GUTI_REALLOCATION_COMMAND]
        assert not harness.clock.is_running(c.T3450)
        # The UE never saw a command: it keeps the old identity.
        assert str(harness.ue.current_guti) == old_guti

    def test_t3450_attach_accept_exhausts_and_aborts(self):
        harness = Harness()
        self._drop_every(c.ATTACH_ACCEPT)
        try:
            harness.ue.power_on()
            harness.clock.stop(c.T3410)   # isolate the MME supervision
            for _ in range(6):
                harness.clock.advance(10.0)
        finally:
            self._cleanup()
        sent = self._sent(harness, c.ATTACH_ACCEPT)
        assert len(sent) == c.TIMER_MAX_RETRANSMISSIONS[c.T3450] + 1
        assert all(m.fields == sent[0].fields for m in sent)
        assert harness.mme.aborted_procedures == [c.ATTACH_ACCEPT]
        assert harness.mme.emm_state != c.MME_REGISTERED

    def test_t3460_authentication_exhausts_and_aborts(self):
        harness = Harness()
        self._drop_every(c.AUTHENTICATION_REQUEST)
        try:
            harness.ue.power_on()
            harness.clock.stop(c.T3410)
            for _ in range(6):
                harness.clock.advance(10.0)
        finally:
            self._cleanup()
        sent = self._sent(harness, c.AUTHENTICATION_REQUEST)
        assert len(sent) == c.TIMER_MAX_RETRANSMISSIONS[c.T3460] + 1
        # Same vector on every copy: rand/autn never change mid-attempt.
        assert all(m.fields == sent[0].fields for m in sent)
        assert harness.mme.aborted_procedures == [c.AUTHENTICATION_REQUEST]
        assert not harness.clock.is_running(c.T3460)

    def test_t3460_security_mode_command_exhausts_and_aborts(self):
        harness = Harness()
        self._drop_every(c.SECURITY_MODE_COMMAND)
        try:
            harness.ue.power_on()
            harness.clock.stop(c.T3410)
            for _ in range(6):
                harness.clock.advance(10.0)
        finally:
            self._cleanup()
        sent = self._sent(harness, c.SECURITY_MODE_COMMAND)
        assert len(sent) == c.TIMER_MAX_RETRANSMISSIONS[c.T3460] + 1
        assert all(m.fields == sent[0].fields for m in sent)
        assert harness.mme.aborted_procedures == [c.SECURITY_MODE_COMMAND]
        assert any(e.kind == "procedure_aborted"
                   and e.detail == "security_mode_control"
                   for e in harness.mme.events)

    def test_t3470_identity_request_exhausts_and_aborts(self):
        harness = Harness()
        self._drop_every(c.IDENTITY_REQUEST)
        try:
            harness.inject_uplink(c.ATTACH_REQUEST,
                                  guti="00101-0001-01-ffffffff")
            assert harness.clock.is_running(c.T3470)
            for _ in range(6):
                harness.clock.advance(10.0)
        finally:
            self._cleanup()
        sent = self._sent(harness, c.IDENTITY_REQUEST)
        assert len(sent) == c.TIMER_MAX_RETRANSMISSIONS[c.T3470] + 1
        assert all(m.fields == sent[0].fields for m in sent)
        assert harness.mme.aborted_procedures == [c.IDENTITY_REQUEST]
        assert not harness.clock.is_running(c.T3470)

    def test_delivered_response_resets_supervision(self):
        """A *delivered* retransmission completes the procedure: drop
        only the first two SECURITY MODE COMMAND copies."""
        from repro import faults
        faults.install(faults.FaultPlan.of(
            faults.FaultSpec(site="channel.impair",
                             key=f"downlink:{c.SECURITY_MODE_COMMAND}",
                             kind=faults.KIND_RAISE, nth=1,
                             scope=faults.SCOPE_ALL),
            faults.FaultSpec(site="channel.impair",
                             key=f"downlink:{c.SECURITY_MODE_COMMAND}",
                             kind=faults.KIND_RAISE, nth=2,
                             scope=faults.SCOPE_ALL)))
        try:
            harness = Harness()
            harness.ue.power_on()
            harness.clock.stop(c.T3410)
            for _ in range(6):
                harness.clock.advance(10.0)
        finally:
            self._cleanup()
        # Third copy got through; the UE answered and attach completed.
        assert harness.mme.aborted_procedures == []
        assert harness.mme.emm_state == c.MME_REGISTERED
        assert harness.ue.emm_state == c.EMM_REGISTERED
