"""Simulated timer wheel tests."""

import pytest

from repro.lte.timers import SimClock, TimerError


class TestSimClock:
    def test_timer_fires_on_advance(self):
        clock = SimClock()
        fired = []
        clock.start("T", 5.0, lambda: fired.append(clock.now))
        clock.advance(4.9)
        assert not fired
        clock.advance(0.2)
        assert fired == [5.0]

    def test_fire_order_respects_deadlines(self):
        clock = SimClock()
        order = []
        clock.start("B", 2.0, lambda: order.append("B"))
        clock.start("A", 1.0, lambda: order.append("A"))
        clock.advance(3.0)
        assert order == ["A", "B"]

    def test_stop_cancels(self):
        clock = SimClock()
        fired = []
        clock.start("T", 1.0, lambda: fired.append(1))
        assert clock.stop("T")
        clock.advance(2.0)
        assert not fired
        assert not clock.stop("T")     # already cancelled

    def test_rearm_replaces(self):
        clock = SimClock()
        fired = []
        clock.start("T", 1.0, lambda: fired.append("early"))
        clock.start("T", 5.0, lambda: fired.append("late"))
        clock.advance(2.0)
        assert fired == []
        clock.advance(4.0)
        assert fired == ["late"]

    def test_callback_can_rearm(self):
        """Retransmission pattern: expiry handler restarts the timer."""
        clock = SimClock()
        count = [0]

        def on_expiry():
            count[0] += 1
            if count[0] < 3:
                clock.start("T", 1.0, on_expiry)

        clock.start("T", 1.0, on_expiry)
        clock.advance(10.0)
        assert count[0] == 3

    def test_fire_next_jumps_time(self):
        clock = SimClock()
        clock.start("T", 7.5, lambda: None)
        assert clock.fire_next() == "T"
        assert clock.now == 7.5
        assert clock.fire_next() is None

    def test_pending_and_is_running(self):
        clock = SimClock()
        clock.start("A", 1.0, lambda: None)
        clock.start("B", 2.0, lambda: None)
        assert clock.pending() == ["A", "B"]
        assert clock.is_running("A")
        clock.advance(1.5)
        assert clock.pending() == ["B"]

    def test_negative_rejected(self):
        clock = SimClock()
        with pytest.raises(TimerError):
            clock.advance(-1)
        with pytest.raises(TimerError):
            clock.start("T", -1, lambda: None)


class TestAdvanceExceptionContract:
    """Satellite: a raising callback must leave the clock consistent."""

    def test_clock_lands_at_failed_deadline_with_later_timers_armed(self):
        clock = SimClock()
        fired = []
        clock.start("ok", 1.0, lambda: fired.append("ok"))

        def explode():
            raise RuntimeError("callback failed")

        clock.start("bad", 2.0, explode)
        clock.start("late", 3.0, lambda: fired.append("late"))
        with pytest.raises(RuntimeError, match="callback failed"):
            clock.advance(10.0)
        assert fired == ["ok"]
        assert clock.now == 2.0                 # exactly the failed deadline
        assert not clock.is_running("bad")      # failed timer is disarmed
        assert clock.pending() == ["late"]      # later timers stay armed
        clock.advance(10.0)                     # resume from that instant
        assert fired == ["ok", "late"]
        assert clock.now == 12.0

    def test_fire_next_shares_the_contract(self):
        clock = SimClock()

        def explode():
            raise RuntimeError("boom")

        clock.start("bad", 1.0, explode)
        clock.start("late", 2.0, lambda: None)
        with pytest.raises(RuntimeError):
            clock.fire_next()
        assert clock.now == 1.0
        assert clock.pending() == ["late"]
        assert clock.fire_next() == "late"

    def test_same_deadline_fifo_order(self):
        clock = SimClock()
        fired = []
        for name in ("first", "second", "third"):
            clock.start(name, 5.0, lambda name=name: fired.append(name))
        clock.advance(5.0)
        assert fired == ["first", "second", "third"]

    def test_same_deadline_fifo_survives_mid_batch_exception(self):
        clock = SimClock()
        fired = []
        clock.start("first", 5.0, lambda: fired.append("first"))

        def explode():
            fired.append("second")
            raise RuntimeError("boom")

        clock.start("second", 5.0, explode)
        clock.start("third", 5.0, lambda: fired.append("third"))
        with pytest.raises(RuntimeError):
            clock.advance(5.0)
        assert fired == ["first", "second"]
        assert clock.now == 5.0
        clock.advance(0.0)                      # the rest of the batch
        assert fired == ["first", "second", "third"]
