"""NAS message codec tests, including hypothesis wire round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.lte import constants as c
from repro.lte.messages import MessageError, NasMessage


class TestConstruction:
    def test_unknown_message_rejected(self):
        with pytest.raises(MessageError):
            NasMessage(name="not_a_message")

    def test_bad_security_header_rejected(self):
        with pytest.raises(MessageError):
            NasMessage(name=c.PAGING, sec_header=0x9)

    def test_protection_flags(self):
        plain = NasMessage(name=c.PAGING)
        assert not plain.is_protected
        protected = NasMessage(name=c.ATTACH_ACCEPT,
                               sec_header=c.SEC_HDR_INTEGRITY)
        assert protected.is_protected and not protected.is_ciphered
        ciphered = NasMessage(name=c.ATTACH_ACCEPT,
                              sec_header=c.SEC_HDR_INTEGRITY_CIPHERED)
        assert ciphered.is_ciphered


class TestPayloadCodec:
    def test_roundtrip_mixed_fields(self):
        msg = NasMessage(name=c.ATTACH_REQUEST, fields={
            "imsi": "001010000000001", "count": 7, "blob": b"\x00\x01",
            "flag": True,
        })
        name, fields = NasMessage.parse_payload(msg.payload_bytes())
        assert name == c.ATTACH_REQUEST
        assert fields["imsi"] == "001010000000001"
        assert fields["count"] == 7
        assert fields["blob"] == b"\x00\x01"
        assert fields["flag"] == 1   # bools travel as ints

    def test_bad_magic_rejected(self):
        with pytest.raises(MessageError):
            NasMessage.parse_payload(b"\x00\x01\x00")

    def test_truncated_rejected(self):
        msg = NasMessage(name=c.PAGING, fields={"paging_id": "x"})
        data = msg.payload_bytes()
        with pytest.raises(MessageError):
            NasMessage.parse_payload(data[:-1])

    def test_unsupported_field_type_rejected(self):
        msg = NasMessage(name=c.PAGING, fields={"bad": 3.14})
        with pytest.raises(MessageError):
            msg.payload_bytes()


class TestWireCodec:
    def test_roundtrip_plain(self):
        msg = NasMessage(name=c.PAGING, fields={"paging_id": "abc"})
        recovered = NasMessage.from_wire(msg.to_wire())
        assert recovered.name == c.PAGING
        assert recovered.fields == {"paging_id": "abc"}

    def test_roundtrip_protected(self):
        msg = NasMessage(name=c.ATTACH_ACCEPT, fields={"guti": "g"},
                         sec_header=c.SEC_HDR_INTEGRITY,
                         count=3, mac=b"\x01" * 8)
        recovered = NasMessage.from_wire(msg.to_wire())
        assert recovered.sec_header == c.SEC_HDR_INTEGRITY
        assert recovered.count == 3
        assert recovered.mac == b"\x01" * 8

    def test_ciphered_payload_stays_opaque(self):
        msg = NasMessage(name=c.DOWNLINK_NAS_TRANSPORT,
                         sec_header=c.SEC_HDR_INTEGRITY_CIPHERED,
                         count=1, mac=b"\x02" * 8,
                         ciphertext=b"\xff" * 16)
        recovered = NasMessage.from_wire(msg.to_wire())
        assert recovered.ciphertext == b"\xff" * 16
        assert recovered.fields == {}

    def test_short_frame_rejected(self):
        with pytest.raises(MessageError):
            NasMessage.from_wire(b"\x00\x00")

    def test_bad_wire_header_rejected(self):
        msg = NasMessage(name=c.PAGING).to_wire()
        corrupted = b"\x0f" + msg[1:]
        with pytest.raises(MessageError):
            NasMessage.from_wire(corrupted)

    def test_copy_is_deep_for_fields(self):
        msg = NasMessage(name=c.PAGING, fields={"paging_id": "x"})
        clone = msg.copy()
        clone.fields["paging_id"] = "y"
        assert msg.fields["paging_id"] == "x"


_FIELD_VALUES = st.one_of(
    st.integers(min_value=-(2**62), max_value=2**62),
    st.text(max_size=30,
            alphabet=st.characters(blacklist_categories=("Cs",))),
    st.binary(max_size=40),
)


class TestWireProperties:
    @given(st.sampled_from(c.ALL_MESSAGES),
           st.dictionaries(
               st.text(alphabet="abcdefgh_", min_size=1, max_size=10),
               _FIELD_VALUES, max_size=6))
    def test_wire_roundtrip(self, name, fields):
        msg = NasMessage(name=name, fields=fields)
        recovered = NasMessage.from_wire(msg.to_wire())
        assert recovered.name == name
        expected = {k: (int(v) if isinstance(v, bool) else v)
                    for k, v in fields.items()}
        assert recovered.fields == expected

    @given(st.binary(max_size=60))
    def test_parser_never_crashes_on_garbage(self, data):
        try:
            NasMessage.from_wire(data)
        except MessageError:
            pass  # rejection is the expected outcome for garbage
