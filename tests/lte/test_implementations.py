"""Implementation registry tests: naming signatures and policy seeds."""

import pytest

from repro.lte.implementations import (IMPLEMENTATION_NAMES, OaiLikeUe,
                                       REGISTRY, ReferenceUe, SrsueLikeUe,
                                       create_ue)
from repro.lte.implementations.oai_like import oai_policy
from repro.lte.implementations.srsue_like import srsue_policy
from repro.lte.channel import RadioLink
from repro.lte.identifiers import make_subscriber


class TestRegistry:
    def test_names(self):
        assert set(IMPLEMENTATION_NAMES) == {"reference", "srsue", "oai"}

    def test_create_unknown_rejected(self):
        with pytest.raises(ValueError):
            create_ue("huawei", make_subscriber(), RadioLink())

    def test_create_builds_correct_class(self):
        ue = create_ue("srsue", make_subscriber(), RadioLink())
        assert isinstance(ue, SrsueLikeUe)


class TestSignatures:
    @pytest.mark.parametrize("cls,recv,send", [
        (ReferenceUe, "recv_", "send_"),
        (SrsueLikeUe, "parse_", "send_"),
        (OaiLikeUe, "emm_recv_", "emm_send_"),
    ])
    def test_prefixes(self, cls, recv, send):
        assert cls.RECV_PREFIX == recv
        assert cls.SEND_PREFIX == send

    @pytest.mark.parametrize("cls", [ReferenceUe, SrsueLikeUe, OaiLikeUe])
    def test_handlers_exist_with_signature_names(self, cls):
        assert hasattr(cls, cls.RECV_PREFIX + "attach_accept")
        assert hasattr(cls, cls.SEND_PREFIX + "attach_complete")

    def test_handler_code_objects_carry_real_filenames(self):
        """The tracer filters by source path; synthesised handlers must
        carry the module's filename (regression)."""
        handler = getattr(SrsueLikeUe, "parse_attach_accept")
        assert "repro" in handler.__code__.co_filename


class TestPolicies:
    def test_reference_is_compliant(self):
        ue = create_ue("reference", make_subscriber(), RadioLink())
        policy = ue.policy
        assert policy.enforce_dl_count
        assert not policy.accept_equal_sqn
        assert not policy.accept_plain_after_ctx
        assert policy.require_auth_after_reject
        assert not policy.respond_identity_always
        assert policy.freshness_limit is None   # P1 window open everywhere

    def test_srsue_deviations(self):
        policy = srsue_policy()
        assert not policy.enforce_dl_count              # I1
        assert policy.accept_equal_sqn                  # I3
        assert not policy.require_auth_after_reject     # I4
        assert not policy.accept_plain_after_ctx        # not I2
        assert not policy.respond_identity_always       # not I5

    def test_oai_deviations(self):
        policy = oai_policy()
        assert policy.replay_accept_last_only           # I1 (OAI flavour)
        assert policy.accept_plain_after_ctx            # I2
        assert policy.respond_identity_always           # I5
        assert not policy.accept_equal_sqn              # not I3
        assert policy.require_auth_after_reject         # not I4
