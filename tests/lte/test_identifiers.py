"""Identifier tests: IMSI/GUTI validation and allocation."""

import pytest

from repro.lte.identifiers import (Guti, GutiAllocator, Imsi, Subscriber,
                                   make_subscriber)


class TestImsi:
    def test_valid(self):
        imsi = Imsi("001", "01", "000000001")
        assert str(imsi) == "00101000000001"

    @pytest.mark.parametrize("mcc,mnc,msin", [
        ("01", "01", "000000001"),      # MCC too short
        ("001", "1", "000000001"),      # MNC too short
        ("001", "01", "123"),           # MSIN too short
        ("abc", "01", "000000001"),     # non-digits
    ])
    def test_invalid(self, mcc, mnc, msin):
        with pytest.raises(ValueError):
            Imsi(mcc, mnc, msin)


class TestGuti:
    def test_valid_and_renders(self):
        guti = Guti("00101", 1, 2, 0xdeadbeef)
        assert str(guti) == "00101-0001-02-deadbeef"

    def test_field_ranges(self):
        with pytest.raises(ValueError):
            Guti("00101", 1 << 16, 1, 1)
        with pytest.raises(ValueError):
            Guti("00101", 1, 1 << 8, 1)
        with pytest.raises(ValueError):
            Guti("00101", 1, 1, 1 << 32)


class TestAllocator:
    def test_allocations_unique(self):
        allocator = GutiAllocator()
        imsi = Imsi("001", "01", "000000001")
        gutis = {str(allocator.allocate(imsi)) for _ in range(20)}
        assert len(gutis) == 20

    def test_deterministic_with_seed(self):
        imsi = Imsi("001", "01", "000000001")
        first = GutiAllocator(seed=5).allocate(imsi)
        second = GutiAllocator(seed=5).allocate(imsi)
        assert first == second


class TestSubscriber:
    def test_key_length_enforced(self):
        with pytest.raises(ValueError):
            Subscriber(Imsi("001", "01", "000000001"), b"short")

    def test_factory(self):
        subscriber = make_subscriber("7")
        assert str(subscriber.imsi).endswith("000000007")
        assert len(subscriber.permanent_key) == 16

    def test_factory_distinct_keys(self):
        assert make_subscriber("1").permanent_key \
            != make_subscriber("2").permanent_key
