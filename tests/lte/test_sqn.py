"""TS 33.102 Annex C SQN scheme tests — the P1/P2 root cause in isolation."""

import pytest
from hypothesis import given, strategies as st

from repro.lte.sqn import (DEFAULT_IND_BITS, Sqn, SqnError, SqnGenerator,
                           UsimSqnArray)


class TestSqn:
    def test_pack_unpack_roundtrip(self):
        sqn = Sqn(seq=37, ind=5)
        assert Sqn.unpack(sqn.value) == sqn

    def test_ind_range_validated(self):
        with pytest.raises(SqnError):
            Sqn(seq=1, ind=1 << DEFAULT_IND_BITS)

    def test_negative_rejected(self):
        with pytest.raises(SqnError):
            Sqn(seq=-1, ind=0)

    @given(st.integers(0, 10_000), st.integers(0, 31))
    def test_roundtrip_property(self, seq, ind):
        sqn = Sqn(seq, ind)
        assert Sqn.unpack(sqn.value) == sqn


class TestGenerator:
    def test_both_parts_increment(self):
        generator = SqnGenerator()
        first = generator.next()
        second = generator.next()
        assert second.seq == first.seq + 1
        assert second.ind == (first.ind + 1) % 32

    def test_ind_wraps(self):
        generator = SqnGenerator(start_ind=31)
        assert generator.next().ind == 0

    def test_history_recorded(self):
        generator = SqnGenerator()
        values = [generator.next() for _ in range(5)]
        assert generator.generated == values


class TestUsimArray:
    def test_fresh_accepted(self):
        usim = UsimSqnArray()
        assert usim.verify(Sqn(1, 1)).accepted

    def test_same_slot_replay_rejected(self):
        usim = UsimSqnArray()
        usim.verify(Sqn(5, 3))
        verdict = usim.verify(Sqn(5, 3))
        assert not verdict.accepted
        assert verdict.resync_seq == 5

    def test_smaller_seq_same_slot_rejected(self):
        usim = UsimSqnArray()
        usim.verify(Sqn(5, 3))
        assert not usim.verify(Sqn(4, 3)).accepted

    def test_out_of_order_accepted_in_other_slot(self):
        """The Annex C design flaw: globally stale values are accepted."""
        usim = UsimSqnArray()
        usim.verify(Sqn(10, 1))
        verdict = usim.verify(Sqn(3, 2))     # stale, different IND slot
        assert verdict.accepted
        assert not usim.is_globally_fresh(Sqn(3, 2))

    def test_peek_does_not_mutate(self):
        usim = UsimSqnArray()
        usim.peek(Sqn(5, 3))
        assert usim.verify(Sqn(5, 3)).accepted

    def test_freshness_limit_closes_window(self):
        """The optional parameter L (Annex C 2.2) blocks P1 when set."""
        usim = UsimSqnArray(freshness_limit=2)
        usim.verify(Sqn(10, 1))
        assert not usim.verify(Sqn(3, 2)).accepted
        assert usim.verify(Sqn(9, 2)).accepted    # within L

    def test_stale_window_is_array_size_minus_one(self):
        """Paper: with a = 2**5 = 32, 31 stale requests are accepted."""
        generator = SqnGenerator()
        usim = UsimSqnArray()
        history = [generator.next() for _ in range(32)]
        usim.verify(history[-1])
        accepted = sum(1 for sqn in history[:-1]
                       if usim.verify(sqn).accepted)
        assert accepted == 31

    def test_resync_uses_highest_accepted(self):
        usim = UsimSqnArray()
        usim.verify(Sqn(9, 1))
        usim.verify(Sqn(4, 2))
        verdict = usim.verify(Sqn(2, 2))
        assert verdict.resync_seq == 9

    def test_ind_width_mismatch_rejected(self):
        usim = UsimSqnArray(ind_bits=5)
        with pytest.raises(SqnError):
            usim.verify(Sqn(1, 1, ind_bits=4))

    def test_counters(self):
        usim = UsimSqnArray()
        usim.verify(Sqn(1, 1))
        usim.verify(Sqn(1, 1))
        assert usim.accept_count == 1
        assert usim.reject_count == 1


class TestUsimProperties:
    @given(st.lists(st.tuples(st.integers(1, 100), st.integers(0, 31)),
                    min_size=1, max_size=60))
    def test_slots_monotonically_increase(self, entries):
        """Accepted SEQ values never decrease a slot (array invariant)."""
        usim = UsimSqnArray()
        previous = usim.slots
        for seq, ind in entries:
            usim.verify(Sqn(seq, ind))
            current = usim.slots
            assert all(c >= p for c, p in zip(current, previous))
            previous = current

    @given(st.lists(st.tuples(st.integers(1, 100), st.integers(0, 31)),
                    min_size=1, max_size=60))
    def test_replay_of_accepted_value_always_rejected(self, entries):
        """Immediate byte-exact replay never passes (compliant USIM)."""
        usim = UsimSqnArray()
        for seq, ind in entries:
            if usim.verify(Sqn(seq, ind)).accepted:
                assert not usim.peek(Sqn(seq, ind)).accepted

    @given(st.integers(1, 50), st.integers(0, 31),
           st.integers(1, 50), st.integers(0, 31))
    def test_freshness_limit_never_widens(self, seq1, ind1, seq2, ind2):
        """Whatever L rejects includes everything no-L rejects."""
        open_usim = UsimSqnArray()
        limited = UsimSqnArray(freshness_limit=3)
        open_usim.verify(Sqn(seq1, ind1))
        limited.verify(Sqn(seq1, ind1))
        if not open_usim.peek(Sqn(seq2, ind2)).accepted:
            assert not limited.peek(Sqn(seq2, ind2)).accepted
