"""NAS security primitive tests: keys, MAC, cipher, COUNT handling."""

from hypothesis import given, strategies as st

from repro.lte.security import (AuthVector, DIR_DOWNLINK, DIR_UPLINK,
                                SecurityContext, derive_kasme,
                                derive_nas_keys, f1_mac, f2_res,
                                generate_auth_vector, nas_cipher, nas_mac)
from repro.lte.sqn import Sqn

KEY = b"\x01" * 16
RAND = b"\x02" * 16
SQN = Sqn(5, 5)


class TestAuthFunctions:
    def test_f1_deterministic_and_key_dependent(self):
        assert f1_mac(KEY, RAND, SQN) == f1_mac(KEY, RAND, SQN)
        assert f1_mac(KEY, RAND, SQN) != f1_mac(b"\x09" * 16, RAND, SQN)

    def test_f1_sqn_dependent(self):
        assert f1_mac(KEY, RAND, SQN) != f1_mac(KEY, RAND, Sqn(6, 6))

    def test_f2_key_dependent(self):
        assert f2_res(KEY, RAND) != f2_res(b"\x09" * 16, RAND)

    def test_kasme_depends_on_sqn(self):
        """Accepting an old SQN regenerates *old* keys (the P1 desync)."""
        assert derive_kasme(KEY, RAND, SQN) != derive_kasme(
            KEY, RAND, Sqn(6, 6))

    def test_vector_consistency(self):
        vector = generate_auth_vector(KEY, SQN)
        assert vector.autn_mac == f1_mac(KEY, vector.rand, SQN)
        assert vector.xres == f2_res(KEY, vector.rand)
        assert vector.kasme == derive_kasme(KEY, vector.rand, SQN)


class TestNasKeys:
    def test_derivation_split(self):
        k_int, k_enc = derive_nas_keys(b"\x07" * 32)
        assert k_int != k_enc
        assert len(k_int) == len(k_enc) == 16


class TestMacAndCipher:
    def test_mac_detects_payload_change(self):
        k_int, _ = derive_nas_keys(b"\x07" * 32)
        tag = nas_mac(k_int, 0, DIR_DOWNLINK, b"payload")
        assert tag != nas_mac(k_int, 0, DIR_DOWNLINK, b"payloae")

    def test_mac_binds_count_and_direction(self):
        k_int, _ = derive_nas_keys(b"\x07" * 32)
        tag = nas_mac(k_int, 0, DIR_DOWNLINK, b"p")
        assert tag != nas_mac(k_int, 1, DIR_DOWNLINK, b"p")
        assert tag != nas_mac(k_int, 0, DIR_UPLINK, b"p")

    @given(st.binary(min_size=0, max_size=200), st.integers(0, 1000))
    def test_cipher_roundtrip(self, payload, count):
        _, k_enc = derive_nas_keys(b"\x07" * 32)
        ciphertext = nas_cipher(k_enc, count, DIR_DOWNLINK, payload)
        assert nas_cipher(k_enc, count, DIR_DOWNLINK,
                          ciphertext) == payload

    @given(st.binary(min_size=8, max_size=64))
    def test_cipher_actually_changes_bytes(self, payload):
        _, k_enc = derive_nas_keys(b"\x07" * 32)
        assert nas_cipher(k_enc, 0, DIR_DOWNLINK, payload) != payload


class TestSecurityContext:
    def make_pair(self):
        sender = SecurityContext(kasme=b"\x07" * 32)
        receiver = SecurityContext(kasme=b"\x07" * 32)
        return sender, receiver

    def test_protect_verify_roundtrip(self):
        sender, receiver = self.make_pair()
        body, tag, count = sender.protect(b"hello", DIR_DOWNLINK,
                                          cipher=False)
        assert receiver.verify(body, tag, count, DIR_DOWNLINK)

    def test_count_advances_per_message(self):
        sender, _ = self.make_pair()
        _, _, first = sender.protect(b"a", DIR_DOWNLINK, cipher=False)
        _, _, second = sender.protect(b"b", DIR_DOWNLINK, cipher=False)
        assert second == first + 1

    def test_cross_direction_rejected(self):
        sender, receiver = self.make_pair()
        body, tag, count = sender.protect(b"x", DIR_UPLINK, cipher=False)
        assert not receiver.verify(body, tag, count, DIR_DOWNLINK)

    def test_compliant_replay_check(self):
        _, receiver = self.make_pair()
        assert receiver.accept_dl_count(0)
        assert not receiver.accept_dl_count(0)   # replay
        assert receiver.accept_dl_count(5)       # skipping forward is OK
        assert not receiver.accept_dl_count(3)

    def test_uplink_replay_check(self):
        _, receiver = self.make_pair()
        assert receiver.accept_ul_count(0)
        assert not receiver.accept_ul_count(0)

    def test_ciphered_protect(self):
        sender, receiver = self.make_pair()
        body, tag, count = sender.protect(b"secret", DIR_DOWNLINK,
                                          cipher=True)
        assert body != b"secret"
        assert receiver.unprotect(body, count, DIR_DOWNLINK) == b"secret"

    def test_different_kasme_fails_verification(self):
        sender = SecurityContext(kasme=b"\x07" * 32)
        receiver = SecurityContext(kasme=b"\x08" * 32)
        body, tag, count = sender.protect(b"x", DIR_DOWNLINK, cipher=False)
        assert not receiver.verify(body, tag, count, DIR_DOWNLINK)
