"""UE NAS behaviour tests: happy paths, failure handling, policy seeds."""

import pytest

from repro.lte import constants as c
from repro.lte.channel import RadioLink
from repro.lte.hss import Hss
from repro.lte.identifiers import make_subscriber
from repro.lte.messages import NasMessage
from repro.lte.mme import MmeNas
from repro.lte.security import DIR_DOWNLINK, f1_mac
from repro.lte.sqn import Sqn
from repro.lte.timers import SimClock
from repro.lte.ue import UeNas, UePolicy


class Harness:
    """UE + real MME over a link, with probe helpers."""

    def __init__(self, policy=None):
        self.clock = SimClock()
        self.link = RadioLink()
        self.subscriber = make_subscriber("000000001")
        self.hss = Hss()
        self.hss.provision(self.subscriber)
        self.mme = MmeNas(self.hss, self.link, clock=self.clock)
        self.ue = UeNas(self.subscriber, self.link, clock=self.clock,
                        policy=policy)

    def attach(self):
        self.ue.power_on()
        assert self.ue.emm_state == c.EMM_REGISTERED
        return self

    def cut_network(self):
        self.link.detach_mme()

    def inject_plain(self, name, **fields):
        msg = NasMessage(name=name, fields=fields)
        self.link.inject_downlink(msg.to_wire())

    def inject_protected(self, name, **fields):
        msg = NasMessage(name=name, fields=fields)
        body = msg.payload_bytes()
        _, tag, count = self.mme.security_ctx.protect(
            body, DIR_DOWNLINK, cipher=False)
        msg.sec_header = c.SEC_HDR_INTEGRITY
        msg.mac, msg.count = tag, count
        self.link.inject_downlink(msg.to_wire())

    def replayed_frame(self, name, index=-1):
        matches = [r.frame for r in self.link.history
                   if r.direction == "downlink"
                   and NasMessage.from_wire(r.frame).name == name]
        return matches[index]

    def uplink_names(self):
        return [m.name for m in self.link.captured_messages("uplink")]


class TestAttach:
    def test_full_attach(self):
        harness = Harness().attach()
        assert harness.ue.has_security_ctx
        assert harness.ue.current_guti is not None
        assert harness.uplink_names() == [
            c.ATTACH_REQUEST, c.AUTHENTICATION_RESPONSE,
            c.SECURITY_MODE_COMPLETE, c.ATTACH_COMPLETE]

    def test_state_progression_through_substates(self):
        harness = Harness()
        states = []
        original = harness.ue._recv_authentication_request_impl

        harness.ue.power_on()
        # final state reached; intermediate sub-states exercised implicitly
        assert harness.ue.emm_state == c.EMM_REGISTERED


class TestAuthentication:
    def test_bad_mac_triggers_failure_response(self):
        harness = Harness()
        harness.cut_network()
        harness.ue.power_on()
        harness.inject_plain(c.AUTHENTICATION_REQUEST,
                             rand=b"\x01" * 16, sqn_seq=1, sqn_ind=1,
                             autn_mac=b"\x00" * 8)
        assert c.AUTH_MAC_FAILURE in harness.uplink_names()

    def test_stale_same_slot_triggers_sync_failure(self):
        harness = Harness().attach()
        harness.cut_network()
        rand = b"\x01" * 16
        sqn = Sqn(1, 1)   # consumed during attach
        harness.inject_plain(
            c.AUTHENTICATION_REQUEST, rand=rand, sqn_seq=1, sqn_ind=1,
            autn_mac=f1_mac(harness.subscriber.permanent_key, rand, sqn))
        assert c.AUTH_SYNC_FAILURE in harness.uplink_names()

    def test_out_of_order_sqn_accepted(self):
        """The Annex C window: stale SQN in another slot is accepted."""
        harness = Harness().attach()
        harness.cut_network()
        rand = b"\x01" * 16
        for seq, ind in ((3, 3), (2, 2)):   # 2 < 3 but slot 2 untouched
            sqn = Sqn(seq, ind)
            harness.inject_plain(
                c.AUTHENTICATION_REQUEST, rand=rand,
                sqn_seq=seq, sqn_ind=ind,
                autn_mac=f1_mac(harness.subscriber.permanent_key,
                                rand, sqn))
        responses = harness.uplink_names()
        assert responses.count(c.AUTHENTICATION_RESPONSE) >= 3

    def test_byte_exact_replay_rejected_by_default(self):
        harness = Harness().attach()
        harness.cut_network()
        frame = harness.replayed_frame(c.AUTHENTICATION_REQUEST)
        harness.link.inject_downlink(frame)
        assert c.AUTH_SYNC_FAILURE in harness.uplink_names()

    def test_equal_sqn_accepted_with_i3_policy(self):
        harness = Harness(UePolicy(accept_equal_sqn=True)).attach()
        harness.cut_network()
        before = harness.uplink_names().count(c.AUTHENTICATION_RESPONSE)
        frame = harness.replayed_frame(c.AUTHENTICATION_REQUEST)
        harness.link.inject_downlink(frame)
        after = harness.uplink_names().count(c.AUTHENTICATION_RESPONSE)
        assert after == before + 1

    def test_freshness_limit_blocks_window(self):
        harness = Harness(UePolicy(freshness_limit=0)).attach()
        harness.cut_network()
        rand = b"\x01" * 16
        # advance to seq 5 first
        sqn = Sqn(5, 5)
        harness.inject_plain(
            c.AUTHENTICATION_REQUEST, rand=rand, sqn_seq=5, sqn_ind=5,
            autn_mac=f1_mac(harness.subscriber.permanent_key, rand, sqn))
        stale = Sqn(2, 2)
        harness.inject_plain(
            c.AUTHENTICATION_REQUEST, rand=rand, sqn_seq=2, sqn_ind=2,
            autn_mac=f1_mac(harness.subscriber.permanent_key, rand,
                            stale))
        assert c.AUTH_SYNC_FAILURE in harness.uplink_names()


class TestReplayProtection:
    def test_compliant_discards_replayed_protected(self):
        harness = Harness().attach()
        harness.cut_network()
        before = harness.uplink_names()
        harness.link.inject_downlink(
            harness.replayed_frame(c.ATTACH_ACCEPT))
        assert harness.uplink_names() == before   # silent discard

    def test_i1_srs_accepts_any_replay_and_resets_counter(self):
        harness = Harness(UePolicy(enforce_dl_count=False)).attach()
        harness.cut_network()
        count_before = harness.ue.security_ctx.dl_count
        harness.link.inject_downlink(
            harness.replayed_frame(c.ATTACH_ACCEPT))
        assert c.ATTACH_COMPLETE in harness.uplink_names()[-1:]
        assert harness.ue.security_ctx.dl_count <= count_before

    def test_i1_oai_accepts_only_last(self):
        harness = Harness(UePolicy(replay_accept_last_only=True)).attach()
        harness.inject_protected(c.EMM_INFORMATION, network_name="A")
        harness.inject_protected(c.EMM_INFORMATION, network_name="B")
        harness.cut_network()
        # older replay (SMC) silently dropped
        harness.link.inject_downlink(
            harness.replayed_frame(c.SECURITY_MODE_COMMAND))
        assert harness.uplink_names()[-1] != c.SECURITY_MODE_COMPLETE
        # last message replays fine
        events_before = len(harness.ue.events)
        harness.link.inject_downlink(
            harness.replayed_frame(c.EMM_INFORMATION, index=-1))
        info_events = [e for e in harness.ue.events[events_before:]
                       if e.kind == "emm_information"]
        assert info_events


class TestIntegrity:
    def test_plain_protected_rejected_by_default(self):
        harness = Harness().attach()
        harness.cut_network()
        guti_before = str(harness.ue.current_guti)
        harness.inject_plain(c.GUTI_REALLOCATION_COMMAND,
                             guti="00101-0001-01-deadbeef")
        assert str(harness.ue.current_guti) == guti_before

    def test_i2_oai_accepts_plain_after_ctx(self):
        harness = Harness(UePolicy(accept_plain_after_ctx=True)).attach()
        harness.cut_network()
        harness.inject_plain(c.GUTI_REALLOCATION_COMMAND,
                             guti="00101-0001-01-deadbeef")
        assert str(harness.ue.current_guti) == "00101-0001-01-deadbeef"
        assert c.GUTI_REALLOCATION_COMPLETE in harness.uplink_names()

    def test_plain_protected_rejected_before_ctx(self):
        harness = Harness(UePolicy(accept_plain_after_ctx=True))
        harness.cut_network()
        harness.ue.power_on()
        harness.inject_plain(c.ATTACH_ACCEPT, guti="00101-0001-01-0000beef")
        assert harness.ue.emm_state == c.EMM_REGISTERED_INITIATED

    def test_garbage_mac_discarded(self):
        harness = Harness().attach()
        harness.cut_network()
        msg = NasMessage(name=c.SECURITY_MODE_COMMAND,
                         fields={"selected_eia": "eia1"},
                         sec_header=c.SEC_HDR_INTEGRITY,
                         count=99, mac=b"\xff" * 8)
        harness.link.inject_downlink(msg.to_wire())
        assert harness.uplink_names()[-1] != c.SECURITY_MODE_COMPLETE


class TestRejectHandling:
    def test_compliant_deletes_context_on_reject(self):
        harness = Harness().attach()
        harness.cut_network()
        harness.inject_plain(c.ATTACH_REJECT, cause=7)
        assert harness.ue.emm_state == c.EMM_DEREGISTERED_ATTACH_NEEDED
        assert harness.ue.security_ctx is None
        assert not harness.ue.has_security_ctx

    def test_i4_srs_keeps_context_and_bypasses(self):
        # I4 composes with I1 in srsUE: the kept context verifies the
        # replayed accept's MAC, and the absent COUNT check admits it.
        harness = Harness(UePolicy(require_auth_after_reject=False,
                                   enforce_dl_count=False)).attach()
        accept_frame = harness.replayed_frame(c.ATTACH_ACCEPT)
        harness.cut_network()
        harness.inject_plain(c.ATTACH_REJECT, cause=7)
        assert harness.ue.security_ctx is not None
        harness.ue.power_on()
        harness.link.inject_downlink(accept_frame)
        assert harness.ue.emm_state == c.EMM_REGISTERED   # no auth, no SMC

    def test_authentication_reject_numbs(self):
        harness = Harness()
        harness.cut_network()
        harness.ue.power_on()
        harness.inject_plain(c.AUTHENTICATION_REJECT)
        assert harness.ue.emm_state == c.EMM_DEREGISTERED


class TestIdentity:
    def test_compliant_answers_only_during_attach(self):
        harness = Harness()
        harness.cut_network()
        harness.ue.power_on()
        harness.inject_plain(c.IDENTITY_REQUEST, identity_type="imsi")
        assert c.IDENTITY_RESPONSE in harness.uplink_names()

    def test_compliant_silent_after_context(self):
        harness = Harness().attach()
        harness.cut_network()
        before = harness.uplink_names()
        harness.inject_plain(c.IDENTITY_REQUEST, identity_type="imsi")
        assert harness.uplink_names() == before

    def test_i5_oai_leaks_imsi_always(self):
        harness = Harness(UePolicy(respond_identity_always=True)).attach()
        harness.cut_network()
        harness.inject_plain(c.IDENTITY_REQUEST, identity_type="imsi")
        responses = harness.link.captured_messages("uplink")
        assert responses[-1].name == c.IDENTITY_RESPONSE
        assert responses[-1].fields["imsi"] == str(harness.subscriber.imsi)


class TestOtherProcedures:
    def test_paging_identity_mismatch_ignored(self):
        harness = Harness().attach()
        harness.cut_network()
        harness.inject_plain(c.PAGING, paging_id="00101-9999-01-00000000")
        assert harness.ue.emm_state == c.EMM_REGISTERED

    def test_paging_match_triggers_service_request(self):
        harness = Harness().attach()
        harness.cut_network()
        harness.inject_plain(c.PAGING,
                             paging_id=str(harness.ue.current_guti))
        assert harness.ue.emm_state == c.EMM_SERVICE_REQUEST_INITIATED
        assert c.SERVICE_REQUEST in harness.uplink_names()

    def test_tau_roundtrip(self):
        harness = Harness().attach()
        harness.ue.initiate_tau()
        assert harness.ue.emm_state == c.EMM_REGISTERED
        assert c.TAU_COMPLETE in harness.uplink_names()

    def test_ue_initiated_detach(self):
        harness = Harness().attach()
        harness.ue.initiate_detach()
        assert harness.ue.emm_state == c.EMM_DEREGISTERED

    def test_plain_detach_accepted_before_ctx(self):
        """TS 24.301 4.4.4.2 exception (kick-off vector)."""
        harness = Harness()
        harness.cut_network()
        harness.ue.power_on()
        harness.inject_plain(c.DETACH_REQUEST, reattach=0)
        assert harness.ue.emm_state == c.EMM_DEREGISTERED

    def test_plain_detach_rejected_after_ctx(self):
        harness = Harness().attach()
        harness.cut_network()
        harness.inject_plain(c.DETACH_REQUEST, reattach=0)
        assert harness.ue.emm_state == c.EMM_REGISTERED

    def test_smc_null_integrity_rejected(self):
        harness = Harness().attach()
        harness.inject_protected(c.SECURITY_MODE_COMMAND,
                                 selected_eia="eia0")
        assert harness.uplink_names()[-1] == c.SECURITY_MODE_REJECT

    def test_guti_reallocation(self):
        harness = Harness().attach()
        old = str(harness.ue.current_guti)
        harness.mme.initiate_guti_reallocation()
        assert str(harness.ue.current_guti) != old
        assert c.GUTI_REALLOCATION_COMPLETE in harness.uplink_names()

    def test_t3410_retransmits_then_gives_up(self):
        """TS 24.301 attach supervision: four retransmissions, then the
        UE abandons the attempt."""
        harness = Harness()
        harness.cut_network()
        harness.ue.power_on()
        for _ in range(8):
            harness.clock.advance(20.0)
        requests = harness.uplink_names().count(c.ATTACH_REQUEST)
        assert requests == 5                      # initial + 4 retx
        assert harness.ue.emm_state == c.EMM_DEREGISTERED_ATTACH_NEEDED

    def test_t3410_stopped_on_successful_attach(self):
        harness = Harness().attach()
        harness.clock.advance(200.0)
        assert harness.uplink_names().count(c.ATTACH_REQUEST) == 1
        assert not harness.clock.is_running(c.T3410)

    def test_t3410_stopped_on_reject(self):
        harness = Harness()
        harness.cut_network()
        harness.ue.power_on()
        harness.inject_plain(c.ATTACH_REJECT, cause=7)
        harness.clock.advance(200.0)
        assert harness.uplink_names().count(c.ATTACH_REQUEST) == 1

    def test_malformed_frame_noted(self):
        harness = Harness()
        harness.ue.air_msg_handler(b"\x00\x01")
        assert any(e.kind == "malformed_frame" for e in harness.ue.events)


class TestT3410MidProcedure:
    """T3410 owns the whole attach procedure: a retransmission must also
    fire from the mid-procedure states a lost downlink strands the UE in
    (authenticated or secured but never accepted).  The MME's own T3460
    supervision is stopped in these tests to isolate the UE side."""

    @staticmethod
    def _drop(message, nth):
        from repro import faults
        faults.install(faults.FaultPlan.parse(
            [f"channel.impair@downlink:{message}:raise:{nth}:all"]))

    def test_retransmits_from_authenticated_state_and_recovers(self):
        harness = Harness()
        self._drop(c.SECURITY_MODE_COMMAND, nth=1)   # first SMC only
        try:
            harness.ue.power_on()
        finally:
            from repro import faults
            faults.clear()
        # The lost SMC strands the UE mid-procedure, authenticated.
        assert (harness.ue.emm_state
                == c.EMM_REGISTERED_INITIATED_AUTHENTICATED)
        assert harness.clock.is_running(c.T3410)
        harness.clock.stop(c.T3460)            # isolate UE supervision
        assert harness.clock.fire_next() == c.T3410
        # The retransmitted ATTACH REQUEST restarted the procedure and
        # the second SECURITY MODE COMMAND went through.
        assert harness.uplink_names().count(c.ATTACH_REQUEST) == 2
        assert harness.ue.emm_state == c.EMM_REGISTERED

    def test_aborts_from_mid_procedure_state_after_limit(self):
        harness = Harness()
        self._drop(c.SECURITY_MODE_COMMAND, nth=0)   # every SMC lost
        try:
            harness.ue.power_on()
            fired = 0
            while harness.clock.is_running(c.T3410):
                harness.clock.stop(c.T3460)    # isolate UE supervision
                harness.clock.fire_next()
                fired += 1
        finally:
            from repro import faults
            faults.clear()
        limit = c.TIMER_MAX_RETRANSMISSIONS[c.T3410]
        assert fired == limit + 1                 # 4 retx + the abort
        assert harness.uplink_names().count(c.ATTACH_REQUEST) == limit + 1
        assert harness.ue.emm_state == c.EMM_DEREGISTERED_ATTACH_NEEDED

    def test_expiry_in_registered_state_is_a_no_op(self):
        harness = Harness().attach()
        # Defensive: a stale T3410 callback after attach completion must
        # not resend anything (the clock stops it, but the guard is the
        # contract).
        harness.ue._arm_t3410({"imsi": str(harness.subscriber.imsi)})
        harness.clock.fire_next()
        assert harness.uplink_names().count(c.ATTACH_REQUEST) == 1
        assert harness.ue.emm_state == c.EMM_REGISTERED
