"""5G Configuration Update procedure tests (TS 24.501, 'Impact on 5G')."""

from repro.lte import constants as c
from repro.lte.channel import RadioLink
from repro.lte.hss import Hss
from repro.lte.identifiers import make_subscriber
from repro.lte.mme import MmeNas
from repro.lte.timers import SimClock
from repro.lte.ue import UeNas, UePolicy


class Harness:
    def __init__(self, policy=None):
        self.clock = SimClock()
        self.link = RadioLink()
        self.subscriber = make_subscriber("000000001")
        self.hss = Hss()
        self.hss.provision(self.subscriber)
        self.mme = MmeNas(self.hss, self.link, clock=self.clock)
        self.ue = UeNas(self.subscriber, self.link, clock=self.clock,
                        policy=policy)
        self.ue.power_on()


class TestConfigurationUpdate:
    def test_completes_and_updates_guti(self):
        harness = Harness()
        old = str(harness.ue.current_guti)
        harness.mme.initiate_configuration_update()
        assert str(harness.ue.current_guti) != old
        names = [m.name for m in
                 harness.link.captured_messages("uplink")]
        assert c.CONFIGURATION_UPDATE_COMPLETE in names
        assert not harness.clock.is_running(c.T3555)

    def test_t3555_retransmits_four_times_then_aborts(self):
        """TS 24.501: 'on the fifth expiry of timer T3555, the procedure
        shall be aborted' — the P3-5G drop budget."""
        harness = Harness()
        harness.link.detach_ue()
        harness.mme.initiate_configuration_update()
        for _ in range(7):
            harness.clock.advance(10.0)
        sent = [m for m in harness.link.captured_messages("downlink")
                if m.name == c.CONFIGURATION_UPDATE_COMMAND]
        assert len(sent) == 5
        assert c.CONFIGURATION_UPDATE_COMMAND \
            in harness.mme.aborted_procedures

    def test_replayed_command_rejected_by_compliant_ue(self):
        harness = Harness()
        harness.mme.initiate_configuration_update()
        frame = next(r.frame for r in reversed(harness.link.history)
                     if r.direction == "downlink")
        guti = str(harness.ue.current_guti)
        harness.link.detach_mme()
        completes_before = [
            m.name for m in harness.link.captured_messages("uplink")
        ].count(c.CONFIGURATION_UPDATE_COMPLETE)
        harness.link.inject_downlink(frame)
        completes_after = [
            m.name for m in harness.link.captured_messages("uplink")
        ].count(c.CONFIGURATION_UPDATE_COMPLETE)
        assert completes_after == completes_before
        assert str(harness.ue.current_guti) == guti

    def test_plain_command_rejected_unless_i2(self):
        from repro.lte.messages import NasMessage
        compliant = Harness()
        compliant.link.detach_mme()
        msg = NasMessage(name=c.CONFIGURATION_UPDATE_COMMAND,
                         fields={"guti": "00101-0001-01-deadbeef"})
        compliant.link.inject_downlink(msg.to_wire())
        assert str(compliant.ue.current_guti) != "00101-0001-01-deadbeef"

        oai_like = Harness(UePolicy(accept_plain_after_ctx=True))
        oai_like.link.detach_mme()
        oai_like.link.inject_downlink(msg.to_wire())
        assert str(oai_like.ue.current_guti) == "00101-0001-01-deadbeef"

    def test_extracted_model_contains_5g_transitions(self,
                                                     extracted_models):
        fsm = extracted_models["reference"]
        transitions = [t for t in fsm.transitions
                       if t.trigger == c.CONFIGURATION_UPDATE_COMMAND]
        assert any(c.CONFIGURATION_UPDATE_COMPLETE in t.actions
                   for t in transitions)
