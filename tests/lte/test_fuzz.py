"""Failure injection: the NAS handlers must survive hostile input.

Logical-vulnerability analysis presumes the parsing layer does not crash;
these tests fuzz the air interface of every implementation with random
bytes, random field soup, and bit-flipped genuine frames, asserting that
(a) nothing raises out of the handler, and (b) garbage never silently
advances the protocol state.
"""

from hypothesis import given, settings, strategies as st

from repro.lte import constants as c
from repro.lte.channel import RadioLink
from repro.lte.hss import Hss
from repro.lte.identifiers import make_subscriber
from repro.lte.implementations import REGISTRY
from repro.lte.messages import NasMessage
from repro.lte.mme import MmeNas
from repro.lte.timers import SimClock


def attached_ue(implementation="reference"):
    clock = SimClock()
    link = RadioLink()
    subscriber = make_subscriber("000000001")
    hss = Hss()
    hss.provision(subscriber)
    MmeNas(hss, link, clock=clock)
    ue = REGISTRY[implementation](subscriber, link, clock=clock)
    ue.power_on()
    link.detach_mme()
    return ue, link


class TestRandomBytes:
    @settings(max_examples=80, deadline=None)
    @given(st.binary(max_size=120))
    def test_ue_survives_garbage_frames(self, payload):
        ue, _link = attached_ue()
        state_before = ue.emm_state
        ue.air_msg_handler(payload)
        # garbage can never be a valid protected/known message
        assert ue.emm_state == state_before

    @settings(max_examples=40, deadline=None)
    @given(st.binary(max_size=120))
    def test_mme_survives_garbage_frames(self, payload):
        clock = SimClock()
        link = RadioLink()
        subscriber = make_subscriber("000000002")
        hss = Hss()
        hss.provision(subscriber)
        mme = MmeNas(hss, link, clock=clock)
        state_before = mme.emm_state
        mme.uplink_msg_handler(payload)
        assert mme.emm_state == state_before


class TestBitFlips:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=2000),
           st.integers(min_value=0, max_value=7),
           st.sampled_from(("reference", "srsue", "oai")))
    def test_flipped_genuine_frames_never_crash(self, position, bit,
                                                implementation):
        ue, link = attached_ue(implementation)
        genuine = [r.frame for r in link.history
                   if r.direction == "downlink"]
        frame = bytearray(genuine[position % len(genuine)])
        index = position % len(frame)
        frame[index] ^= 1 << bit
        ue.air_msg_handler(bytes(frame))   # must not raise


class TestMmeFieldSoup:
    _values = st.one_of(st.integers(-(2**40), 2**40),
                        st.text(max_size=20),
                        st.binary(max_size=20))

    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(c.UPLINK_MESSAGES),
           st.dictionaries(
               st.sampled_from(("imsi", "guti", "res", "resync_seq",
                                "switch_off", "tracking_area")),
               _values, max_size=4))
    def test_mme_survives_hostile_uplink(self, name, fields):
        clock = SimClock()
        link = RadioLink()
        subscriber = make_subscriber("000000003")
        hss = Hss()
        hss.provision(subscriber)
        mme = MmeNas(hss, link, clock=clock)
        message = NasMessage(name=name, fields=fields)
        mme.uplink_msg_handler(message.to_wire())   # must not raise


class TestFieldSoup:
    _soup_values = st.one_of(
        st.integers(-(2**40), 2**40),
        st.text(max_size=20,
                alphabet=st.characters(blacklist_categories=("Cs",))),
        st.binary(max_size=20))

    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(c.DOWNLINK_MESSAGES),
           st.dictionaries(
               st.sampled_from(("guti", "cause", "paging_id", "rand",
                                "sqn_seq", "sqn_ind", "autn_mac",
                                "identity_type", "reattach",
                                "network_name")),
               _soup_values, max_size=5))
    def test_wellformed_frames_with_hostile_fields(self, name, fields):
        """Structurally valid frames with adversarial field values go
        through the full unpack/sanity/MAC path without crashing."""
        ue, _link = attached_ue()
        message = NasMessage(name=name, fields=fields)
        ue.air_msg_handler(message.to_wire())
