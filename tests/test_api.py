"""The supported public surface: ``repro.api`` exports and stability."""

import repro
import repro.api as api


class TestFacade:
    def test_all_is_explicit_and_complete(self):
        assert api.__all__
        for name in api.__all__:
            assert hasattr(api, name), f"__all__ names missing {name}"

    def test_core_entry_points_exported(self):
        for name in ("AnalysisConfig", "ProChecker", "AnalysisReport",
                     "PropertyResult", "Verdict", "analyze_many"):
            assert name in api.__all__

    def test_versioning_exported(self):
        assert api.SCHEMA_VERSION == repro.SCHEMA_VERSION
        assert "SchemaVersionError" in api.__all__

    def test_service_surface_exported(self):
        for name in ("AnalysisService", "ServeClient", "create_server",
                     "ResultStore", "job_digest", "JobStatus"):
            assert name in api.__all__

    def test_no_private_leaks(self):
        assert not [name for name in api.__all__
                    if name.startswith("_")]

    def test_facade_objects_are_the_canonical_ones(self):
        # The facade re-exports, it does not wrap: identity must hold so
        # isinstance checks work across both import paths.
        from repro.core import AnalysisConfig, ProChecker
        assert api.AnalysisConfig is AnalysisConfig
        assert api.ProChecker is ProChecker


class TestShimRemoval:
    def test_analyze_implementation_is_gone(self):
        import repro.core
        for module in (repro, repro.core, api):
            assert not hasattr(module, "analyze_implementation")

    def test_smoke_analysis_through_facade(self):
        config = api.AnalysisConfig("reference", property_ids=["SEC-37"])
        report = api.ProChecker.from_config(config).analyze()
        assert report.results[0].outcome is api.Verdict.VERIFIED
