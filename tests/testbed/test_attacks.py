"""Testbed attack-script tests: the end-to-end Table I matrix."""

import pytest

from repro.testbed import (PRIOR_ATTACK_IDS, registry, run_attack)

NEW_ATTACKS = {
    "P1": (True, True, True),
    "P2": (True, True, True),
    "P3": (True, True, True),
    "I1": (False, True, True),
    "I2": (False, False, True),
    "I3": (False, True, False),
    "I4": (False, True, False),
    "I5": (False, False, True),
    "I6": (False, True, True),
}

IMPLEMENTATIONS = ("reference", "srsue", "oai")


class TestRegistry:
    def test_all_new_attacks_registered(self):
        assert set(NEW_ATTACKS) <= set(registry())

    def test_all_prior_attacks_registered(self):
        assert set(PRIOR_ATTACK_IDS) <= set(registry())
        assert len(PRIOR_ATTACK_IDS) == 14   # Table I rows

    def test_unknown_attack_rejected(self):
        with pytest.raises(ValueError):
            run_attack("P99", "reference")


class TestNewAttackMatrix:
    @pytest.mark.parametrize("attack_id", sorted(NEW_ATTACKS))
    def test_matrix_row(self, attack_id):
        expected = NEW_ATTACKS[attack_id]
        for implementation, should_succeed in zip(IMPLEMENTATIONS,
                                                  expected):
            result = run_attack(attack_id, implementation)
            assert result.succeeded == should_succeed, (
                attack_id, implementation, result.evidence)
            assert result.attack_id == attack_id
            assert result.implementation == implementation
            assert result.evidence


class TestAttackDetails:
    def test_p1_regenerates_keys(self):
        result = run_attack("P1", "reference")
        assert result.details["keys_regenerated"]

    def test_p2_distinguishes_by_response_type(self):
        result = run_attack("P2", "reference")
        assert "authentication_response" in result.details["victim"]
        assert "auth_mac_failure" in result.details["bystander"]

    def test_p3_exhausts_the_t3450_budget(self):
        result = run_attack("P3", "reference")
        assert result.details["dropped"] == 5     # initial + 4 retx
        assert result.details["aborted"]
        assert result.details["guti_unchanged"]

    def test_i2_sets_attacker_chosen_guti(self):
        result = run_attack("I2", "oai")
        assert result.details["guti"] == "00101-0001-01-deadbeef"

    def test_i4_reaches_registered_without_auth(self):
        result = run_attack("I4", "srsue")
        assert result.details["final_state"] == "EMM_REGISTERED"

    def test_i5_response_is_identity_response(self):
        result = run_attack("I5", "oai")
        assert "identity_response" in result.details["responses"]

    def test_i6_bystander_stays_silent(self):
        result = run_attack("I6", "srsue")
        assert result.details["bystander"] == []
        assert "security_mode_complete" in result.details["victim"]


class TestPriorAttacks:
    @pytest.mark.parametrize("attack_id", [
        a for a in PRIOR_ATTACK_IDS
        if a not in ("PRIOR-linkability-tmsi-realloc",
                     "PRIOR-downgrade-tau-reject")])
    def test_applicable_rows_succeed_everywhere(self, attack_id):
        for implementation in IMPLEMENTATIONS:
            result = run_attack(attack_id, implementation)
            assert result.succeeded, (attack_id, implementation,
                                      result.evidence)

    @pytest.mark.parametrize("attack_id", [
        "PRIOR-linkability-tmsi-realloc", "PRIOR-downgrade-tau-reject"])
    def test_dash_rows_not_applicable(self, attack_id):
        result = run_attack(attack_id, "reference")
        assert not result.succeeded
        assert "not applicable" in result.evidence


class TestApplicabilityFlag:
    """The '-' rows of Table I are structured data now: verdict logic
    keys on ``applicable``, never on the free-form evidence text."""

    @pytest.mark.parametrize("attack_id", [
        "PRIOR-linkability-tmsi-realloc", "PRIOR-downgrade-tau-reject"])
    def test_dash_rows_flagged_not_applicable(self, attack_id):
        result = run_attack(attack_id, "reference")
        assert result.applicable is False

    def test_applicable_rows_default_true(self):
        result = run_attack("P1", "reference")
        assert result.applicable is True

    def test_applicable_round_trips_through_dict(self):
        result = run_attack("PRIOR-downgrade-tau-reject", "srsue")
        from repro.testbed import AttackResult
        restored = AttackResult.from_dict(result.to_dict())
        assert restored.applicable is False
        # legacy payloads without the field default to applicable
        legacy = result.to_dict()
        del legacy["applicable"]
        assert AttackResult.from_dict(legacy).applicable is True

    def test_verdict_keyed_on_flag_not_evidence_text(self):
        """An attack whose evidence merely *mentions* 'not applicable'
        must not be classified as a dash row."""
        from repro.core.engine import _verify_testbed
        from repro.core.report import Verdict
        from repro.properties import ALL_PROPERTIES
        from repro.testbed import attacks as attacks_module

        prop = next(p for p in ALL_PROPERTIES if p.kind == "testbed")

        def fake(implementation):
            return attacks_module.AttackResult(
                prop.testbed_attack, implementation, False,
                "defence held; note: not applicable to 5G SA mode")

        original = attacks_module._REGISTRY[prop.testbed_attack]
        attacks_module._REGISTRY[prop.testbed_attack] = fake
        try:
            result = _verify_testbed(prop, "reference")
        finally:
            attacks_module._REGISTRY[prop.testbed_attack] = original
        assert result.outcome is Verdict.VERIFIED


class TestDropFilterMalformedFrames:
    def test_garbage_passes_through_and_is_counted(self):
        import repro.obs as obs
        from repro.testbed.attacker import DropFilter
        from repro.lte import constants as c

        drop = DropFilter((c.PAGING,), direction="downlink")
        before = obs.metrics().snapshot()["counters"].get(
            "channel.malformed_frames", 0)
        assert drop.intercept("downlink", b"\x00garbage") == b"\x00garbage"
        after = obs.metrics().snapshot()["counters"].get(
            "channel.malformed_frames", 0)
        assert after == before + 1
        assert drop.dropped == []
