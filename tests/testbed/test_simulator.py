"""Testbed simulator and attacker toolkit tests."""

import pytest

from repro.lte import constants as c
from repro.testbed import Attacker, Testbed
from repro.testbed.traces import (simulate_operator_trace,
                                  stale_window_size)


class TestTestbed:
    def test_multi_ue_lab(self):
        testbed = Testbed("reference")
        testbed.add_ue("a")
        testbed.add_ue("b")
        testbed.attach_all()
        for station in testbed.stations.values():
            assert station.ue.emm_state == c.EMM_REGISTERED

    def test_subscribers_distinct(self):
        testbed = Testbed("reference")
        first = testbed.add_ue("a")
        second = testbed.add_ue("b")
        assert first.subscriber.imsi != second.subscriber.imsi
        assert first.subscriber.permanent_key \
            != second.subscriber.permanent_key

    def test_duplicate_name_rejected(self):
        testbed = Testbed("reference")
        testbed.add_ue("a")
        with pytest.raises(ValueError):
            testbed.add_ue("a")

    def test_unknown_implementation_rejected(self):
        with pytest.raises(ValueError):
            Testbed("huawei")

    def test_shared_clock(self):
        testbed = Testbed("reference")
        station = testbed.add_ue("a")
        assert station.mme.clock is testbed.clock


class TestAttacker:
    def test_sniffing_captures_both_directions(self):
        testbed = Testbed("reference")
        testbed.add_ue("victim")
        testbed.attach_all()
        attacker = Attacker(testbed)
        attacker.sniff()
        directions = {direction for _, direction, _ in attacker.captured}
        assert directions == {"uplink", "downlink"}

    def test_captured_frame_by_name_and_index(self):
        testbed = Testbed("reference")
        testbed.add_ue("victim")
        testbed.attach_all()
        attacker = Attacker(testbed)
        frame = attacker.captured_frame(c.AUTHENTICATION_REQUEST)
        assert frame is not None
        assert attacker.captured_frame("no_such_message") is None

    def test_drop_filter_counts(self):
        testbed = Testbed("reference")
        station = testbed.add_ue("victim")
        attacker = Attacker(testbed)
        drop = attacker.install_drop_filter(
            "victim", (c.AUTHENTICATION_REQUEST,))
        station.ue.power_on()
        assert drop.dropped == [c.AUTHENTICATION_REQUEST]
        assert station.ue.emm_state == c.EMM_REGISTERED_INITIATED

    def test_response_frame_windows(self):
        testbed = Testbed("reference")
        testbed.add_ue("victim")
        testbed.attach_all()
        attacker = Attacker(testbed)
        mark = attacker.mark("victim")
        attacker.cut_network("victim")
        attacker.inject_plain_to_ue(
            "victim", c.PAGING,
            {"paging_id": str(testbed.station("victim").ue.current_guti)})
        frame = attacker.response_frame("victim", mark)
        assert frame.labels == [c.SERVICE_REQUEST]


class TestTraces:
    def test_stale_window_matches_paper(self):
        """a = 2**5 = 32 slots accept 31 stale requests."""
        assert stale_window_size(5) == 31

    def test_smaller_array_smaller_window(self):
        assert stale_window_size(3) == 7

    def test_staleness_spans_days(self):
        """'a couple of days old' with a 4-hourly authentication rate."""
        report = simulate_operator_trace(duration_days=21,
                                         mean_interval_hours=4)
        assert report.mean_replayable_days > 2.0
        assert report.max_replayable_days < 21.0

    def test_freshness_limit_shrinks_window(self):
        open_report = simulate_operator_trace(duration_days=14)
        limited = simulate_operator_trace(duration_days=14,
                                          freshness_limit=5)
        assert limited.mean_replayable_days \
            < open_report.mean_replayable_days

    def test_trace_deterministic(self):
        first = simulate_operator_trace(duration_days=7)
        second = simulate_operator_trace(duration_days=7)
        assert [e.time_hours for e in first.events] \
            == [e.time_hours for e in second.events]
