"""CPV secrecy/indistinguishability experiment tests."""

import pytest

from repro.testbed import run_attack

IMPLEMENTATIONS = ("reference", "srsue", "oai")

#: experiments whose property is VERIFIED (violated=False) everywhere
VERIFIED_EVERYWHERE = (
    "SECRECY-permanent-key",
    "SECRECY-session-keys",
    "SECRECY-imsi-guti-attach",
    "GUTI-reattach",
    "ATTACH-replay-indistinguishable",
)


class TestSecrecyExperiments:
    @pytest.mark.parametrize("experiment", VERIFIED_EVERYWHERE)
    def test_verified_on_all_implementations(self, experiment):
        for implementation in IMPLEMENTATIONS:
            result = run_attack(experiment, implementation)
            assert not result.succeeded, (experiment, implementation,
                                          result.evidence)

    def test_permanent_key_evidence_mentions_underivability(self):
        result = run_attack("SECRECY-permanent-key", "reference")
        assert "underivable" in result.evidence

    def test_guti_reattach_uses_temporary_identity(self):
        result = run_attack("GUTI-reattach", "reference")
        assert "GUTI" in result.evidence


class TestDerivedLinkability:
    def test_i5_leak_makes_imsi_observable_only_on_oai(self):
        """The I5 identity leak is the one channel that exposes the IMSI
        post-attach — and only OAI has it."""
        for implementation in IMPLEMENTATIONS:
            result = run_attack("I5", implementation)
            assert result.succeeded == (implementation == "oai")

    def test_p2_and_i6_share_the_response_oracle(self):
        """Both linkability attacks reduce to the response-type oracle
        the CPV equivalence engine formalises."""
        p2 = run_attack("P2", "srsue")
        i6 = run_attack("I6", "srsue")
        assert p2.succeeded and i6.succeeded
        assert p2.details["victim"] != p2.details["bystander"]
        assert i6.details["victim"] != i6.details["bystander"]
