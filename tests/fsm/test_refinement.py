"""Tests for the RQ2 refinement relation, including both Fig. 7 cases."""

from repro.fsm import (DIRECT, FiniteStateMachine, NULL_ACTION, SPLIT,
                       STRICTER_CONDITION, UNMAPPED, check_refinement)


def abstract_machine():
    fsm = FiniteStateMachine(name="LTE", initial_state="ue_deregistered")
    fsm.add_transition("ue_deregistered", "ue_registered_initiated",
                       ("power_on",), ("attach_request",))
    # Fig. 7(i): SMC transition that the refined model constrains further.
    fsm.add_transition("ue_registered_initiated", "ue_registered",
                       ("security_mode_command",),
                       ("security_mode_complete",))
    # Fig. 7(ii): detach transition that the refined model splits.
    fsm.add_transition("ue_dereg_initiated", "ue_deregistered",
                       ("detach_request",), ("detach_accept",))
    return fsm


def refined_machine():
    fsm = FiniteStateMachine(name="Pro", initial_state="ue_deregistered")
    fsm.add_transition("ue_deregistered", "ue_registered_initiated",
                       ("power_on",), ("attach_request",))
    # same endpoints, stricter guard (Fig. 7(i))
    fsm.add_transition("ue_registered_initiated", "ue_registered",
                       ("security_mode_command", "ue_sequence_number=0"),
                       ("security_mode_complete",))
    # split through a new intermediate state (Fig. 7(ii))
    fsm.add_transition("ue_dereg_initiated", "ue_dereg_attach_needed",
                       ("detach_request", "reattach_required=1"),
                       ("detach_accept",))
    fsm.add_transition("ue_dereg_attach_needed", "ue_deregistered",
                       ("internal_cleanup",), (NULL_ACTION,))
    return fsm


class TestRefinementHolds:
    def test_full_refinement(self):
        report = check_refinement(abstract_machine(), refined_machine())
        assert report.is_refinement

    def test_mapping_kinds(self):
        report = check_refinement(abstract_machine(), refined_machine())
        counts = report.mapping_counts()
        assert counts[DIRECT] == 1
        assert counts[STRICTER_CONDITION] == 1
        assert counts[SPLIT] == 1
        assert counts[UNMAPPED] == 0

    def test_stricter_condition_reported(self):
        report = check_refinement(abstract_machine(), refined_machine())
        stricter = [m for m in report.transition_mappings
                    if m.kind == STRICTER_CONDITION]
        assert stricter[0].new_conditions == ("ue_sequence_number=0",)

    def test_new_vocabulary_reported(self):
        report = check_refinement(abstract_machine(), refined_machine())
        assert report.condition_superset
        assert report.action_superset
        assert "ue_sequence_number=0" in report.new_conditions


class TestRefinementFails:
    def test_missing_state_breaks_clause_one(self):
        refined = refined_machine()
        abstract = abstract_machine()
        abstract.add_state("ue_exotic_state")
        report = check_refinement(abstract, refined)
        assert not report.states_ok
        assert "ue_exotic_state" in report.unmapped_states

    def test_missing_transition_is_unmapped(self):
        abstract = abstract_machine()
        abstract.add_transition("ue_registered", "ue_deregistered",
                                ("vanishing_message",), ("gone",))
        report = check_refinement(abstract, refined_machine())
        assert not report.transitions_ok
        unmapped = [m for m in report.transition_mappings
                    if m.kind == UNMAPPED]
        assert unmapped[0].abstract.trigger == "vanishing_message"

    def test_weaker_guard_is_not_refinement(self):
        """A refined transition must keep all abstract conditions."""
        abstract = abstract_machine()
        refined = refined_machine()
        # make the abstract SMC transition carry a condition the refined
        # one lacks
        abstract_weak = FiniteStateMachine(
            name="LTE2", initial_state="ue_deregistered")
        for t in abstract.transitions:
            if t.trigger == "security_mode_command":
                abstract_weak.add_transition(
                    t.source, t.target,
                    t.conditions + ("extra_condition=1",), t.actions)
            else:
                abstract_weak.add_transition(t.source, t.target,
                                             t.conditions, t.actions)
        report = check_refinement(abstract_weak, refined)
        assert not report.transitions_ok


class TestSubstateMapping:
    def test_states_map_to_substates(self):
        abstract = FiniteStateMachine(name="A", initial_state="reg")
        abstract.add_transition("reg", "reg", ("ping",), ("pong",))
        refined = FiniteStateMachine(name="R",
                                     initial_state="reg_sub_normal")
        refined.add_transition("reg_sub_normal", "reg_sub_normal",
                               ("ping", "checked=1"), ("pong",))
        report = check_refinement(
            abstract, refined,
            substate_map={"reg": ("reg_sub_normal", "reg_sub_update")})
        assert report.is_refinement
        assert report.state_mapping["reg"] == {"reg_sub_normal"}
