"""DOT serialisation tests, including a hypothesis round-trip."""

import pytest
from hypothesis import given, strategies as st

from repro.fsm import (FSMError, FiniteStateMachine, from_dot, parse_label,
                       to_dot, transition_label)


def sample_machine():
    fsm = FiniteStateMachine(name="sample", initial_state="S0")
    fsm.add_transition("S0", "S1", ("msg_a", "p=1"), ("act_a",))
    fsm.add_transition("S1", "S0", ("msg_b",), ("act_b", "act_c"))
    return fsm


class TestLabels:
    def test_render_and_parse(self):
        label = transition_label(("m", "p=1"), ("a", "b"))
        assert label == "m & p=1 / a, b"
        conditions, actions = parse_label(label)
        assert conditions == ("m", "p=1")
        assert actions == ("a", "b")

    def test_missing_separator_rejected(self):
        with pytest.raises(FSMError):
            parse_label("just a guard")

    def test_empty_parts_rejected(self):
        with pytest.raises(FSMError):
            parse_label(" / act")


class TestRoundTrip:
    def test_simple_roundtrip(self):
        fsm = sample_machine()
        recovered = from_dot(to_dot(fsm))
        assert recovered.name == fsm.name
        assert recovered.initial_state == fsm.initial_state
        assert recovered.states == fsm.states
        assert set(recovered.transitions) == set(fsm.transitions)

    def test_initial_state_marked(self):
        text = to_dot(sample_machine())
        assert 'shape=doublecircle' in text

    def test_missing_initial_rejected(self):
        with pytest.raises(FSMError):
            from_dot('digraph g {\n"A" [shape=circle];\n}')

    def test_two_initials_rejected(self):
        text = ('digraph g {\n"A" [shape=doublecircle];\n'
                '"B" [shape=doublecircle];\n}')
        with pytest.raises(FSMError):
            from_dot(text)

    def test_garbage_line_rejected(self):
        with pytest.raises(FSMError):
            from_dot('digraph g {\nthis is not dot\n}')

    def test_comments_ignored(self):
        text = to_dot(sample_machine())
        text = text.replace("{", "{\n// a comment\n# another", 1)
        assert from_dot(text).states == sample_machine().states


_NAMES = st.text(alphabet="abcDEF_123", min_size=1, max_size=8)


@st.composite
def machines(draw):
    state_names = draw(st.lists(_NAMES, min_size=1, max_size=5,
                                unique=True))
    fsm = FiniteStateMachine(name=draw(_NAMES),
                             initial_state=state_names[0])
    for state in state_names:
        fsm.add_state(state)
    transitions = draw(st.integers(min_value=0, max_value=8))
    for _ in range(transitions):
        source = draw(st.sampled_from(state_names))
        target = draw(st.sampled_from(state_names))
        conditions = draw(st.lists(_NAMES, min_size=1, max_size=3))
        actions = draw(st.lists(_NAMES, min_size=1, max_size=2))
        fsm.add_transition(source, target, tuple(conditions),
                           tuple(actions))
    return fsm


class TestRoundTripProperty:
    @given(machines())
    def test_roundtrip_preserves_machine(self, fsm):
        recovered = from_dot(to_dot(fsm))
        assert recovered.initial_state == fsm.initial_state
        assert recovered.states == fsm.states
        assert set(recovered.transitions) == set(fsm.transitions)
