"""Tests for the protocol FSM data structures."""

import pytest

from repro.fsm import (FSMError, FiniteStateMachine, NULL_ACTION,
                       Transition)


def attach_fragment():
    fsm = FiniteStateMachine(name="frag", initial_state="DEREG")
    fsm.add_transition("DEREG", "REG_INIT", ("power_on",),
                       ("attach_request",))
    fsm.add_transition("REG_INIT", "REG",
                       ("attach_accept", "mac_valid=1"),
                       ("attach_complete",))
    fsm.add_transition("REG_INIT", "REG_INIT",
                       ("attach_accept", "mac_valid=0"),
                       (NULL_ACTION,))
    return fsm


class TestTransition:
    def test_trigger_and_predicates(self):
        transition = Transition("a", "b", ("msg", "p=1", "q=0"), ("act",))
        assert transition.trigger == "msg"
        assert transition.predicates == ("p=1", "q=0")

    def test_requires_conditions_and_actions(self):
        with pytest.raises(FSMError):
            Transition("a", "b", (), ("act",))
        with pytest.raises(FSMError):
            Transition("a", "b", ("msg",), ())

    def test_with_extra_condition_is_stricter(self):
        transition = Transition("a", "b", ("msg",), ("act",))
        stricter = transition.with_extra_condition("p=1")
        assert stricter.conditions == ("msg", "p=1")
        assert stricter.source == "a" and stricter.target == "b"

    def test_describe(self):
        transition = Transition("a", "b", ("msg", "p=1"), ("act",))
        assert "a --[msg & p=1 / act]--> b" == transition.describe()


class TestMachine:
    def test_states_tracked_from_transitions(self):
        fsm = attach_fragment()
        assert fsm.states == {"DEREG", "REG_INIT", "REG"}

    def test_duplicate_transitions_collapse(self):
        fsm = attach_fragment()
        before = len(fsm)
        fsm.add_transition("DEREG", "REG_INIT", ("power_on",),
                           ("attach_request",))
        assert len(fsm) == before

    def test_five_tuple_views(self):
        fsm = attach_fragment()
        assert "mac_valid=1" in fsm.conditions
        assert "attach_complete" in fsm.actions
        assert fsm.triggers == {"power_on", "attach_accept"}

    def test_queries(self):
        fsm = attach_fragment()
        assert len(fsm.transitions_from("REG_INIT")) == 2
        assert len(fsm.transitions_on("attach_accept")) == 2
        assert fsm.successors("REG_INIT") == {"REG", "REG_INIT"}

    def test_reachability(self):
        fsm = attach_fragment()
        fsm.add_state("ORPHAN")
        assert fsm.reachable_states() == {"DEREG", "REG_INIT", "REG"}
        assert fsm.unreachable_states() == {"ORPHAN"}

    def test_determinism(self):
        fsm = attach_fragment()
        assert fsm.is_deterministic()
        fsm.add_transition("REG_INIT", "DEREG",
                           ("attach_accept", "mac_valid=1"), ("oops",))
        assert not fsm.is_deterministic()
        assert len(fsm.nondeterministic_pairs()) == 1

    def test_paths(self):
        fsm = attach_fragment()
        paths = list(fsm.paths("DEREG", "REG"))
        assert len(paths) == 1
        assert [t.trigger for t in paths[0]] == ["power_on",
                                                 "attach_accept"]

    def test_merge(self):
        first = attach_fragment()
        second = FiniteStateMachine(name="other", initial_state="DEREG")
        second.add_transition("REG", "DEREG", ("detach_request",),
                              ("detach_accept",))
        first.merge(second)
        assert any(t.trigger == "detach_request" for t in first)

    def test_copy_is_independent(self):
        fsm = attach_fragment()
        clone = fsm.copy("clone")
        clone.add_transition("REG", "DEREG", ("x",), ("y",))
        assert len(clone) == len(fsm) + 1

    def test_summary(self):
        summary = attach_fragment().summary()
        assert summary["states"] == 3
        assert summary["transitions"] == 3

    def test_empty_names_rejected(self):
        with pytest.raises(FSMError):
            FiniteStateMachine(name="x", initial_state="")
        fsm = attach_fragment()
        with pytest.raises(FSMError):
            fsm.add_state("")
