"""Tests for FSM structural analyses (missing-test detection, diffs)."""

from repro.fsm import (FiniteStateMachine, NULL_ACTION, condition_histogram,
                       dead_states, diff, guard_strictness, missing_stimuli)


def make_machine():
    fsm = FiniteStateMachine(name="m", initial_state="A")
    fsm.add_transition("A", "B", ("m1", "p=1"), ("a1",))
    fsm.add_transition("B", "A", ("m2",), ("a2",))
    fsm.add_transition("B", "C", ("m1",), (NULL_ACTION,))
    return fsm


class TestMissingStimuli:
    def test_gaps_within_own_alphabet(self):
        gaps = missing_stimuli(make_machine())
        pairs = {(g.state, g.trigger) for g in gaps}
        assert ("A", "m2") in pairs        # A never receives m2
        assert ("C", "m1") in pairs        # C is a sink
        assert ("A", "m1") not in pairs

    def test_gaps_against_full_alphabet(self):
        gaps = missing_stimuli(make_machine(), alphabet={"m1", "m2", "m3"})
        assert any(g.trigger == "m3" for g in gaps)

    def test_suggested_test_case_readable(self):
        gap = missing_stimuli(make_machine())[0]
        assert gap.state in gap.suggested_test_case()


class TestDeadStates:
    def test_sink_detected(self):
        assert dead_states(make_machine()) == {"C"}

    def test_unreachable_not_reported(self):
        fsm = make_machine()
        fsm.add_state("ISLAND")
        assert "ISLAND" not in dead_states(fsm)


class TestDiff:
    def test_identical(self):
        assert diff(make_machine(), make_machine()).identical

    def test_asymmetric_difference(self):
        first = make_machine()
        second = make_machine()
        second.add_transition("C", "A", ("m9",), ("a9",))
        delta = diff(first, second)
        assert not delta.identical
        assert len(delta.only_in_second) == 1
        assert delta.only_in_second[0].trigger == "m9"
        assert len(delta.common) == 3

    def test_state_only_differences(self):
        first = make_machine()
        first.add_state("EXTRA")
        delta = diff(first, make_machine())
        assert delta.states_only_in_first == {"EXTRA"}
        assert delta.states_only_in_second == set()
        assert not delta.identical

    def test_guard_level_difference_is_transition_level(self):
        # Same endpoints, stricter guard: both sides report the
        # transition as unique — conditions are part of identity.
        first = make_machine()
        second = make_machine()
        second.add_transition("A", "B", ("m1", "p=1", "q=1"), ("a1",))
        delta = diff(first, second)
        assert len(delta.only_in_second) == 1
        assert delta.only_in_second[0].predicates == ("p=1", "q=1")

    def test_diff_is_directional(self):
        first = make_machine()
        second = make_machine()
        second.add_transition("C", "A", ("m9",), ("a9",))
        assert diff(first, second).only_in_second \
            == diff(second, first).only_in_first


class TestMetrics:
    def test_condition_histogram(self):
        histogram = condition_histogram(make_machine())
        assert histogram["m1"] == 2
        assert histogram["p=1"] == 1

    def test_guard_strictness(self):
        mean, peak = guard_strictness(make_machine())
        assert peak == 1
        assert 0 < mean < 1

    def test_empty_machine_strictness(self):
        fsm = FiniteStateMachine(name="e", initial_state="A")
        assert guard_strictness(fsm) == (0.0, 0)
