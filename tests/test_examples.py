"""Example scripts stay runnable (they are part of the public surface)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=300, check=False)
    assert completed.returncode == 0, completed.stderr[-2000:]
    return completed.stdout


class TestExamples:
    def test_running_example(self):
        output = run_example("running_example.py")
        assert 'printf("ENTER recv_attach_accept' in output
        assert "attach_accept & mac_valid=1 / attach_complete" in output

    def test_model_comparison(self):
        output = run_example("model_comparison.py")
        assert "Refinement check" in output
        assert "clause 1 (state mapping):      True" in output
        assert "digraph" in output

    def test_linkability_analysis(self):
        output = run_example("linkability_analysis.py")
        assert "LINKABLE" in output
        assert "unlinkable" in output     # I6 on the reference stack

    def test_missing_tests(self):
        output = run_example("missing_tests.py")
        assert "unexercised (state, message) pairs" in output
        assert "only in srsue" in output

    def test_attack_discovery(self):
        output = run_example("attack_discovery.py")
        assert "adv_replay_dl_authentication_request" in output
        assert "P1 on reference: SUCCEEDED" in output

    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "Extracted FSM" in output
        assert "total: 62 properties" in output
