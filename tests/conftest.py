"""Shared fixtures: extracted models and testbed runs are expensive-ish,
so they are produced once per session and reused across test modules."""

import pytest

from repro.baselines import lteinspector_mme, lteinspector_ue
from repro.conformance import full_suite, run_conformance
from repro.extraction import extract_model, table_for_implementation
from repro.lte.implementations import REGISTRY

IMPLEMENTATIONS = ("reference", "srsue", "oai")


@pytest.fixture(scope="session")
def conformance_runs():
    """implementation -> SuiteResult (instrumented full-suite run)."""
    return {impl: run_conformance(impl, full_suite(impl))
            for impl in IMPLEMENTATIONS}


@pytest.fixture(scope="session")
def extracted_models(conformance_runs):
    """implementation -> extracted FSM."""
    models = {}
    for impl, run in conformance_runs.items():
        table = table_for_implementation(REGISTRY[impl])
        fsm, _stats = extract_model(run.log_text, table, name=impl)
        models[impl] = fsm
    return models


@pytest.fixture(scope="session")
def mme_model():
    return lteinspector_mme()


@pytest.fixture(scope="session")
def lte_inspector_ue():
    return lteinspector_ue()
