"""A deliberately privacy-broken UE persona for taint-lint fixtures.

It logs the raw IMSI before any security context exists — the classic
leak the PCL042 rule exists to catch.  Used by
``tests/lint/test_taint.py`` and the CI ``taint-smoke`` job via
``repro lint --taint-impl tests.lint.leaky_impl``; never registered
with the real implementation registry.
"""

from __future__ import annotations

from typing import Optional

from repro.lte.channel import RadioLink
from repro.lte.identifiers import Subscriber
from repro.lte.timers import SimClock
from repro.lte.ue import UeNas, UePolicy


class LeakyUe(UeNas):
    """Reference policy, leaky bookkeeping."""

    def __init__(self, subscriber: Subscriber, link: RadioLink,
                 clock: Optional[SimClock] = None):
        super().__init__(subscriber, link, clock=clock,
                         policy=UePolicy())

    def debug_attach(self) -> None:
        # The leak: permanent identity into the event log, unredacted,
        # before ciphering is ever established.
        self._note("attach_debug", f"attaching as {self.subscriber.imsi}")
