"""Cross-check family (PCL02x): static extraction vs. the dynamic FSM."""

from repro.core import ProChecker
from repro.fsm import FiniteStateMachine
from repro.lint import lint_implementation
from repro.lte import constants as c


def _extract(implementation):
    return ProChecker(implementation).extract()


class TestReferenceImplementation:
    def test_clean(self):
        assert lint_implementation("reference") == []


class TestSeededDeviations:
    def test_srsue_deviations_are_info_not_errors(self):
        findings = lint_implementation("srsue",
                                       reference=_extract("reference"))
        assert findings, "seeded srsUE deviations must surface"
        assert {f.rule for f in findings} == {"PCL022"}
        assert all(not f.severity.gates() for f in findings)

    def test_srsue_equal_sqn_deviation_named(self):
        findings = lint_implementation("srsue",
                                       reference=_extract("reference"))
        messages = " ".join(f.message for f in findings)
        assert "accept_equal_sqn" in messages

    def test_oai_identity_deviation_named(self):
        findings = [f for f in lint_implementation(
            "oai", reference=_extract("reference"))
            if f.rule == "PCL022"]
        messages = " ".join(f.message for f in findings)
        assert "respond_identity_always" in messages


class TestSyntheticMachines:
    def _machine(self, transitions):
        fsm = FiniteStateMachine(name="synthetic",
                                 initial_state=c.EMM_DEREGISTERED)
        for source, target, conditions, actions in transitions:
            fsm.add_transition(source, target, conditions, actions)
        return fsm

    def test_unknown_trigger_is_missing_static_origin(self):
        dynamic = self._machine([
            (c.EMM_DEREGISTERED, c.EMM_DEREGISTERED,
             ("message_from_nowhere",), ("null_action",)),
        ])
        findings = lint_implementation("reference", dynamic=dynamic)
        assert any(f.rule == "PCL021"
                   and "message_from_nowhere" in f.message
                   for f in findings)

    def test_unwritable_target_is_missing_static_origin(self):
        dynamic = self._machine([
            (c.EMM_DEREGISTERED, "EMM_STATE_NO_HANDLER_WRITES",
             (c.ATTACH_ACCEPT,), ("null_action",)),
        ])
        findings = lint_implementation("reference", dynamic=dynamic)
        assert any(f.rule == "PCL021"
                   and "EMM_STATE_NO_HANDLER_WRITES" in f.message
                   for f in findings)

    def test_self_loop_needs_no_state_write(self):
        dynamic = self._machine([
            (c.EMM_DEREGISTERED, c.EMM_DEREGISTERED,
             (c.IDENTITY_REQUEST,), (c.IDENTITY_RESPONSE,)),
        ])
        findings = lint_implementation("reference", dynamic=dynamic)
        assert not [f for f in findings if f.rule == "PCL021"]

    def test_unknown_guard_predicate(self):
        dynamic = self._machine([
            (c.EMM_DEREGISTERED, c.EMM_DEREGISTERED,
             (c.IDENTITY_REQUEST, "made_up_predicate=1"),
             (c.IDENTITY_RESPONSE,)),
        ])
        findings = lint_implementation("reference", dynamic=dynamic)
        assert any(f.rule == "PCL023"
                   and "made_up_predicate" in f.message
                   for f in findings)

    def test_unexercised_handlers_reported(self):
        dynamic = self._machine([
            (c.EMM_DEREGISTERED, c.EMM_DEREGISTERED,
             (c.IDENTITY_REQUEST,), (c.IDENTITY_RESPONSE,)),
        ])
        findings = lint_implementation("reference", dynamic=dynamic)
        never_exercised = {f for f in findings if f.rule == "PCL020"}
        # Every message handler except identity_request lacks coverage
        # in this one-transition machine.
        assert len(never_exercised) >= len(c.DOWNLINK_MESSAGES) - 1
