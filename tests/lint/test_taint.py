"""Taint family (PCL04x): engine, resolution, cross-examination."""

import importlib.util
import sys

from repro.lint import run_lint
from repro.lint.taint import (TAINT_VISIBLE_FLAGS, allocator_findings,
                              cross_examine, lint_external_module,
                              lint_taint, resolve_findings,
                              taint_hss_flows, taint_mme_flows,
                              taint_ue_model)
from repro.properties.expected import NEW_ATTACKS


def _findings(implementation):
    model = taint_ue_model(implementation)
    return resolve_findings(model.flows, model.deviant_flags,
                            implementation), model


class TestReferenceClean:
    def test_reference_has_zero_taint_findings(self):
        findings, _ = _findings("reference")
        assert findings == [], [f.format() for f in findings]

    def test_reference_flows_exist_but_are_sanctioned(self):
        # The engine must *see* the sanctioned flows (IMSI in the
        # initial attach, identity response, SQN resync) and excuse
        # them — an empty flow list would mean the sources are dead,
        # not that the implementation is private.
        _, model = _findings("reference")
        wire = {(f.message, f.field) for f in model.flows
                if f.sink == "wire"}
        assert ("attach_request", "imsi") in wire
        assert ("identity_response", "imsi") in wire

    def test_mme_and_hss_are_clean(self):
        flows = taint_mme_flows() + taint_hss_flows()
        findings = resolve_findings(flows, (), "testbed")
        assert findings == [], [f.format() for f in findings]

    def test_no_key_material_on_any_flow_unprotected(self):
        for impl in ("reference", "srsue", "oai"):
            model = taint_ue_model(impl)
            for flow in model.flows:
                if flow.sink == "wire" and not flow.protected:
                    assert not (flow.labels
                                & {"permanent_key", "kasme", "nas_key"}), \
                        flow.describe()


class TestSeededDeviationReFound:
    def test_oai_i5_identity_exposure(self):
        findings, _ = _findings("oai")
        assert [f.rule for f in findings] == ["PCL043"]
        finding = findings[0]
        assert finding.details["flags"] == "respond_identity_always"
        assert finding.details["attacks"] == "I5"
        assert "identity_response" in finding.message

    def test_srsue_privacy_affecting_flags(self):
        findings, _ = _findings("srsue")
        assert {f.rule for f in findings} == {"PCL043"}
        flags = {f.details["flags"] for f in findings}
        assert flags == {"accept_equal_sqn", "require_auth_after_reject"}
        attacks = {f.details["attacks"] for f in findings}
        assert attacks == {"I3", "I4"}

    def test_findings_are_non_gating(self):
        for impl in ("srsue", "oai"):
            findings, _ = _findings(impl)
            assert all(not f.severity.gates() for f in findings)

    def test_every_taint_visible_deviant_flag_is_named(self):
        # The acceptance contract: each seeded privacy-affecting flag
        # must be re-found statically on the persona that carries it.
        for impl in ("srsue", "oai"):
            findings, model = _findings(impl)
            named = set()
            for finding in findings:
                named.update(finding.details["flags"].split(","))
            expected = set(model.deviant_flags) & TAINT_VISIBLE_FLAGS
            assert named == expected


class TestDeterminism:
    def test_flows_identical_across_runs(self):
        for impl in ("reference", "srsue", "oai"):
            first = taint_ue_model(impl)
            second = taint_ue_model(impl)
            assert first.flows == second.flows
            assert first.deviant_flags == second.deviant_flags

    def test_full_family_identical_across_runs(self):
        impls = ("reference", "srsue", "oai")
        first = lint_taint(impls)
        second = lint_taint(impls)
        assert [f.to_dict() for f in first] == \
            [f.to_dict() for f in second]


class TestAllocatorContract:
    def test_fixed_allocator_is_clean(self):
        assert allocator_findings() == []

    def test_unsalted_allocator_flagged(self, tmp_path):
        source = '''
import hashlib


class GutiAllocator:
    def __init__(self):
        self._counter = 0

    def allocate(self, imsi):
        self._counter += 1
        digest = hashlib.sha256(
            f"{imsi}:{self._counter}".encode()).digest()
        return int.from_bytes(digest[:4], "big")
'''
        path = tmp_path / "bad_allocator.py"
        path.write_text(source)
        spec = importlib.util.spec_from_file_location(
            "bad_allocator", path)
        module = importlib.util.module_from_spec(spec)
        sys.modules["bad_allocator"] = module
        try:
            spec.loader.exec_module(module)
            findings = allocator_findings(module)
        finally:
            del sys.modules["bad_allocator"]
        assert [f.rule for f in findings] == ["PCL044"]
        assert "allocator-secret" in findings[0].message

    def test_guti_unlinkable_across_allocators_without_secret(self):
        # Behavioural side of the contract: two allocators with
        # different seeds map the same IMSI to different M-TMSIs, so
        # observing one allocator's output does not let an attacker
        # confirm identity guesses against another.
        from repro.lte.identifiers import GutiAllocator, Imsi
        imsi = Imsi("001", "01", "000000001")
        a, b = GutiAllocator(seed=0), GutiAllocator(seed=1)
        assert a.allocate(imsi).m_tmsi != b.allocate(imsi).m_tmsi

    def test_allocation_still_deterministic(self):
        from repro.lte.identifiers import GutiAllocator, Imsi
        imsi = Imsi("001", "01", "000000001")
        assert (GutiAllocator(seed=7).allocate(imsi)
                == GutiAllocator(seed=7).allocate(imsi))


class TestCrossExamination:
    def test_seed_tree_has_no_blind_spots(self):
        for impl in ("reference", "srsue", "oai"):
            findings, model = _findings(impl)
            blind = cross_examine(impl, findings, model.deviant_flags)
            assert blind == [], [f.format() for f in blind]

    def test_static_only_disagreement_flagged(self):
        # Static finds the I5 flow, but the dynamic matrix claims I5
        # is undetected on this implementation → instrumentation gap.
        findings, model = _findings("oai")
        expected = {"I5": {"oai": False}}
        blind = cross_examine("oai", findings, model.deviant_flags,
                              expected=expected)
        assert [f.rule for f in blind] == ["PCL045"]
        assert blind[0].details["direction"] == "static-only"
        assert blind[0].details["flag"] == "respond_identity_always"

    def test_dynamic_only_disagreement_flagged(self):
        # Dynamic detects I5 on oai but static found nothing → the
        # taint catalogs have a gap.
        blind = cross_examine("oai", [], ("respond_identity_always",),
                              expected={"I5": {"oai": True}})
        assert [f.rule for f in blind] == ["PCL045"]
        assert blind[0].details["direction"] == "dynamic-only"

    def test_agreement_is_silent(self):
        findings, model = _findings("srsue")
        blind = cross_examine("srsue", findings, model.deviant_flags,
                              expected=NEW_ATTACKS)
        assert blind == []


class TestExternalPersonaAudit:
    def test_leaky_persona_flagged_before_it_runs(self):
        findings = lint_external_module("tests.lint.leaky_impl")
        assert "PCL042" in {f.rule for f in findings}
        leak = next(f for f in findings if f.rule == "PCL042")
        assert "imsi" in leak.message
        assert leak.severity.gates()

    def test_unknown_module_rejected(self):
        import pytest

        from repro.lint import LintError
        with pytest.raises(LintError):
            lint_external_module("tests.lint.does_not_exist")

    def test_module_without_ue_subclass_rejected(self):
        import pytest

        from repro.lint import LintError
        with pytest.raises(LintError):
            lint_external_module("tests.lint.test_findings")


class TestRunnerIntegration:
    def test_taint_family_reported(self):
        report = run_lint(run_xcheck=False)
        assert "taint" in report.families
        rules = {f.rule for f in report.findings}
        assert "PCL043" in rules

    def test_taint_family_skippable(self):
        report = run_lint(run_xcheck=False, run_taint=False)
        assert "taint" not in report.families
        assert not any(f.rule.startswith("PCL04")
                       for f in report.findings)

    def test_seed_tree_gates_only_on_known_baseline(self):
        from repro.lint import default_baseline_path
        report = run_lint(run_xcheck=False,
                          baseline_path=default_baseline_path())
        taint_gating = [f for f in report.gating
                        if f.rule.startswith("PCL04")]
        assert taint_gating == [], [f.format() for f in taint_gating]
