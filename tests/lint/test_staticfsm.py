"""Static transition extraction from the NAS-layer source (AST walk)."""

from repro.lint import static_mme_handlers, static_ue_model
from repro.lte import constants as c


class TestReferenceModel:
    def setup_method(self):
        self.model = static_ue_model("reference")

    def test_all_downlink_messages_have_handlers(self):
        message_triggers = {h.trigger for h in self.model.handlers
                            if h.kind == "message"}
        assert message_triggers == set(c.DOWNLINK_MESSAGES)

    def test_internal_triggers_have_handlers(self):
        internal = {h.trigger for h in self.model.handlers
                    if h.kind == "internal"}
        assert "internal_power_on" in internal
        assert "internal_detach" in internal

    def test_all_handlers_mapped(self):
        assert all(h.mapped for h in self.model.handlers)

    def test_reference_has_no_deviant_flags(self):
        assert self.model.deviant_flags == ()

    def test_attach_accept_writes_registered(self):
        handler = self.model.by_trigger()[c.ATTACH_ACCEPT]
        assert c.EMM_REGISTERED in handler.states_written

    def test_attach_accept_sends_complete(self):
        handler = self.model.by_trigger()[c.ATTACH_ACCEPT]
        assert c.ATTACH_COMPLETE in handler.actions

    def test_dispatch_alias_resolved_to_canonical_message(self):
        # _recv_tau_accept_impl handles tracking_area_update_accept; the
        # trigger must be the canonical message name, not the method
        # fragment.
        assert c.TAU_ACCEPT in self.model.by_trigger()
        assert "tau_accept" not in self.model.by_trigger()

    def test_policy_flags_propagate_through_helpers(self):
        # _gate_protected -> _check_dl_count reads enforce_dl_count;
        # every protected-message handler must inherit it transitively.
        handler = self.model.by_trigger()[c.EMM_INFORMATION]
        assert "enforce_dl_count" in handler.policy_flags


class TestSeededImplementations:
    def test_srsue_deviant_flags(self):
        flags = set(static_ue_model("srsue").deviant_flags)
        assert {"accept_equal_sqn", "enforce_dl_count",
                "require_auth_after_reject"} <= flags

    def test_oai_deviant_flags(self):
        flags = set(static_ue_model("oai").deviant_flags)
        assert {"replay_accept_last_only", "accept_plain_after_ctx",
                "respond_identity_always"} <= flags


class TestMmeHandlers:
    def test_uplink_coverage(self):
        triggers = {h.trigger for h in static_mme_handlers()}
        assert triggers <= set(c.UPLINK_MESSAGES)
        assert c.ATTACH_REQUEST in triggers

    def test_handlers_carry_actions(self):
        by_trigger = {h.trigger: h for h in static_mme_handlers()}
        assert by_trigger[c.ATTACH_REQUEST].actions
