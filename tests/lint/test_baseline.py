"""Baseline suppression file: write/load/apply round trips."""

import json

import pytest

from repro.lint import Baseline, Finding, LintError


def _finding(message="msg", rule="PCL013"):
    return Finding(rule, "catalog::SEC-01", message)


class TestRoundTrip:
    def test_write_then_load_suppresses(self, tmp_path):
        path = tmp_path / "baseline.json"
        accepted = _finding("accepted")
        Baseline.write(path, [accepted])
        baseline = Baseline.load(path)
        kept, suppressed = baseline.apply([accepted, _finding("new")])
        assert [f.message for f in suppressed] == ["accepted"]
        assert [f.message for f in kept] == ["new"]

    def test_write_deduplicates(self, tmp_path):
        path = tmp_path / "baseline.json"
        count = Baseline.write(path, [_finding(), _finding()])
        assert count == 1

    def test_missing_file_is_empty_baseline(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert len(baseline) == 0
        assert _finding() not in baseline


class TestValidation:
    def test_unreadable_json_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(LintError):
            Baseline.load(path)

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "suppressions": []}))
        with pytest.raises(LintError):
            Baseline.load(path)

    def test_wrong_shape_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(["just", "a", "list"]))
        with pytest.raises(LintError):
            Baseline.load(path)


class TestFingerprintStability:
    """Fingerprints must survive the edits baselines exist to absorb."""

    def test_unrelated_line_insertion_keeps_fingerprint(self):
        # The same finding, shifted by an edit above it: only the
        # advisory line number changes, never the identity.
        before = Finding("PCL030", "repro/serve.py::worker",
                         "parameter 'jobs' has a mutable default", line=40)
        after = Finding("PCL030", "repro/serve.py::worker",
                        "parameter 'jobs' has a mutable default", line=55)
        assert before.fingerprint() == after.fingerprint()

    def test_line_insertion_survives_baseline_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        before = Finding("PCL032", "repro/fuzz.py::drain",
                         "except handler swallows the exception", line=10)
        Baseline.write(path, [before])
        after = Finding("PCL032", "repro/fuzz.py::drain",
                        "except handler swallows the exception", line=99)
        kept, suppressed = Baseline.load(path).apply([after])
        assert kept == [] and suppressed == [after]

    def test_file_move_changes_fingerprint(self, tmp_path):
        # A move *should* invalidate the entry: the location anchor is
        # part of the identity, so stale suppressions don't silently
        # follow code into a new home.
        path = tmp_path / "baseline.json"
        original = Finding("PCL030", "repro/old.py::f", "mutable default")
        Baseline.write(path, [original])
        moved = Finding("PCL030", "repro/new.py::f", "mutable default")
        kept, suppressed = Baseline.load(path).apply([moved])
        assert suppressed == [] and kept == [moved]

    def test_object_anchored_location_survives_file_shuffle(self,
                                                           tmp_path):
        # Taint/xcheck findings anchor to implementation::object, not a
        # path, so moving source files around does not touch them.
        path = tmp_path / "baseline.json"
        finding = Finding(
            "PCL042", "oai::repro.lte.ue::UeNas.power_on",
            "permanent identity (imsi) reaches the event log", line=3)
        Baseline.write(path, [finding])
        relined = Finding(
            "PCL042", "oai::repro.lte.ue::UeNas.power_on",
            "permanent identity (imsi) reaches the event log", line=300)
        kept, suppressed = Baseline.load(path).apply([relined])
        assert kept == [] and suppressed == [relined]

    def test_pcl04x_round_trips_through_baseline(self, tmp_path):
        from repro.lint.taint import resolve_findings, taint_ue_model

        path = tmp_path / "baseline.json"
        model = taint_ue_model("oai")
        findings = resolve_findings(model.flows, model.deviant_flags,
                                    "oai")
        assert findings, "expected at least one PCL04x finding"
        count = Baseline.write(path, findings)
        assert count == len({f.fingerprint() for f in findings})
        kept, suppressed = Baseline.load(path).apply(findings)
        assert kept == []
        assert {f.fingerprint() for f in suppressed} == \
            {f.fingerprint() for f in findings}


class TestCheckedInBaseline:
    def test_repo_baseline_loads(self):
        from repro.lint import default_baseline_path
        baseline = Baseline.load(default_baseline_path())
        # The adopted debt: 3 intentional catalog cross-listings plus
        # one known conformance-suite coverage gap.
        assert len(baseline) >= 4
