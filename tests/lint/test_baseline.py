"""Baseline suppression file: write/load/apply round trips."""

import json

import pytest

from repro.lint import Baseline, Finding, LintError


def _finding(message="msg", rule="PCL013"):
    return Finding(rule, "catalog::SEC-01", message)


class TestRoundTrip:
    def test_write_then_load_suppresses(self, tmp_path):
        path = tmp_path / "baseline.json"
        accepted = _finding("accepted")
        Baseline.write(path, [accepted])
        baseline = Baseline.load(path)
        kept, suppressed = baseline.apply([accepted, _finding("new")])
        assert [f.message for f in suppressed] == ["accepted"]
        assert [f.message for f in kept] == ["new"]

    def test_write_deduplicates(self, tmp_path):
        path = tmp_path / "baseline.json"
        count = Baseline.write(path, [_finding(), _finding()])
        assert count == 1

    def test_missing_file_is_empty_baseline(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert len(baseline) == 0
        assert _finding() not in baseline


class TestValidation:
    def test_unreadable_json_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(LintError):
            Baseline.load(path)

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "suppressions": []}))
        with pytest.raises(LintError):
            Baseline.load(path)

    def test_wrong_shape_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(["just", "a", "list"]))
        with pytest.raises(LintError):
            Baseline.load(path)


class TestCheckedInBaseline:
    def test_repo_baseline_loads(self):
        from repro.lint import default_baseline_path
        baseline = Baseline.load(default_baseline_path())
        # The adopted debt: 3 intentional catalog cross-listings plus
        # one known conformance-suite coverage gap.
        assert len(baseline) >= 4
