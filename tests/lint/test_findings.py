"""Findings model: rule registry, fingerprints, report semantics."""

import pytest

from repro.lint import Finding, LintError, LintReport, RULES, Severity
from repro.lint.findings import sort_findings


class TestRules:
    def test_registry_covers_all_families(self):
        families = {rule.family for rule in RULES.values()}
        assert families == {"spec", "xcheck", "hygiene", "taint"}

    def test_identifiers_match_family_numbering(self):
        for identifier, rule in RULES.items():
            assert identifier.startswith("PCL0")
            digit = identifier[4]
            assert {"1": "spec", "2": "xcheck", "3": "hygiene",
                    "4": "taint"}[digit] == rule.family

    def test_unknown_rule_rejected(self):
        with pytest.raises(LintError):
            Finding("PCL999", "somewhere", "nonsense")


class TestSeverity:
    def test_gating(self):
        assert Severity.ERROR.gates()
        assert Severity.WARNING.gates()
        assert not Severity.INFO.gates()

    def test_rank_order(self):
        assert (Severity.ERROR.rank > Severity.WARNING.rank
                > Severity.INFO.rank)


class TestFingerprint:
    def test_line_number_excluded(self):
        first = Finding("PCL030", "a.py::f", "mutable default", line=10)
        second = Finding("PCL030", "a.py::f", "mutable default", line=99)
        assert first.fingerprint() == second.fingerprint()

    def test_message_included(self):
        first = Finding("PCL030", "a.py::f", "one thing")
        second = Finding("PCL030", "a.py::f", "another thing")
        assert first.fingerprint() != second.fingerprint()

    def test_prefix_is_rule_and_location(self):
        finding = Finding("PCL011", "catalog::SEC-01", "boom")
        assert finding.fingerprint().startswith("PCL011:catalog::SEC-01:")


class TestReport:
    def _finding(self, rule="PCL011"):
        return Finding(rule, "loc", "msg")

    def test_info_does_not_gate(self):
        report = LintReport(findings=[self._finding("PCL022")])
        assert not report.gating
        assert report.to_dict()["clean"] is True

    def test_warning_gates(self):
        report = LintReport(findings=[self._finding("PCL013")])
        assert report.gating
        assert report.to_dict()["clean"] is False

    def test_counts(self):
        report = LintReport(
            findings=[self._finding("PCL011"), self._finding("PCL022")],
            suppressed=[self._finding("PCL013")])
        assert report.counts() == {"error": 1, "warning": 0, "info": 1,
                                   "suppressed": 1}

    def test_sort_severity_major(self):
        ordered = sort_findings([self._finding("PCL022"),
                                 self._finding("PCL013"),
                                 self._finding("PCL011")])
        assert [f.rule for f in ordered] == ["PCL011", "PCL013", "PCL022"]

    def test_format_text_mentions_counts(self):
        report = LintReport(findings=[self._finding("PCL011")])
        assert "1 error(s)" in report.format_text()
