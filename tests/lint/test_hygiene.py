"""Hygiene family (PCL03x) on fixture trees and the real source."""

import textwrap

import pytest

from repro.lint import LintError, lint_source


def _lint_snippet(tmp_path, source):
    (tmp_path / "module.py").write_text(textwrap.dedent(source))
    return lint_source(root=tmp_path, display_root=tmp_path)


class TestMutableDefault:
    def test_literal_default_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def f(items=[]):
                return items
        """)
        assert [f.rule for f in findings] == ["PCL030"]
        assert "items" in findings[0].message

    def test_constructor_default_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def f(cache=dict()):
                return cache
        """)
        assert [f.rule for f in findings] == ["PCL030"]

    def test_keyword_only_default_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def f(*, extras={}):
                return extras
        """)
        assert [f.rule for f in findings] == ["PCL030"]

    def test_none_default_not_flagged_as_mutable(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            from typing import Optional, Set

            def f(items: Optional[Set[str]] = None):
                return items
        """)
        assert findings == []

    def test_positional_only_default_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def f(items=[], /):
                return items
        """)
        assert [f.rule for f in findings] == ["PCL030"]
        assert "items" in findings[0].message

    def test_positional_only_immutable_default_clean(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def f(limit=10, /):
                return limit
        """)
        assert findings == []

    def test_keyword_only_immutable_default_clean(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def f(*, limit=10):
                return limit
        """)
        assert findings == []

    def test_lambda_mutable_default_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            handler = lambda payload, seen=[]: seen.append(payload)
        """)
        assert [f.rule for f in findings] == ["PCL030"]
        assert findings[0].location.endswith("::<lambda>")
        assert "seen" in findings[0].message

    def test_lambda_keyword_only_mutable_default_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            handler = lambda payload, *, cache={}: cache
        """)
        assert [f.rule for f in findings] == ["PCL030"]

    def test_lambda_immutable_default_clean(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            scale = lambda value, factor=2: value * factor
        """)
        assert findings == []


class TestNonOptionalNoneDefault:
    def test_bare_container_annotation_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            from typing import Set

            def f(alphabet: Set[str] = None):
                return alphabet
        """)
        assert [f.rule for f in findings] == ["PCL031"]
        assert "alphabet" in findings[0].message

    def test_union_none_annotation_allowed(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def f(alphabet: "set[str] | None" = None):
                return alphabet
        """)
        assert findings == []

    def test_unannotated_none_default_allowed(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def f(alphabet=None):
                return alphabet
        """)
        assert findings == []

    def test_keyword_only_none_default_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            from typing import Set

            def f(*, alphabet: Set[str] = None):
                return alphabet
        """)
        assert [f.rule for f in findings] == ["PCL031"]

    def test_positional_only_none_default_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            from typing import Set

            def f(alphabet: Set[str] = None, /):
                return alphabet
        """)
        assert [f.rule for f in findings] == ["PCL031"]

    def test_lambda_none_default_allowed(self, tmp_path):
        # Lambdas cannot annotate parameters, so a None default never
        # contradicts anything.
        findings = _lint_snippet(tmp_path, """
            pick = lambda xs, fallback=None: xs[0] if xs else fallback
        """)
        assert findings == []


class TestSwallowedExcept:
    def test_bare_pass_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def f():
                try:
                    risky()
                except Exception:
                    pass
        """)
        assert [f.rule for f in findings] == ["PCL032"]

    def test_continue_in_loop_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def f(xs):
                for x in xs:
                    try:
                        risky(x)
                    except ValueError:
                        continue
        """)
        assert [f.rule for f in findings] == ["PCL032"]

    def test_obs_count_not_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def f(xs):
                for x in xs:
                    try:
                        risky(x)
                    except ValueError:
                        obs.count("channel.malformed_frames")
                        continue
        """)
        assert findings == []

    def test_reraise_not_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def f():
                try:
                    risky()
                except ValueError:
                    raise
        """)
        assert findings == []

    def test_arbitrary_call_no_longer_pacifies(self, tmp_path):
        # The loophole that once let a serve worker loop escape the
        # gate: any ast.Call used to count as "handling" the failure.
        findings = _lint_snippet(tmp_path, """
            def loop(self):
                while True:
                    try:
                        self._run_job()
                    except Exception:
                        self._queue.get()
        """)
        assert [f.rule for f in findings] == ["PCL032"]

    def test_side_effect_call_without_record_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def f():
                try:
                    risky()
                except OSError:
                    time.sleep(1)
        """)
        assert [f.rule for f in findings] == ["PCL032"]

    def test_logging_call_not_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def f():
                try:
                    risky()
                except OSError:
                    logger.warning("risky failed")
        """)
        assert findings == []

    def test_fallback_assignment_not_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def f():
                try:
                    value = risky()
                except ValueError:
                    value = None
                return value
        """)
        assert findings == []

    def test_sentinel_append_not_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def f(xs):
                failures = []
                for x in xs:
                    try:
                        risky(x)
                    except ValueError:
                        failures.append((x, "crash"))
                return failures
        """)
        assert findings == []

    def test_reading_bound_exception_not_flagged(self, tmp_path):
        findings = _lint_snippet(tmp_path, """
            def f():
                try:
                    risky()
                except OSError as exc:
                    try:
                        detail = describe(exc)
                    except ValueError:
                        detail = exc.reason
                return detail
        """)
        assert findings == []


class TestRealTree:
    def test_seed_source_is_clean(self):
        assert lint_source() == [], [
            f.format() for f in lint_source()]

    def test_unparseable_file_raises(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        with pytest.raises(LintError):
            lint_source(root=tmp_path)
