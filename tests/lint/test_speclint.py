"""Spec-lint family (PCL01x) over the real catalog and seeded mutants."""

from repro.lint import lint_catalog
from repro.properties import ALL_PROPERTIES

from . import bad_catalog


def _by_identifier(findings, identifier):
    return [f for f in findings if f.location.endswith(f"::{identifier}")]


class TestSeedCatalog:
    def test_no_errors_on_seed_catalog(self):
        findings = lint_catalog()
        assert not [f for f in findings
                    if f.severity.value == "error"], [
            f.format() for f in findings]

    def test_known_duplicates_are_the_only_findings(self):
        # Three properties are intentional security/privacy
        # cross-listings; they are baselined, not silenced.
        findings = lint_catalog()
        assert {f.rule for f in findings} <= {"PCL013"}

    def test_every_ltl_formula_instantiates_both_vocabularies(self):
        from repro.properties.spec import (EXTRACTED_VOCAB,
                                           LTEINSPECTOR_VOCAB)
        for prop in ALL_PROPERTIES:
            if prop.kind == "ltl":
                prop.formula_for(EXTRACTED_VOCAB)
                prop.formula_for(LTEINSPECTOR_VOCAB)


class TestMutatedCatalog:
    def setup_method(self):
        self.findings = lint_catalog(bad_catalog.ALL_PROPERTIES,
                                     origin="tests.lint.bad_catalog")

    def test_each_mutant_trips_its_rule(self):
        for identifier, rule in bad_catalog.EXPECTED_RULES.items():
            mine = _by_identifier(self.findings, identifier)
            assert rule in {f.rule for f in mine}, (
                f"{identifier}: expected {rule}, got "
                f"{[f.format() for f in mine]}")

    def test_no_spurious_findings_on_clean_mutant_fields(self):
        # BAD-DUP-A is clean (its twin carries the duplicate finding).
        assert not _by_identifier(self.findings, "BAD-DUP-A")

    def test_undefined_atom_names_the_variable(self):
        finding = _by_identifier(self.findings, "BAD-UNDEF-ATOM")[0]
        assert "bogus_variable" in finding.message

    def test_enum_typo_shows_the_domain(self):
        mine = _by_identifier(self.findings, "BAD-ENUM-TYPO")
        typo = [f for f in mine if f.rule == "PCL012"][0]
        assert "attach_acept" in typo.message

    def test_vacuous_implication_detected_under_both_vocabularies(self):
        mine = [f for f in _by_identifier(self.findings, "BAD-VACUOUS")
                if f.rule == "PCL014"]
        messages = " ".join(f.message for f in mine)
        assert "extracted" in messages and "lteinspector" in messages

    def test_findings_gate(self):
        assert any(f.severity.gates() for f in self.findings)
