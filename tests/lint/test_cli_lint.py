"""``repro lint`` CLI: exit codes, JSON output, baseline flags."""

import json

from repro.cli import EXIT_CODES, LINT_FINDINGS_EXIT_CODE, main


class TestExitCodeRegistry:
    def test_lint_code_registered(self):
        assert EXIT_CODES["lint_findings"] == LINT_FINDINGS_EXIT_CODE

    def test_lint_code_distinct_from_verdict_codes(self):
        verdict_codes = {code for key, code in EXIT_CODES.items()
                         if key != "lint_findings"}
        assert LINT_FINDINGS_EXIT_CODE not in verdict_codes


class TestSeedTree:
    def test_clean_with_baseline(self, capsys):
        status = main(["lint", "--no-xcheck", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert status == 0
        assert payload["clean"] is True
        assert payload["counts"]["suppressed"] >= 3

    def test_gates_without_baseline(self, capsys):
        # The three intentional catalog duplicates gate once the
        # baseline is ignored; the taint family contributes only
        # non-gating PCL043 deviation re-finds.
        status = main(["lint", "--no-xcheck", "--no-baseline", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert status == LINT_FINDINGS_EXIT_CODE
        gating = {f["rule"] for f in payload["findings"]
                  if f["severity"] in ("error", "warning")}
        assert gating == {"PCL013"}
        assert "PCL043" in {f["rule"] for f in payload["findings"]}

    def test_text_output_lists_counts(self, capsys):
        status = main(["lint", "--no-xcheck"])
        out = capsys.readouterr().out
        assert status == 0
        assert "error(s)" in out


class TestTaintFlags:
    def test_no_taint_removes_family(self, capsys):
        status = main(["lint", "--no-xcheck", "--no-taint", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert status == 0
        assert "taint" not in payload["families"]
        assert not any(f["rule"].startswith("PCL04")
                       for f in payload["findings"])

    def test_taint_default_on(self, capsys):
        status = main(["lint", "--no-xcheck", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert status == 0
        assert "taint" in payload["families"]

    def test_leaky_persona_gates_with_exit_5(self, capsys):
        status = main(["lint", "--no-xcheck", "--json",
                       "--taint-impl", "tests.lint.leaky_impl"])
        payload = json.loads(capsys.readouterr().out)
        assert status == LINT_FINDINGS_EXIT_CODE
        leaks = [f for f in payload["findings"]
                 if f["rule"] == "PCL042"]
        assert leaks and "imsi" in leaks[0]["message"]

    def test_bad_taint_module_is_an_error(self, capsys):
        status = main(["lint", "--no-xcheck",
                       "--taint-impl", "tests.lint.no_such_module"])
        assert status == 2
        assert "lint failed" in capsys.readouterr().err

    def test_rules_table(self, capsys):
        status = main(["lint", "--rules"])
        out = capsys.readouterr().out
        assert status == 0
        for rule_id in ("PCL010", "PCL022", "PCL030", "PCL040",
                        "PCL045"):
            assert rule_id in out

    def test_rules_table_json(self, capsys):
        status = main(["lint", "--rules", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert status == 0
        ids = {r["id"] for r in payload["rules"]}
        assert {"PCL040", "PCL041", "PCL042", "PCL043", "PCL044",
                "PCL045"} <= ids


class TestMutatedCatalog:
    def test_mutations_detected_with_rule_ids(self, capsys):
        status = main(["lint", "--no-xcheck", "--no-baseline", "--json",
                       "--catalog", "tests.lint.bad_catalog"])
        payload = json.loads(capsys.readouterr().out)
        assert status == LINT_FINDINGS_EXIT_CODE
        rules = {f["rule"] for f in payload["findings"]}
        assert {"PCL011", "PCL012", "PCL014", "PCL015",
                "PCL016", "PCL013"} <= rules

    def test_bad_catalog_module_is_an_error(self, capsys):
        status = main(["lint", "--no-xcheck",
                       "--catalog", "tests.lint.no_such_module"])
        assert status == 2
        assert "lint failed" in capsys.readouterr().err


class TestBaselineWorkflow:
    def test_write_baseline_then_clean(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        status = main(["lint", "--no-xcheck", "--write-baseline",
                       "--baseline", str(baseline),
                       "--catalog", "tests.lint.bad_catalog"])
        assert status == 0
        assert baseline.exists()
        capsys.readouterr()
        status = main(["lint", "--no-xcheck", "--json",
                       "--baseline", str(baseline),
                       "--catalog", "tests.lint.bad_catalog"])
        payload = json.loads(capsys.readouterr().out)
        assert status == 0
        assert payload["clean"] is True
        assert payload["counts"]["suppressed"] > 0
