"""A deliberately broken property catalog for lint tests and CI.

Each property here seeds exactly one defect class; the CI mutation smoke
check runs ``repro lint --catalog tests.lint.bad_catalog`` and asserts a
non-zero exit.
"""

from repro.properties.spec import Property
from repro.threat import ThreatConfig

#: Which gating rule each mutant must trip (used by the tests).
EXPECTED_RULES = {
    "BAD-UNDEF-ATOM": "PCL011",
    "BAD-ENUM-TYPO": "PCL012",
    "BAD-VACUOUS": "PCL014",
    "BAD-THREAT-MSG": "PCL015",
    "BAD-TESTBED": "PCL016",
    "BAD-DUP-B": "PCL013",
}

ALL_PROPERTIES = [
    Property("BAD-UNDEF-ATOM", "security", "ltl",
             "references a variable the threat model never declares",
             formula="G (bogus_variable = 1 -> "
                     "X (chan_ul != attach_complete))"),
    Property("BAD-ENUM-TYPO", "security", "ltl",
             "compares chan_dl against a misspelled message name",
             formula="G (turn = ue & chan_dl = attach_acept -> "
                     "X (chan_ul != attach_complete))"),
    Property("BAD-VACUOUS", "security", "ltl",
             "antecedent requires two different states at once",
             formula="G (ue_state = $ue_registered & "
                     "ue_state = $ue_deregistered -> "
                     "X (chan_ul != attach_complete))"),
    Property("BAD-THREAT-MSG", "security", "ltl",
             "threat config injects a message that does not exist",
             formula="G (turn = ue -> X (chan_ul != attach_complete))",
             threat=ThreatConfig(inject_dl=("totally_made_up_message",))),
    Property("BAD-TESTBED", "privacy", "testbed",
             "names an experiment no registered attack implements",
             testbed_attack="NO-SUCH-EXPERIMENT"),
    Property("BAD-DUP-A", "security", "ltl",
             "first copy of a duplicated property",
             formula="G (turn = ue & dl_plain = 1 -> "
                     "X (chan_ul != attach_complete))"),
    Property("BAD-DUP-B", "security", "ltl",
             "identical formula and threat config to BAD-DUP-A",
             formula="G (turn = ue & dl_plain = 1 -> "
                     "X (chan_ul != attach_complete))"),
]
