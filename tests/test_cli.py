"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_commands_registered(self):
        parser = build_parser()
        for command in ("analyze", "extract", "verify", "attack", "gaps",
                        "serve"):
            args = {
                "analyze": ["analyze", "srsue"],
                "extract": ["extract", "srsue"],
                "verify": ["verify", "srsue", "SEC-01"],
                "attack": ["attack", "P1", "srsue"],
                "gaps": ["gaps", "srsue"],
                "serve": ["serve", "--port", "0", "--workers", "1"],
            }[command]
            namespace = parser.parse_args(args)
            assert namespace.command == command

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.workers == 2
        assert args.jobs == 1
        assert args.store_dir == ".repro-store"
        assert args.journal is None
        assert args.max_queue is None
        assert args.deadline is None
        assert args.drain_grace == 30.0

    def test_serve_rejects_bad_resilience_flags(self, capsys):
        # Each of these must fail validation (exit 2) before the
        # blocking serve loop ever starts.
        assert main(["serve", "--max-queue", "0"]) == 2
        assert "--max-queue" in capsys.readouterr().err
        assert main(["serve", "--deadline", "0"]) == 2
        assert "--deadline" in capsys.readouterr().err
        assert main(["serve", "--inject-fault", "nonsense"]) == 2
        assert "--inject-fault" in capsys.readouterr().err

    def test_serve_bad_fault_spec_leaves_no_plan_installed(self):
        from repro import faults
        assert main(["serve", "--inject-fault", ":::"]) == 2
        assert faults.installed() is None

    def test_bad_implementation_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "huawei"])


class TestCommands:
    def test_extract_prints_fsm(self, capsys):
        assert main(["extract", "srsue"]) == 0
        output = capsys.readouterr().out
        assert "states" in output
        assert "EMM_DEREGISTERED" in output

    def test_extract_writes_dot(self, tmp_path, capsys):
        target = tmp_path / "model.dot"
        assert main(["extract", "oai", "--dot", str(target)]) == 0
        text = target.read_text()
        assert text.startswith("digraph")
        from repro.fsm import from_dot
        fsm = from_dot(text)
        assert len(fsm.transitions) > 20

    def test_verify_verified_property_exits_zero(self, capsys):
        assert main(["verify", "reference", "SEC-37", "--quiet"]) == 0
        assert "verified" in capsys.readouterr().out

    def test_verify_violated_property_exits_one(self, capsys):
        assert main(["verify", "srsue", "SEC-02", "--quiet"]) == 1
        assert "violated" in capsys.readouterr().out

    def test_verify_unknown_property(self, capsys):
        assert main(["verify", "srsue", "SEC-999"]) == 2

    def test_attack_exit_codes(self, capsys):
        assert main(["attack", "I3", "srsue"]) == 1      # vulnerable
        assert main(["attack", "I3", "oai"]) == 0        # safe

    def test_attack_unknown(self, capsys):
        assert main(["attack", "P99", "srsue"]) == 2

    def test_gaps_lists_candidates(self, capsys):
        assert main(["gaps", "reference", "--limit", "2"]) == 0
        output = capsys.readouterr().out
        assert "candidate missing test cases" in output
        assert "drive the implementation" in output

    def test_gaps_json_is_versioned(self, capsys):
        import json
        from repro import schema
        assert main(["gaps", "reference", "--json", "--limit", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[schema.SCHEMA_KEY] == schema.SCHEMA_VERSION
        assert len(payload["gaps"]) == 2
        assert payload["total"] >= 2
        assert {"state", "trigger",
                "suggested_test_case"} <= set(payload["gaps"][0])

    def test_smv_json_is_versioned(self, capsys):
        import json
        from repro import schema
        assert main(["smv", "reference", "SEC-01", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[schema.SCHEMA_KEY] == schema.SCHEMA_VERSION
        assert payload["property"] == "SEC-01"
        assert "MODULE" in payload["smv"]

    def test_report_json_is_versioned_dossier(self, capsys):
        import json
        from repro import schema
        assert main(["report", "srsue", "--json", "--no-testbed",
                     "--jobs", "1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[schema.SCHEMA_KEY] == schema.SCHEMA_VERSION
        assert payload["implementation"] == "srsue"
        assert payload["findings"], "srsue has Table I findings"
        finding = payload["findings"][0]
        assert finding["properties"][0]["verdict"] == "violated"


class TestDocgen:
    def test_cli_doc_is_current(self, capsys):
        from repro.docgen import main as docgen_main
        assert docgen_main(["--check"]) == 0

    def test_exit_code_table_covers_all_codes(self):
        from repro.cli import EXIT_CODES, EXIT_CODE_MEANINGS
        documented = set(EXIT_CODE_MEANINGS)
        used = set(EXIT_CODES.values()) | {0, 2}
        assert used <= documented


class TestChaosFlags:
    def test_parser_accepts_bare_and_valued_chaos(self):
        parser = build_parser()
        bare = parser.parse_args(["extract", "srsue", "--chaos"])
        assert bare.chaos == "default"
        valued = parser.parse_args(
            ["analyze", "srsue", "--chaos", "drop=0.1,dup=0.02",
             "--chaos-seed", "4", "--chaos-runs", "3"])
        assert valued.chaos == "drop=0.1,dup=0.02"
        assert valued.chaos_seed == 4
        assert valued.chaos_runs == 3

    def test_chaos_runs_without_chaos_rejected(self, capsys):
        assert main(["extract", "srsue", "--chaos-runs", "3"]) == 2
        assert "--chaos" in capsys.readouterr().err

    def test_bad_chaos_spec_rejected(self, capsys):
        assert main(["extract", "srsue", "--chaos", "bogus=1"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_extract_chaos_json_reports_stability(self, capsys):
        import json
        assert main(["extract", "reference", "--chaos",
                     "--chaos-runs", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stability"]["stable"] is True
        assert payload["stability"]["quarantined"] == []
        assert payload["fingerprint"]

    def test_extract_stability_out_writes_report(self, tmp_path, capsys):
        import json
        target = tmp_path / "stability.json"
        assert main(["extract", "reference", "--chaos", "--chaos-seed",
                     "2", "--chaos-runs", "2",
                     "--stability-out", str(target)]) == 0
        capsys.readouterr()
        data = json.loads(target.read_text())
        assert data["seeds"] == [2, 3]
        assert data["stable"] is True

    def test_stability_out_requires_consensus(self, capsys):
        assert main(["extract", "reference",
                     "--stability-out", "/tmp/nope.json"]) == 2

    def test_unstable_consensus_exits_one(self, capsys):
        assert main(["extract", "reference", "--chaos",
                     "dl.drop=0.5,ul.drop=0.2,scope=all",
                     "--chaos-seed", "3", "--chaos-runs", "3"]) == 1
        assert "UNSTABLE" in capsys.readouterr().out
