"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_commands_registered(self):
        parser = build_parser()
        for command in ("analyze", "extract", "verify", "attack", "gaps"):
            args = {
                "analyze": ["analyze", "srsue"],
                "extract": ["extract", "srsue"],
                "verify": ["verify", "srsue", "SEC-01"],
                "attack": ["attack", "P1", "srsue"],
                "gaps": ["gaps", "srsue"],
            }[command]
            namespace = parser.parse_args(args)
            assert namespace.command == command

    def test_bad_implementation_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "huawei"])


class TestCommands:
    def test_extract_prints_fsm(self, capsys):
        assert main(["extract", "srsue"]) == 0
        output = capsys.readouterr().out
        assert "states" in output
        assert "EMM_DEREGISTERED" in output

    def test_extract_writes_dot(self, tmp_path, capsys):
        target = tmp_path / "model.dot"
        assert main(["extract", "oai", "--dot", str(target)]) == 0
        text = target.read_text()
        assert text.startswith("digraph")
        from repro.fsm import from_dot
        fsm = from_dot(text)
        assert len(fsm.transitions) > 20

    def test_verify_verified_property_exits_zero(self, capsys):
        assert main(["verify", "reference", "SEC-37", "--quiet"]) == 0
        assert "verified" in capsys.readouterr().out

    def test_verify_violated_property_exits_one(self, capsys):
        assert main(["verify", "srsue", "SEC-02", "--quiet"]) == 1
        assert "violated" in capsys.readouterr().out

    def test_verify_unknown_property(self, capsys):
        assert main(["verify", "srsue", "SEC-999"]) == 2

    def test_attack_exit_codes(self, capsys):
        assert main(["attack", "I3", "srsue"]) == 1      # vulnerable
        assert main(["attack", "I3", "oai"]) == 0        # safe

    def test_attack_unknown(self, capsys):
        assert main(["attack", "P99", "srsue"]) == 2

    def test_gaps_lists_candidates(self, capsys):
        assert main(["gaps", "reference", "--limit", "2"]) == 0
        output = capsys.readouterr().out
        assert "candidate missing test cases" in output
        assert "drive the implementation" in output
