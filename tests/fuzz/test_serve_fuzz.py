"""Fuzz campaigns as serve jobs: queueing, store exemption, HTTP."""

import threading

import pytest

from repro import schema
from repro.serve import (AnalysisService, JobStatus, KIND_FUZZ,
                         ServeClient, ServeClientError, create_server)
from repro.store import ResultStore

SEED = 20260808


@pytest.fixture()
def service(tmp_path):
    svc = AnalysisService(ResultStore(tmp_path / "store"), workers=2,
                          default_engine_jobs=1)
    svc.start()
    yield svc
    svc.stop()


@pytest.fixture()
def client(service):
    server = create_server("127.0.0.1", 0, service, quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield ServeClient(f"http://127.0.0.1:{server.port}")
    server.shutdown()
    server.server_close()


def fuzz_payload(**overrides):
    payload = {"type": "fuzz", "implementation": "srsue", "seed": SEED,
               "budget_execs": 96}
    payload.update(overrides)
    return payload


class TestFuzzJobs:
    def test_fuzz_job_runs_and_carries_summary(self, service):
        record = service.submit(fuzz_payload())
        assert record.kind == KIND_FUZZ
        assert not record.store_hit
        done = _wait(service, record.job_id)
        assert done.status is JobStatus.DONE
        assert done.result is not None
        assert done.result["execs"] == 96
        assert done.result["deviations"]
        assert done.counters.get("fuzz.execs") == 96

    def test_fuzz_jobs_are_store_exempt(self, service, tmp_path):
        first = service.submit(fuzz_payload())
        _wait(service, first.job_id)
        assert service.store.stats()["entries"] == 0
        # Identical resubmission queues again (no hit) and re-derives
        # the byte-identical summary.
        second = service.submit(fuzz_payload())
        assert not second.store_hit
        done = _wait(service, second.job_id)
        assert done.result == service.job(first.job_id).result

    def test_bad_fuzz_payload_is_typed_error(self, service):
        from repro.fuzz import FuzzConfigError
        with pytest.raises(FuzzConfigError):
            service.submit(fuzz_payload(budget_execs=0))

    def test_analysis_jobs_unaffected(self, service):
        record = service.submit({"implementation": "srsue",
                                 "property_ids": ["SEC-01"]})
        assert record.kind == "analysis"
        done = _wait(service, record.job_id)
        assert done.status is JobStatus.DONE
        assert service.store.stats()["entries"] == 1


class TestFuzzOverHTTP:
    def test_submit_and_fetch_result(self, client):
        record = client.submit_fuzz("srsue", seed=SEED, budget_execs=96)
        assert record["kind"] == "fuzz"
        assert record["status"] == "queued"
        assert record[schema.SCHEMA_KEY] == schema.SCHEMA_VERSION
        result = client.fuzz_result(record["job_id"])
        assert result["execs"] == 96
        assert result["campaign"] == record["digest"]
        assert result["deviations"][0]["schedule"]

    def test_bad_fuzz_payload_is_400(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.submit_fuzz("srsue", budget_execs=0)
        assert "400" in str(excinfo.value)

    def test_unknown_fuzz_implementation_is_400(self, client):
        with pytest.raises(ServeClientError):
            client.submit_fuzz("huawei")


def _wait(service, job_id, timeout=60.0):
    import time
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = service.job(job_id)
        if record.status in (JobStatus.DONE, JobStatus.FAILED):
            return record
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish")
