"""Campaign-level guarantees: re-discovery, determinism, persistence.

The headline acceptance test lives here: a pinned-seed campaign against
srsUE / OAI re-finds at least one seeded Table I deviation from the
clean reference corpus *without being told about it* — ``classify`` is
post-hoc labelling, never discovery input.
"""

import json

import pytest

from repro import obs
from repro.fuzz import (Deviation, FuzzConfig, FuzzConfigError, FuzzError,
                        Fuzzer, campaign_digest, run_campaign)
from repro.obs.metrics import diff_snapshots
from repro.testbed.experiments import replay_deviation

SEED = 20260808


def small_campaign(implementation, budget=160, **overrides):
    config = FuzzConfig(implementation=implementation, seed=SEED,
                        budget_execs=budget, **overrides)
    return run_campaign(config)


@pytest.fixture(scope="module")
def srsue_result():
    return small_campaign("srsue")


@pytest.fixture(scope="module")
def oai_result():
    return small_campaign("oai")


class TestTableIRediscovery:
    def test_srsue_refinds_a_table_i_issue(self, srsue_result):
        labels = {d.classification for d in srsue_result.deviations}
        assert labels & {"I1", "I3", "I4", "I6"}, labels

    def test_oai_refinds_a_table_i_issue(self, oai_result):
        labels = {d.classification for d in oai_result.deviations}
        assert labels & {"I1", "I2", "I5"}, labels

    def test_reference_self_campaign_is_clean(self):
        result = small_campaign("reference", budget=80)
        assert result.deviations == []
        assert not result.found_deviations

    def test_deviations_are_minimised(self, srsue_result):
        for deviation in srsue_result.deviations:
            assert len(deviation.schedule) <= deviation.raw_steps
            assert deviation.minimize_execs > 0

    def test_coverage_progresses(self, srsue_result):
        assert srsue_result.coverage_transitions > 0
        assert srsue_result.coverage_universe > 0
        assert (srsue_result.coverage_transitions
                <= srsue_result.coverage_universe)
        points = [p["coverage"] for p in srsue_result.trajectory]
        assert points == sorted(points)
        assert srsue_result.trajectory[-1]["execs"] == srsue_result.execs


class TestDeterminism:
    def test_rerun_is_byte_identical(self, srsue_result):
        again = small_campaign("srsue")
        assert (json.dumps(again.summary(), sort_keys=True)
                == json.dumps(srsue_result.summary(), sort_keys=True))

    def test_jobs_width_is_invariant(self):
        """Satellite: identical (seed, corpus) at --jobs 1 vs --jobs 4
        produce byte-identical deviation digests and coverage counters."""
        def measure(jobs):
            before = obs.metrics().snapshot()
            result = small_campaign("srsue", budget=96, jobs=jobs)
            delta = diff_snapshots(before, obs.metrics().snapshot())
            counters = {key: value
                        for key, value in delta["counters"].items()
                        if key.startswith("fuzz.")}
            return result, counters

        narrow, narrow_counters = measure(1)
        wide, wide_counters = measure(4)
        assert ([d.digest for d in narrow.deviations]
                == [d.digest for d in wide.deviations])
        assert (json.dumps(narrow.summary(), sort_keys=True)
                == json.dumps(wide.summary(), sort_keys=True))
        assert narrow_counters == wide_counters

    def test_campaign_digest_excludes_width_and_location(self, tmp_path):
        base = FuzzConfig("srsue", seed=1)
        wide = FuzzConfig("srsue", seed=1, jobs=4,
                          corpus_dir=str(tmp_path))
        other = FuzzConfig("srsue", seed=2)
        assert campaign_digest(base) == campaign_digest(wide)
        assert campaign_digest(base) != campaign_digest(other)

    def test_fuzz_counters_emitted(self):
        before = obs.metrics().snapshot()
        small_campaign("srsue", budget=48)
        delta = diff_snapshots(before, obs.metrics().snapshot())
        assert delta["counters"].get("fuzz.execs") == 48


class TestPersistence:
    def test_corpus_and_deviations_persist_and_reload(self, tmp_path):
        root = tmp_path / "fuzz"
        first = small_campaign("srsue", budget=96,
                               corpus_dir=str(root))
        corpus_files = sorted((root / "corpus").glob("*.json"))
        assert len(corpus_files) == first.corpus_size
        artifacts = sorted((root / "deviations").glob("*.json"))
        assert {p.stem for p in artifacts} \
            == {d.digest for d in first.deviations}

        before = obs.metrics().snapshot()
        second = small_campaign("srsue", budget=32,
                                corpus_dir=str(root))
        delta = diff_snapshots(before, obs.metrics().snapshot())
        assert delta["counters"].get("fuzz.corpus_loaded") \
            == first.corpus_size
        assert second.execs == 32

    def test_corrupt_corpus_entry_is_a_typed_error(self, tmp_path):
        directory = tmp_path / "corpus"
        directory.mkdir()
        (directory / "bad.json").write_text("{not json")
        with pytest.raises(FuzzError):
            small_campaign("srsue", budget=8, corpus_dir=str(tmp_path))

    def test_artifact_round_trips_and_replays(self, tmp_path):
        root = tmp_path / "fuzz"
        result = small_campaign("srsue", budget=96,
                                corpus_dir=str(root))
        assert result.deviations
        path = next((root / "deviations").glob("*.json"))
        payload = json.loads(path.read_text())
        deviation = Deviation.from_dict(payload)
        assert deviation.digest == path.stem
        outcome = replay_deviation(payload)
        assert outcome.succeeded
        assert outcome.attack_id == f"FUZZ-{deviation.digest[:12]}"


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"implementation": "nope"},
        {"implementation": "srsue", "budget_execs": 0},
        {"implementation": "srsue", "max_steps": 0},
        {"implementation": "srsue", "jobs": 0},
        {"implementation": "srsue", "reference": "nope"},
    ])
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(FuzzConfigError):
            FuzzConfig(**kwargs)

    def test_config_wire_round_trip(self):
        config = FuzzConfig("oai", seed=9, budget_execs=50, jobs=2)
        assert FuzzConfig.from_dict(config.to_dict()) == config
