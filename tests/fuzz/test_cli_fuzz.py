"""``repro fuzz`` CLI: exit codes, JSON output, replay mode."""

import json

import pytest

from repro import schema
from repro.cli import FUZZ_DEVIATIONS_EXIT_CODE, build_parser, main

SEED = "20260808"


class TestParser:
    def test_fuzz_registered_with_defaults(self):
        args = build_parser().parse_args(["fuzz", "srsue"])
        assert args.command == "fuzz"
        assert args.budget_execs == 400
        assert args.seed == 0
        assert args.jobs == 1
        assert args.max_steps == 8
        assert args.corpus_dir is None
        assert args.replay is None

    def test_bad_implementation_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "huawei"])


class TestCampaignCommand:
    def test_deviations_exit_code_six(self, capsys):
        status = main(["fuzz", "srsue", "--seed", SEED,
                       "--budget-execs", "96"])
        assert status == FUZZ_DEVIATIONS_EXIT_CODE
        output = capsys.readouterr().out
        assert "deviation" in output
        assert "coverage" in output

    def test_clean_reference_exits_zero(self, capsys):
        status = main(["fuzz", "reference", "--seed", "1",
                       "--budget-execs", "40"])
        assert status == 0
        assert "no deviations" in capsys.readouterr().out

    def test_json_summary_is_versioned(self, capsys):
        status = main(["fuzz", "srsue", "--seed", SEED,
                       "--budget-execs", "96", "--json"])
        assert status == FUZZ_DEVIATIONS_EXIT_CODE
        payload = json.loads(capsys.readouterr().out)
        assert payload[schema.SCHEMA_KEY] == schema.SCHEMA_VERSION
        assert payload["execs"] == 96
        assert payload["deviations"]
        assert payload["trajectory"]

    def test_bad_budget_is_usage_error(self, capsys):
        status = main(["fuzz", "srsue", "--budget-execs", "0"])
        assert status == 2
        assert "budget_execs" in capsys.readouterr().err


class TestReplayCommand:
    @pytest.fixture()
    def artifact(self, tmp_path):
        main(["fuzz", "srsue", "--seed", SEED, "--budget-execs", "96",
              "--corpus-dir", str(tmp_path), "--json"])
        return next((tmp_path / "deviations").glob("*.json"))

    def test_replay_reproduces_and_exits_six(self, artifact, capsys):
        status = main(["fuzz", "srsue", "--replay", str(artifact)])
        assert status == FUZZ_DEVIATIONS_EXIT_CODE
        assert "REPRODUCED" in capsys.readouterr().out

    def test_replay_json_is_attack_result(self, artifact, capsys):
        status = main(["fuzz", "srsue", "--replay", str(artifact),
                       "--json"])
        assert status == FUZZ_DEVIATIONS_EXIT_CODE
        payload = json.loads(capsys.readouterr().out)
        assert payload["attack_id"].startswith("FUZZ-")
        assert payload["succeeded"] is True
        assert payload[schema.SCHEMA_KEY] == schema.SCHEMA_VERSION

    def test_missing_artifact_is_usage_error(self, tmp_path, capsys):
        status = main(["fuzz", "srsue", "--replay",
                       str(tmp_path / "nope.json")])
        assert status == 2
        assert "cannot load" in capsys.readouterr().err

    def test_malformed_artifact_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": "1.0"}))
        status = main(["fuzz", "srsue", "--replay", str(path)])
        assert status == 2
        assert "malformed" in capsys.readouterr().err


class TestExitCodeRegistry:
    def test_code_six_documented_and_collision_free(self):
        from repro.cli import EXIT_CODES, EXIT_CODE_MEANINGS
        assert EXIT_CODES["fuzz_deviations"] == FUZZ_DEVIATIONS_EXIT_CODE
        assert FUZZ_DEVIATIONS_EXIT_CODE in EXIT_CODE_MEANINGS
        values = list(EXIT_CODES.values())
        assert len(values) == len(set(values))
