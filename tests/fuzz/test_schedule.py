"""Schedule vocabulary: generation, mutation, digests — all seeded."""

import random

from repro.fuzz import mutate_schedule, schedule_digest
from repro.fuzz.schedule import (CRAFT_FIELD_TEMPLATES, DEFAULT_MAX_STEPS,
                                 SEED_SCHEDULES, canonical_json,
                                 clone_schedule, random_step)
from repro.lte import constants as c


class TestVocabulary:
    def test_seed_schedules_start_with_attach(self):
        for steps in SEED_SCHEDULES:
            assert steps[0]["op"] == "attach"

    def test_craft_templates_are_downlink_messages(self):
        for name in CRAFT_FIELD_TEMPLATES:
            assert name in c.DOWNLINK_MESSAGES

    def test_random_step_stays_in_vocabulary(self):
        rng = random.Random(0)
        ops = {random_step(rng)["op"] for _ in range(200)}
        assert ops <= {"attach", "mute", "replay", "auth", "craft"}
        assert "craft" in ops and "replay" in ops


class TestDeterminism:
    def test_same_seed_same_mutations(self):
        base = clone_schedule(SEED_SCHEDULES[0])
        first = [mutate_schedule(base, random.Random(7), DEFAULT_MAX_STEPS)
                 for _ in range(20)]
        second = [mutate_schedule(base, random.Random(7), DEFAULT_MAX_STEPS)
                  for _ in range(20)]
        assert ([schedule_digest(s) for s in first]
                == [schedule_digest(s) for s in second])

    def test_mutation_never_exceeds_max_steps(self):
        rng = random.Random(3)
        steps = clone_schedule(SEED_SCHEDULES[0])
        for _ in range(100):
            steps = mutate_schedule(steps, rng, max_steps=4)
            assert 1 <= len(steps) <= 4

    def test_mutation_does_not_alias_parent(self):
        parent = clone_schedule(SEED_SCHEDULES[0])
        snapshot = canonical_json(parent)
        rng = random.Random(11)
        for _ in range(50):
            mutate_schedule(parent, rng, DEFAULT_MAX_STEPS)
        assert canonical_json(parent) == snapshot


class TestDigest:
    def test_digest_is_content_addressed(self):
        a = [{"op": "attach"}, {"op": "mute"}]
        b = clone_schedule(a)
        assert schedule_digest(a) == schedule_digest(b)
        b.append({"op": "attach"})
        assert schedule_digest(a) != schedule_digest(b)

    def test_digest_is_key_order_independent(self):
        a = [{"op": "replay", "name": "attach_accept", "index": 0}]
        b = [{"index": 0, "name": "attach_accept", "op": "replay"}]
        assert schedule_digest(a) == schedule_digest(b)
