"""Lockstep executor: the differential oracle and coverage feedback."""

from repro.core import ProChecker
from repro.fuzz import fsm_coverage_universe, run_schedule

ATTACH = [{"op": "attach"}]
REPLAY_ACCEPT = [{"op": "attach"},
                 {"op": "replay", "name": "attach_accept", "index": 0}]


class TestOracleSoundness:
    def test_reference_vs_itself_never_diverges(self):
        result = run_schedule("reference", REPLAY_ACCEPT,
                              reference="reference")
        assert not result.diverged
        assert result.divergence_signature() is None

    def test_clean_attach_agrees_everywhere(self):
        for implementation in ("srsue", "oai"):
            result = run_schedule(implementation, ATTACH)
            assert not result.diverged, implementation


class TestDivergence:
    def test_srsue_replay_diverges(self):
        result = run_schedule("srsue", REPLAY_ACCEPT)
        assert result.diverged
        assert result.divergence_index == 1
        observed = result.target[1]
        expected = result.reference[1]
        assert observed["uplink"] != expected["uplink"]

    def test_signature_is_position_independent(self):
        # The same divergence found behind an extra no-op step must
        # carry the same signature — that is what makes ddmin sound.
        padded = [{"op": "attach"}, {"op": "mute"},
                  {"op": "replay", "name": "attach_accept", "index": 0}]
        a = run_schedule("srsue", REPLAY_ACCEPT)
        b = run_schedule("srsue", padded)
        assert a.diverged and b.diverged
        assert a.divergence_signature() == b.divergence_signature()

    def test_execution_is_deterministic(self):
        first = run_schedule("srsue", REPLAY_ACCEPT)
        second = run_schedule("srsue", REPLAY_ACCEPT)
        assert first.target == second.target
        assert first.coverage == second.coverage


class TestCoverage:
    def test_attach_exercises_extracted_transitions(self):
        universe = fsm_coverage_universe(ProChecker("srsue").extract())
        result = run_schedule("srsue", ATTACH)
        assert result.coverage
        assert result.coverage & universe

    def test_crash_free_on_hostile_steps(self):
        hostile = [
            {"op": "replay", "name": "nonexistent_message", "index": 5},
            {"op": "craft", "name": "attach_accept",
             "protection": "bad_mac",
             "mutations": [{"kind": "bitflip", "position": 3,
                            "mask": 255}]},
            {"op": "auth", "seq": 2 ** 28 - 1, "ind": 31,
             "valid_mac": False},
        ]
        result = run_schedule("srsue", hostile)
        assert len(result.target) == len(hostile)
