"""Property catalog tests: counts, well-formedness, vocabularies."""

import pytest

from repro.mc import parse_ltl
from repro.properties import (ALL_PROPERTIES, CATEGORY_PRIVACY,
                              CATEGORY_SECURITY, COMMON_PROPERTIES,
                              EXTRACTED_VOCAB, KIND_LTL, KIND_TESTBED,
                              LTEINSPECTOR_VOCAB, PRIVACY_PROPERTIES,
                              Property, PropertyError,
                              SECURITY_PROPERTIES, catalog_summary,
                              property_by_id)
from repro.testbed import registry


class TestCounts:
    def test_paper_counts(self):
        """62 total: 37 security + 25 privacy (Section VI); 13 common
        with LTEInspector (Table II)."""
        summary = catalog_summary()
        assert summary["total"] == 62
        assert summary["security"] == 37
        assert summary["privacy"] == 25
        assert summary["common"] == 13

    def test_unique_identifiers(self):
        identifiers = [prop.identifier for prop in ALL_PROPERTIES]
        assert len(identifiers) == len(set(identifiers))

    def test_categories_consistent(self):
        assert all(p.category == CATEGORY_SECURITY
                   for p in SECURITY_PROPERTIES)
        assert all(p.category == CATEGORY_PRIVACY
                   for p in PRIVACY_PROPERTIES)


class TestWellFormedness:
    @pytest.mark.parametrize(
        "prop", [p for p in ALL_PROPERTIES if p.kind == KIND_LTL],
        ids=lambda p: p.identifier)
    def test_formula_parses_in_extracted_vocabulary(self, prop):
        text = prop.formula_for(EXTRACTED_VOCAB)
        parse_ltl(text, _MODEL_VARIABLES)

    @pytest.mark.parametrize(
        "prop", [p for p in COMMON_PROPERTIES],
        ids=lambda p: p.identifier)
    def test_common_formulas_parse_in_baseline_vocabulary(self, prop):
        text = prop.formula_for(LTEINSPECTOR_VOCAB)
        parse_ltl(text, _MODEL_VARIABLES)

    @pytest.mark.parametrize(
        "prop", [p for p in ALL_PROPERTIES if p.kind == KIND_TESTBED],
        ids=lambda p: p.identifier)
    def test_testbed_experiments_registered(self, prop):
        assert prop.testbed_attack in registry()

    def test_spec_validation(self):
        with pytest.raises(PropertyError):
            Property("X", "security", KIND_LTL, "no formula")
        with pytest.raises(PropertyError):
            Property("X", "security", KIND_TESTBED, "no experiment")
        with pytest.raises(PropertyError):
            Property("X", "banana", KIND_LTL, "d", formula="G (true)")


class TestAttackMapping:
    def test_new_attacks_have_detecting_properties(self):
        attack_ids = {p.attack_id for p in ALL_PROPERTIES if p.attack_id}
        for attack in ("P1", "P2", "P3", "I1", "I2", "I3", "I4", "I5",
                       "I6"):
            assert attack in attack_ids, attack

    def test_prior_attacks_have_detecting_properties(self):
        attack_ids = {p.attack_id for p in ALL_PROPERTIES if p.attack_id}
        prior = [a for a in attack_ids if a.startswith("PRIOR-")]
        assert len(prior) >= 10

    def test_lookup_by_id(self):
        assert property_by_id("SEC-01").attack_id == "P1"
        with pytest.raises(KeyError):
            property_by_id("SEC-999")


#: the threat model's variable vocabulary (for parse-time validation)
_MODEL_VARIABLES = (
    "turn", "ue_state", "mme_state", "chan_dl", "chan_ul",
    "dl_mac_valid", "dl_plain", "dl_replayed", "dl_injected",
    "ul_injected", "dl_paging_match", "dl_sqn_rel", "dl_count_rel",
)
