"""Consistency tests for the Table I expectation data."""

from repro.properties import ALL_PROPERTIES
from repro.properties.expected import (FIVE_G_ATTACKS, IMPLEMENTATIONS,
                                       NEW_ATTACKS, PRIOR_DETECTED,
                                       PRIOR_NOT_APPLICABLE,
                                       expected_detected, matrix_rows)
from repro.testbed import PRIOR_ATTACK_IDS, registry


class TestMatrixShape:
    def test_table_i_dimensions(self):
        assert len(NEW_ATTACKS) == 9                 # P1-P3 + I1-I6
        assert len(PRIOR_DETECTED) == 12
        assert len(PRIOR_NOT_APPLICABLE) == 2
        assert len(PRIOR_DETECTED) + len(PRIOR_NOT_APPLICABLE) == 14

    def test_every_row_covers_every_implementation(self):
        for attack, row in NEW_ATTACKS.items():
            assert set(row) == set(IMPLEMENTATIONS), attack

    def test_protocol_attacks_apply_everywhere(self):
        for attack in ("P1", "P2", "P3"):
            assert all(NEW_ATTACKS[attack].values())

    def test_implementation_issues_never_hit_reference(self):
        for attack in ("I1", "I2", "I3", "I4", "I5", "I6"):
            assert not NEW_ATTACKS[attack]["reference"]

    def test_six_issues_across_open_stacks(self):
        issues = [attack for attack in NEW_ATTACKS
                  if attack.startswith("I")
                  and (NEW_ATTACKS[attack]["srsue"]
                       or NEW_ATTACKS[attack]["oai"])]
        assert len(issues) == 6


class TestCrossReferences:
    def test_prior_rows_match_testbed_registry(self):
        assert set(PRIOR_DETECTED) | set(PRIOR_NOT_APPLICABLE) \
            == set(PRIOR_ATTACK_IDS)

    def test_every_expected_attack_has_a_script(self):
        scripts = set(registry())
        for implementation in IMPLEMENTATIONS:
            assert expected_detected(implementation) <= scripts

    def test_every_expected_attack_has_a_detecting_property(self):
        property_attacks = {p.attack_id for p in ALL_PROPERTIES
                            if p.attack_id}
        for implementation in IMPLEMENTATIONS:
            missing = expected_detected(implementation) - property_attacks
            assert not missing, missing

    def test_five_g_attacks_registered(self):
        for attack in FIVE_G_ATTACKS:
            assert attack in registry()

    def test_matrix_rows_complete(self):
        rows = matrix_rows()
        assert len(rows) == 9 + 14
        assert rows[0] == "P1"
