"""The checked-in property document stays in sync with the catalog."""

import pathlib

from repro.properties.docgen import main, render

DOC = pathlib.Path(__file__).resolve().parents[2] / "docs/PROPERTIES.md"


def test_document_in_sync():
    assert DOC.read_text() == render()


def test_document_covers_all_properties():
    from repro.properties import ALL_PROPERTIES
    text = DOC.read_text()
    for prop in ALL_PROPERTIES:
        assert f"## {prop.identifier} " in text


class TestCheckMode:
    def test_check_passes_on_current_document(self, capsys):
        assert main(["--check", "-o", str(DOC)]) == 0
        assert "up to date" in capsys.readouterr().out

    def test_check_fails_on_stale_document(self, tmp_path, capsys):
        stale = tmp_path / "PROPERTIES.md"
        stale.write_text(render() + "\nstale trailing edit\n")
        assert main(["--check", "-o", str(stale)]) == 1
        assert "stale" in capsys.readouterr().err

    def test_check_fails_on_missing_document(self, tmp_path, capsys):
        absent = tmp_path / "absent.md"
        assert main(["--check", "-o", str(absent)]) == 1
        assert "unreadable" in capsys.readouterr().err

    def test_write_mode_regenerates(self, tmp_path):
        target = tmp_path / "PROPERTIES.md"
        assert main(["-o", str(target)]) == 0
        assert target.read_text() == render()
