"""The checked-in property document stays in sync with the catalog."""

import pathlib

from repro.properties.docgen import render

DOC = pathlib.Path(__file__).resolve().parents[2] / "docs/PROPERTIES.md"


def test_document_in_sync():
    assert DOC.read_text() == render()


def test_document_covers_all_properties():
    from repro.properties import ALL_PROPERTIES
    text = DOC.read_text()
    for prop in ALL_PROPERTIES:
        assert f"## {prop.identifier} " in text
