"""Runtime tracer tests: entry/exit/locals/global dumps per handler."""

from repro.instrumentation.logfmt import (ENTER, EXIT, GLOBAL, LOCAL,
                                          LogWriter, parse_log)
from repro.instrumentation.runtime import (RuntimeInstrumenter,
                                           TraceTargets, trace_run)
from repro.lte import constants as c
from repro.lte.channel import RadioLink
from repro.lte.hss import Hss
from repro.lte.identifiers import make_subscriber
from repro.lte.implementations import OaiLikeUe, ReferenceUe, SrsueLikeUe
from repro.lte.mme import MmeNas
from repro.lte.timers import SimClock


def traced_attach(ue_class):
    clock = SimClock()
    link = RadioLink()
    subscriber = make_subscriber("000000001")
    hss = Hss()
    hss.provision(subscriber)
    MmeNas(hss, link, clock=clock)
    ue = ue_class(subscriber, link, clock=clock)
    writer = LogWriter()
    with trace_run(ue_class, writer):
        ue.power_on()
    return parse_log(writer.getvalue())


class TestTraceTargets:
    def test_derived_from_class(self):
        targets = TraceTargets.for_implementation(SrsueLikeUe)
        assert "parse_" in targets.prefixes
        assert "emm_state" in targets.state_attributes
        assert targets.instance_class is SrsueLikeUe


class TestTracing:
    def test_handler_entries_logged_with_signature_names(self):
        records = traced_attach(SrsueLikeUe)
        entered = {r.name for r in records if r.kind == ENTER}
        assert "parse_authentication_request" in entered
        assert "send_attach_complete" in entered
        assert "power_on" in entered

    def test_enter_exit_balanced(self):
        records = traced_attach(ReferenceUe)
        enters = [r.name for r in records if r.kind == ENTER]
        exits = [r.name for r in records if r.kind == EXIT]
        assert sorted(enters) == sorted(exits)

    def test_global_state_dumped_at_entry(self):
        records = traced_attach(ReferenceUe)
        first_enter = next(i for i, r in enumerate(records)
                           if r.kind == ENTER)
        following = records[first_enter + 1:first_enter + 7]
        assert any(r.kind == GLOBAL and r.name == "emm_state"
                   for r in following)

    def test_condition_locals_captured(self):
        records = traced_attach(ReferenceUe)
        local_names = {r.name for r in records if r.kind == LOCAL}
        assert {"mac_valid", "sqn_fresh", "count_higher"} <= local_names

    def test_helper_frames_contribute_locals_without_enter(self):
        records = traced_attach(ReferenceUe)
        entered = {r.name for r in records if r.kind == ENTER}
        assert not any(name.startswith("_recv_") for name in entered)
        assert any(r.kind == LOCAL and r.name == "sqn_in_window"
                   for r in records)

    def test_mme_frames_not_traced(self):
        """Only the UE 'directory' is instrumented; the core network's
        handlers (same module tree) must not pollute the log."""
        records = traced_attach(ReferenceUe)
        entered = {r.name for r in records if r.kind == ENTER}
        assert "recv_attach_request" not in entered   # MME-side handler
        values = {r.value for r in records if r.kind == GLOBAL
                  and r.name == "emm_state"}
        assert not any(value.startswith("MME_") for value in values)

    def test_oai_signature_style(self):
        records = traced_attach(OaiLikeUe)
        entered = {r.name for r in records if r.kind == ENTER}
        assert "emm_recv_security_mode_command" in entered
        assert "emm_send_security_mode_complete" in entered

    def test_tracer_restores_previous_hook(self):
        import sys
        writer = LogWriter()
        targets = TraceTargets.for_implementation(ReferenceUe)
        before = sys.gettrace()
        with RuntimeInstrumenter(writer, targets):
            pass
        assert sys.gettrace() is before

    def test_functions_traced_counter(self):
        clock = SimClock()
        link = RadioLink()
        subscriber = make_subscriber("000000002")
        hss = Hss()
        hss.provision(subscriber)
        MmeNas(hss, link, clock=clock)
        ue = ReferenceUe(subscriber, link, clock=clock)
        writer = LogWriter()
        with trace_run(ReferenceUe, writer) as tracer:
            ue.power_on()
        assert tracer.functions_traced > 5
