"""C-like source instrumentor tests, built around the paper's Fig. 3."""

from repro.instrumentation.clike import (CLikeInstrumenter, parse_globals)

# The running example of Fig. 3 (simplified attach-accept path).
HEADER = """
// nas_state.h
int emm_state;
int dl_count;
char *current_guti;
void not_a_variable(int x);
"""

SOURCE = """\
void air_msg_handler(msg_t *msg) {
    int msg_type = parse_type(msg);
    if (msg_type == ATTACH_ACCEPT) {
        recv_attach_accept(msg);
    }
}

int recv_attach_accept(msg_t *msg) {
    int mac_valid = check_mac(msg);
    int replay_ok = check_count(msg);
    if (!mac_valid) {
        return 0;
    }
    emm_state = UE_REGISTERED;
    send_attach_complete();
    return 1;
}

void send_attach_complete() {
    build_and_send(ATTACH_COMPLETE);
}
"""


class TestParseGlobals:
    def test_declarations_found(self):
        names = [name for _type, name in parse_globals(HEADER)]
        assert names == ["emm_state", "dl_count", "current_guti"]

    def test_functions_and_comments_skipped(self):
        names = [name for _type, name in parse_globals(HEADER)]
        assert "not_a_variable" not in names


class TestDiscovery:
    def test_functions_found(self):
        instrumenter = CLikeInstrumenter()
        functions = instrumenter.discover_functions(SOURCE)
        assert [f.name for f in functions] == [
            "air_msg_handler", "recv_attach_accept",
            "send_attach_complete"]

    def test_first_block_locals(self):
        instrumenter = CLikeInstrumenter()
        functions = instrumenter.discover_functions(SOURCE)
        recv = functions[1]
        assert [name for _t, name in recv.locals] == ["mac_valid",
                                                      "replay_ok"]

    def test_return_points_found(self):
        instrumenter = CLikeInstrumenter()
        recv = instrumenter.discover_functions(SOURCE)[1]
        assert len(recv.return_lines) == 2


class TestInstrumentation:
    def instrumented(self):
        return CLikeInstrumenter(parse_globals(HEADER)).instrument(SOURCE)

    def test_enter_lines_inserted(self):
        text = self.instrumented()
        assert 'printf("ENTER air_msg_handler\\n");' in text
        assert 'printf("ENTER recv_attach_accept\\n");' in text
        assert 'printf("ENTER send_attach_complete\\n");' in text

    def test_globals_dumped_at_entry_and_exit(self):
        text = self.instrumented()
        assert text.count('printf("GLOBAL emm_state=%d\\n", emm_state);') \
            >= 4   # entry+exit across functions

    def test_locals_dumped_before_returns(self):
        text = self.instrumented()
        assert 'printf("LOCAL mac_valid=%d\\n", mac_valid);' in text
        assert 'printf("LOCAL replay_ok=%d\\n", replay_ok);' in text

    def test_string_globals_use_string_format(self):
        text = self.instrumented()
        assert ('printf("GLOBAL current_guti=%s\\n", current_guti);'
                in text)

    def test_original_code_preserved(self):
        text = self.instrumented()
        for line in SOURCE.splitlines():
            assert line in text

    def test_exit_markers_precede_returns(self):
        lines = self.instrumented().splitlines()
        for index, line in enumerate(lines):
            if line.strip().startswith("return"):
                window = "\n".join(lines[max(0, index - 8):index])
                assert "EXIT" in window

    def test_line_count_delta(self):
        instrumenter = CLikeInstrumenter(parse_globals(HEADER))
        assert instrumenter.instrumented_line_count(SOURCE) > 10

    def test_unbalanced_braces_rejected(self):
        from repro.instrumentation.clike import InstrumentationError
        import pytest
        with pytest.raises(InstrumentationError):
            CLikeInstrumenter().discover_functions(
                "void broken(void) {\n    if (x) {\n")
