"""Log format tests: writer/parser round trip, robustness to noise."""

import pytest
from hypothesis import given, strategies as st

from repro.instrumentation.logfmt import (ENTER, EXIT, GLOBAL, LOCAL,
                                          LogFormatError, LogRecord,
                                          LogWriter, TESTCASE,
                                          iter_testcases, parse_log,
                                          render_value)


class TestRenderValue:
    def test_bool_as_bit(self):
        assert render_value(True) == "1"
        assert render_value(False) == "0"

    def test_bytes_as_hex_prefix(self):
        assert render_value(b"\xde\xad\xbe\xef" * 4) == "0xdeadbeefdeadbeef"

    def test_plain_values(self):
        assert render_value(42) == "42"
        assert render_value("EMM_REGISTERED") == "EMM_REGISTERED"


class TestRecords:
    def test_enter_exit_roundtrip(self):
        record = LogRecord(ENTER, "recv_attach_accept")
        assert LogRecord.parse(record.render()) == record

    def test_variable_roundtrip(self):
        record = LogRecord(GLOBAL, "emm_state", "EMM_REGISTERED")
        assert LogRecord.parse(record.render()) == record

    def test_noise_lines_ignored(self):
        assert LogRecord.parse("random build output") is None
        assert LogRecord.parse("") is None
        assert LogRecord.parse("[INFO] something") is None

    def test_malformed_variable_rejected(self):
        with pytest.raises(LogFormatError):
            LogRecord.parse("GLOBAL no_equals_sign")


class TestWriter:
    def test_full_sequence(self):
        writer = LogWriter()
        writer.testcase("TC_1")
        writer.enter("recv_x")
        writer.global_var("emm_state", "A")
        writer.local_var("mac_valid", True)
        writer.exit("recv_x")
        records = parse_log(writer.getvalue())
        kinds = [r.kind for r in records]
        assert kinds == [TESTCASE, ENTER, GLOBAL, LOCAL, EXIT]
        assert records[3].value == "1"
        assert writer.lines_written == 5


class TestParseLog:
    def test_interleaved_noise_skipped(self):
        text = ("ENTER f\nsome compiler warning\nGLOBAL s=1\n"
                "[2021] log line\nEXIT f\n")
        records = parse_log(text)
        assert len(records) == 3

    def test_accepts_line_iterable(self):
        records = parse_log(["ENTER f", "EXIT f"])
        assert len(records) == 2


class TestIterTestcases:
    def test_split_at_markers(self):
        writer = LogWriter()
        writer.enter("preamble_fn")
        writer.testcase("TC_A")
        writer.enter("f1")
        writer.testcase("TC_B")
        writer.enter("f2")
        groups = list(iter_testcases(parse_log(writer.getvalue())))
        assert [name for name, _ in groups] == ["(preamble)", "TC_A",
                                                "TC_B"]
        assert groups[1][1][0].name == "f1"


_NAMES = st.text(alphabet="abz_XYZ019", min_size=1, max_size=12)
_VALUES = st.one_of(st.integers(-99, 99), st.booleans(),
                    st.text(alphabet="abcXYZ_.-", min_size=1, max_size=12))


class TestRoundTripProperty:
    @given(st.lists(st.tuples(_NAMES, _VALUES), max_size=20))
    def test_writer_parser_roundtrip(self, entries):
        writer = LogWriter()
        for name, value in entries:
            writer.global_var(name, value)
        records = parse_log(writer.getvalue())
        assert len(records) == len(entries)
        for record, (name, value) in zip(records, entries):
            assert record.name == name
            assert record.value == render_value(value)
