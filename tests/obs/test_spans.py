"""Span layer: nesting, counters, rollup, serialization, adoption."""

import json
import threading

import pytest

from repro.obs import Span, Tracer


class FakeClock:
    """Deterministic monotonic clock for exact duration assertions."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock=clock)


class TestNesting:
    def test_lexical_nesting_builds_the_tree(self, tracer, clock):
        with tracer.span("outer") as outer:
            clock.advance(1.0)
            with tracer.span("inner.a"):
                clock.advance(0.25)
            with tracer.span("inner.b"):
                clock.advance(0.5)
        assert [child.name for child in outer.children] \
            == ["inner.a", "inner.b"]
        assert outer.duration == pytest.approx(1.75)
        assert outer.children[0].duration == pytest.approx(0.25)
        assert [span.name for span, _ in outer.walk()] \
            == ["outer", "inner.a", "inner.b"]

    def test_finished_roots_accumulate_until_drained(self, tracer):
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        roots = tracer.drain()
        assert [root.name for root in roots] == ["first", "second"]
        assert tracer.drain() == []

    def test_root_buffer_is_bounded(self, tracer):
        for index in range(Tracer.MAX_ROOTS + 10):
            with tracer.span("s", index=index):
                pass
        roots = tracer.peek_roots()
        assert len(roots) == Tracer.MAX_ROOTS
        # the oldest spans were evicted, the newest kept
        assert roots[-1].attributes["index"] == Tracer.MAX_ROOTS + 9

    def test_threads_nest_independently(self, tracer):
        barrier = threading.Barrier(2)

        def work(name):
            with tracer.span(name):
                barrier.wait()
                with tracer.span(f"{name}.child"):
                    pass

        threads = [threading.Thread(target=work, args=(n,))
                   for n in ("t1", "t2")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        roots = tracer.drain()
        assert sorted(root.name for root in roots) == ["t1", "t2"]
        for root in roots:
            assert [c.name for c in root.children] \
                == [f"{root.name}.child"]


class TestCounters:
    def test_inc_lands_on_innermost_span(self, tracer):
        with tracer.span("outer") as outer:
            tracer.inc("a", 1)
            with tracer.span("inner") as inner:
                tracer.inc("a", 2)
                tracer.inc("b", 5)
        assert outer.counters == {"a": 1}
        assert inner.counters == {"a": 2, "b": 5}

    def test_inc_without_open_span_is_a_noop(self, tracer):
        tracer.inc("orphan", 7)   # must not raise
        assert tracer.drain() == []

    def test_total_counters_rolls_up_the_subtree(self, tracer):
        with tracer.span("root") as root:
            tracer.inc("x", 1)
            with tracer.span("child"):
                tracer.inc("x", 2)
                tracer.inc("y", 3)
            with tracer.span("child"):
                tracer.inc("x", 4)
        assert root.total_counters() == {"x": 7, "y": 3}


class TestSerialization:
    def test_to_dict_from_dict_round_trip(self, tracer, clock):
        clock.advance(100.0)   # non-zero origin: offsets must normalise
        with tracer.span("root", property="SEC-01") as root:
            tracer.inc("n", 3)
            clock.advance(1.0)
            with tracer.span("child"):
                clock.advance(0.5)
        payload = json.loads(json.dumps(root.to_dict()))
        assert payload["offset"] == 0.0
        assert payload["children"][0]["offset"] == pytest.approx(1.0)
        restored = Span.from_dict(payload)
        assert restored.name == "root"
        assert restored.attributes == {"property": "SEC-01"}
        assert restored.counters == {"n": 3}
        assert restored.duration == pytest.approx(1.5)
        assert restored.children[0].name == "child"
        assert restored.total_counters() == root.total_counters()

    def test_adopt_grafts_under_the_open_span(self, tracer):
        foreign = Span("verify.property", {"property": "SEC-09"})
        with tracer.span("pipeline.verify") as parent:
            tracer.adopt(foreign)
        assert parent.children == [foreign]

    def test_adopt_without_open_span_becomes_a_root(self, tracer):
        foreign = Span("verify.property")
        tracer.adopt(foreign)
        assert tracer.drain() == [foreign]

    def test_find_locates_spans_by_name(self, tracer):
        with tracer.span("a") as root:
            with tracer.span("b"):
                with tracer.span("a"):
                    pass
        assert len(root.find("a")) == 2
        assert len(root.find("b")) == 1
        assert root.find("zzz") == []
