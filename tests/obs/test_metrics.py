"""Metrics registry: instruments, snapshots, commutative merges."""

import threading

import pytest

from repro.obs import MetricsRegistry, diff_snapshots


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        assert registry.snapshot()["counters"]["hits"] == 5

    def test_gauge_keeps_the_maximum(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("max_states")
        for value in (10, 50, 20):
            gauge.record(value)
        assert registry.snapshot()["gauges"]["max_states"] == 50

    def test_histogram_buckets_and_totals(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 99.0):
            histogram.observe(value)
        data = registry.snapshot()["histograms"]["seconds"]
        assert data["counts"] == [1, 2, 1]   # last bin is +Inf overflow
        assert data["count"] == 4
        assert data["total"] == pytest.approx(100.05)


class TestMergeSemantics:
    def _registry_with(self, counter, gauge, observations):
        registry = MetricsRegistry()
        registry.counter("c").inc(counter)
        registry.gauge("g").record(gauge)
        for value in observations:
            registry.histogram("h", buckets=(1.0,)).observe(value)
        return registry

    def test_merge_is_commutative(self):
        a = self._registry_with(3, 10, [0.5]).drain()
        b = self._registry_with(4, 7, [2.0, 0.1]).drain()

        ab = MetricsRegistry()
        ab.merge(a)
        ab.merge(b)
        ba = MetricsRegistry()
        ba.merge(b)
        ba.merge(a)
        assert ab.snapshot() == ba.snapshot()
        merged = ab.snapshot()
        assert merged["counters"]["c"] == 7
        assert merged["gauges"]["g"] == 10
        assert merged["histograms"]["h"]["counts"] == [2, 1]

    def test_merge_rejects_bucket_mismatch(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        with pytest.raises(ValueError):
            registry.merge({"histograms": {
                "h": {"buckets": [5.0], "counts": [1, 0],
                      "total": 0.5, "count": 1}}})

    def test_drain_resets_the_registry(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(9)
        payload = registry.drain()
        assert payload["counters"]["c"] == 9
        assert registry.snapshot()["counters"] == {}


class TestConcurrency:
    def test_counter_inc_is_thread_safe_enough(self):
        """Concurrent workers hammering one counter lose no increments.

        ``Counter.inc`` runs under the GIL per bytecode, and every
        engine-side mutation goes through the registry lock; this guards
        the invariant the per-worker utilisation numbers rely on.
        """
        registry = MetricsRegistry()
        increments, workers = 2000, 8

        def work():
            for _ in range(increments):
                registry.counter("n").inc()
                registry.gauge("peak").record(increments)
                registry.histogram("obs").observe(0.01)

        threads = [threading.Thread(target=work) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = registry.snapshot()
        assert snapshot["counters"]["n"] == increments * workers
        assert snapshot["gauges"]["peak"] == increments
        assert snapshot["histograms"]["obs"]["count"] \
            == increments * workers


class TestDiff:
    def test_diff_reports_activity_between_snapshots(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        before = registry.snapshot()
        registry.counter("a").inc(2)
        registry.counter("b").inc(1)
        registry.gauge("g").record(42)
        registry.histogram("h", buckets=(1.0,)).observe(3.0)
        delta = diff_snapshots(before, registry.snapshot())
        assert delta["counters"] == {"a": 2, "b": 1}
        assert delta["gauges"]["g"] == 42
        assert delta["histograms"]["h"]["counts"] == [0, 1]
        assert delta["histograms"]["h"]["count"] == 1

    def test_diff_drops_idle_instruments(self):
        registry = MetricsRegistry()
        registry.counter("quiet").inc(5)
        registry.histogram("still").observe(0.1)
        snapshot = registry.snapshot()
        delta = diff_snapshots(snapshot, snapshot)
        assert delta["counters"] == {}
        assert delta["histograms"] == {}
