"""Sinks, the JSONL trace format, the audit, and the module facade."""

import io
import json

import repro.obs as obs
from repro.obs import (InMemorySink, PipelineStats, REQUIRED_PHASES, Span,
                       SummarySink, audit_trace, iter_records, read_trace,
                       trace_phase_names, write_trace)


def _forest():
    """Two roots, one with a nested child carrying counters."""
    root = Span("pipeline.analyze", {"implementation": "reference"})
    child = Span("verify.property", {"property": "SEC-01"})
    child.counters["cegar.iterations"] = 2
    grand = Span("mc.check", {"property": "SEC-01"})
    child.children.append(grand)
    root.children.append(child)
    other = Span("pipeline.extract")
    return [root, other]


class TestRecords:
    def test_iter_records_preserves_structure(self):
        records = list(iter_records(_forest()))
        assert [r["name"] for r in records] == [
            "pipeline.analyze", "verify.property", "mc.check",
            "pipeline.extract"]
        by_id = {r["span_id"]: r for r in records}
        child = records[1]
        assert by_id[child["parent_id"]]["name"] == "pipeline.analyze"
        assert child["depth"] == 1
        assert child["counters"] == {"cegar.iterations": 2}
        assert records[0]["parent_id"] is None
        assert records[3]["parent_id"] is None

    def test_stats_record_rides_last(self):
        stats = PipelineStats(implementation="reference")
        records = list(iter_records(_forest(), stats))
        assert records[-1]["type"] == "pipeline_stats"
        assert records[-1]["stats"]["implementation"] == "reference"

    def test_in_memory_sink_collects(self):
        sink = InMemorySink()
        for record in iter_records(_forest()):
            sink.emit(record)
        assert len(sink.spans()) == 4

    def test_summary_sink_renders_stats(self):
        stream = io.StringIO()
        sink = SummarySink(stream)
        stats = PipelineStats(implementation="srsue", jobs=4)
        for record in iter_records([], stats):
            sink.emit(record)
        assert "srsue" in stream.getvalue()


class TestTraceFile:
    def test_write_read_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        stats = PipelineStats(implementation="oai",
                              verdicts={"verified": 1})
        written = write_trace(path, _forest(), stats)
        records = read_trace(path)
        assert written == len(records) == 5
        spans = [r for r in records if r["type"] == "span"]
        assert {r["name"] for r in spans} \
            == {"pipeline.analyze", "verify.property", "mc.check",
                "pipeline.extract"}
        restored = PipelineStats.from_dict(records[-1]["stats"])
        assert restored.verdicts == {"verified": 1}

    def test_phase_names_and_audit(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_trace(path, _forest())
        names = trace_phase_names(path)
        assert "verify.property" in names
        missing = audit_trace(path)
        # the synthetic forest has only 4 of the required phases
        assert missing == sorted(
            REQUIRED_PHASES - {"pipeline.analyze", "verify.property",
                               "mc.check", "pipeline.extract"})
        assert audit_trace(path, required=["mc.check"]) == []

    def test_audit_cli_exit_codes(self, tmp_path, capsys):
        from repro.obs.audit import main as audit_main
        path = str(tmp_path / "trace.jsonl")
        write_trace(path, _forest())
        assert audit_main([path]) == 2   # phases missing
        assert audit_main([path, "--require", "mc.check",
                           "--require", "pipeline.analyze"]) == 0


class TestFacade:
    def test_inc_mirrors_into_the_registry(self):
        obs.reset()
        with obs.span("phase"):
            obs.inc("events", 3)
        assert obs.metrics().snapshot()["counters"]["events"] == 3
        roots = obs.drain_spans()
        assert roots[0].counters == {"events": 3}

    def test_count_is_registry_only(self):
        obs.reset()
        with obs.span("phase") as span:
            obs.count("cache_hits")
        assert span.counters == {}
        assert obs.metrics().snapshot()["counters"]["cache_hits"] == 1
        obs.reset()

    def test_adopt_spans_grafts_worker_payloads(self):
        obs.reset()
        worker = Span("verify.property", {"property": "PRIV-02"})
        worker.counters["cegar.iterations"] = 1
        payload = json.loads(json.dumps(worker.to_dict()))
        with obs.span("pipeline.verify") as parent:
            obs.adopt_spans([payload])
        assert [c.name for c in parent.children] == ["verify.property"]
        assert parent.total_counters() == {"cegar.iterations": 1}
        obs.reset()

    def test_reset_isolates(self):
        obs.reset()
        obs.count("leftover")
        first = obs.get_observatory()
        obs.reset()
        assert obs.get_observatory() is not first
        assert obs.metrics().snapshot()["counters"] == {}
