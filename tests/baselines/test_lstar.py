"""Active-learning baseline tests."""

import pytest

from repro.baselines import (LStarLearner, LteUeSUL, MealyMachine,
                             learn_ue_model)
from repro.lte import constants as c


class TestSUL:
    def test_reset_gives_fresh_session(self):
        sul = LteUeSUL("reference")
        assert sul.step("power_on") == c.ATTACH_REQUEST
        sul.reset()
        assert sul.step("power_on") == c.ATTACH_REQUEST

    def test_attach_sequence_through_harness(self):
        """The mapper tracks session crypto so smc_valid/attach_accept
        concretise correctly after authentication."""
        sul = LteUeSUL("reference")
        assert sul.step("power_on") == c.ATTACH_REQUEST
        assert sul.step("auth_request_fresh") \
            == c.AUTHENTICATION_RESPONSE
        assert sul.step("smc_valid") == c.SECURITY_MODE_COMPLETE
        assert sul.step("attach_accept_valid") == c.ATTACH_COMPLETE
        assert sul.step("paging_matching") == c.SERVICE_REQUEST

    def test_bad_mac_observable(self):
        sul = LteUeSUL("reference")
        sul.step("power_on")
        assert sul.step("auth_request_bad_mac") == c.AUTH_MAC_FAILURE

    def test_protected_input_without_context_is_silent(self):
        sul = LteUeSUL("reference")
        sul.step("power_on")
        assert sul.step("smc_valid") == "-"

    def test_unknown_symbol_rejected(self):
        sul = LteUeSUL("reference")
        with pytest.raises(ValueError):
            sul.step("teleport")

    def test_query_counters(self):
        sul = LteUeSUL("reference")
        sul.step("power_on")
        sul.step("attach_reject")
        assert sul.symbols_sent == 2
        assert sul.resets == 1


class TestMealyMachine:
    def test_run_follows_transitions(self):
        machine = MealyMachine(
            initial=0,
            transitions={(0, "a"): (1, "x"), (1, "a"): (0, "y")})
        assert machine.run(["a", "a", "a"]) == ["x", "y", "x"]
        assert machine.states == [0, 1]


class TestLearning:
    @pytest.fixture(scope="class")
    def learned(self):
        return learn_ue_model("reference", equivalence_depth=2)

    def test_hypothesis_consistent_with_sul(self, learned):
        """The learned machine predicts fresh SUL runs it never saw."""
        machine, _stats = learned
        sul = LteUeSUL("reference")
        word = ["power_on", "auth_request_fresh", "smc_valid",
                "attach_accept_valid", "paging_matching"]
        sul.reset()
        actual = [sul.step(symbol) for symbol in word]
        assert machine.run(word) == actual

    def test_distinguishes_protocol_phases(self, learned):
        machine, _stats = learned
        # attach path traverses at least 4 distinct states
        state = machine.initial
        visited = {state}
        for symbol in ("power_on", "auth_request_fresh", "smc_valid",
                       "attach_accept_valid"):
            state, _output = machine.transitions[(state, symbol)]
            visited.add(state)
        assert len(visited) >= 4

    def test_learning_cost_recorded(self, learned):
        _machine, stats = learned
        assert stats.membership_queries > 100
        assert stats.resets > 100
        assert stats.rounds >= 1

    def test_learner_reaches_fixpoint(self):
        sul = LteUeSUL("reference")
        learner = LStarLearner(sul)
        machine = learner.learn(max_rounds=5, equivalence_depth=2)
        # one more exhaustive depth-2 pass finds no counterexample
        assert learner._find_counterexample(machine, depth=2) is None
