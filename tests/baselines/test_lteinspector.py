"""LTEInspector baseline model tests, including the RQ2 refinement."""

from repro.baselines import (SUBSTATE_MAP, lteinspector_mme,
                             lteinspector_ue)
from repro.fsm import check_refinement, guard_strictness
from repro.lte import constants as c


class TestBaselineShape:
    def test_ue_has_four_states(self):
        fsm = lteinspector_ue()
        assert len(fsm.states) == 4
        assert fsm.initial_state == "ue_deregistered"

    def test_mme_has_four_states(self):
        fsm = lteinspector_mme()
        assert len(fsm.states) == 4

    def test_no_data_predicates(self):
        """Hand-built models carry no data constraints (the RQ2 point)."""
        mean, peak = guard_strictness(lteinspector_ue())
        assert peak == 0

    def test_all_states_reachable(self):
        for fsm in (lteinspector_ue(), lteinspector_mme()):
            assert not fsm.unreachable_states()

    def test_attach_path_exists(self):
        fsm = lteinspector_ue()
        paths = list(fsm.paths("ue_deregistered", "ue_registered"))
        assert paths


class TestRQ2Refinement:
    def test_extracted_models_refine_the_baseline(self, extracted_models):
        """Pro^mu is a refinement of LTE^mu (Section VII-B) for every
        implementation's extracted model."""
        baseline = lteinspector_ue()
        for impl, extracted in extracted_models.items():
            report = check_refinement(baseline, extracted,
                                      substate_map=SUBSTATE_MAP)
            assert report.states_ok, (impl, report.unmapped_states)
            assert report.condition_superset, impl
            assert report.action_superset, impl
            # the overwhelming majority of transitions map; the few that
            # do not correspond to stimuli the conformance suite delivers
            # in a different sub-state than the hand model guesses
            counts = report.mapping_counts()
            mapped = counts["direct"] + counts["stricter-condition"] \
                + counts["split-through-new-states"]
            assert mapped >= len(baseline.transitions) - 2, (impl, counts)

    def test_refinement_adds_data_conditions(self, extracted_models):
        baseline = lteinspector_ue()
        report = check_refinement(baseline, extracted_models["reference"],
                                  substate_map=SUBSTATE_MAP)
        new_conditions = " ".join(report.new_conditions)
        assert "mac_valid" in new_conditions
        assert "sqn" in new_conditions

    def test_substate_mapping_covers_all_baseline_states(self):
        baseline = lteinspector_ue()
        assert set(SUBSTATE_MAP) == baseline.states

    def test_extracted_strictly_richer(self, extracted_models):
        baseline = lteinspector_ue()
        for impl, extracted in extracted_models.items():
            assert len(extracted.states) > len(baseline.states)
            assert len(extracted.conditions) > len(baseline.conditions)
