"""Parallel verification engine: determinism, caching, serialization.

The engine's contract is that parallelism and caching are pure
performance features: a pooled run must produce byte-identical verdicts
to the serial path, and a full analysis must execute exactly one
conformance run + extraction per implementation regardless of how many
``ProChecker`` instances participate.
"""

import functools
import json
import threading

import pytest

import repro.obs as obs
from repro.core import (AnalysisConfig, EngineError, ExtractionCache,
                        ProChecker, ProCheckerError, analyze_many,
                        extraction_cache, group_properties)
from repro.cli import main as cli_main
from repro.conformance import full_suite
from repro.core.report import AnalysisReport, PropertyResult
from repro.obs import PipelineStats, audit_trace, read_trace
from repro.properties import ALL_PROPERTIES, property_by_id
from repro.testbed import AttackOutcome, AttackResult, run_attack

IMPLEMENTATIONS = ("reference", "srsue", "oai")


@pytest.fixture(scope="module")
def serial_reports():
    return {impl: ProChecker.from_config(
                AnalysisConfig(impl, jobs=1)).analyze()
            for impl in IMPLEMENTATIONS}


# ---------------------------------------------------------------------------
# Determinism: pooled == serial
# ---------------------------------------------------------------------------
class TestParallelDeterminism:
    @pytest.mark.parametrize("implementation", IMPLEMENTATIONS)
    def test_parallel_matches_serial(self, serial_reports, implementation):
        parallel = ProChecker.from_config(
            AnalysisConfig(implementation, jobs=4)).analyze()
        serial = serial_reports[implementation]
        assert parallel.verdict_signature() == serial.verdict_signature()
        assert parallel.jobs == 4
        assert serial.jobs == 1
        assert parallel.counts() == serial.counts()
        assert parallel.detected_attacks() == serial.detected_attacks()

    def test_results_stay_in_catalog_order(self, serial_reports):
        parallel = ProChecker.from_config(
            AnalysisConfig("srsue", jobs=4)).analyze()
        identifiers = [r.property.identifier for r in parallel.results]
        assert identifiers == [p.identifier for p in ALL_PROPERTIES]
        assert identifiers == [r.property.identifier
                               for r in serial_reports["srsue"].results]

    def test_worker_metrics_cover_all_properties(self):
        report = ProChecker.from_config(
            AnalysisConfig("reference", jobs=2)).analyze()
        metrics = report.worker_metrics()
        assert sum(m["properties"] for m in metrics.values()) == 62
        for stats in metrics.values():
            assert stats["busy_seconds"] >= 0.0

    def test_analyze_many_matches_individual_runs(self, serial_reports):
        reports = analyze_many(IMPLEMENTATIONS, jobs=2)
        assert set(reports) == set(IMPLEMENTATIONS)
        for implementation, report in reports.items():
            assert report.verdict_signature() \
                == serial_reports[implementation].verdict_signature()


# ---------------------------------------------------------------------------
# Observability: stats determinism, trace reassembly, CLI emission
# ---------------------------------------------------------------------------
class TestObservability:
    def test_canonical_stats_identical_across_jobs(self, serial_reports):
        """The ISSUE's headline contract: --jobs 4 aggregates to the
        byte-identical canonical PipelineStats of a --jobs 1 run."""
        parallel = ProChecker.from_config(
            AnalysisConfig("reference", jobs=4)).analyze()
        serial = serial_reports["reference"]
        assert serial.stats is not None
        assert parallel.stats is not None
        assert parallel.stats.canonical_json() \
            == serial.stats.canonical_json()
        assert parallel.stats.jobs == 4
        assert serial.stats.jobs == 1

    def test_stats_cover_every_property(self, serial_reports):
        stats = serial_reports["srsue"].stats
        assert set(stats.properties) \
            == {p.identifier for p in ALL_PROPERTIES}
        assert sum(stats.verdicts.values()) == 62
        # every LTL property runs at least one CEGAR iteration
        assert stats.totals["cegar.iterations"] >= 49
        assert stats.phases["verify.property"]["count"] == 62
        assert stats.runtime["elapsed_seconds"] > 0

    def test_stats_round_trip_through_report(self, serial_reports):
        report = serial_reports["oai"]
        payload = json.loads(json.dumps(report.to_dict()))
        restored = AnalysisReport.from_dict(payload)
        assert restored.stats is not None
        assert restored.stats.canonical_json() \
            == report.stats.canonical_json()
        assert restored.stats.jobs == report.stats.jobs
        assert restored.stats.phases == report.stats.phases

    def test_worker_spans_reassemble_into_one_trace(self):
        """Spans recorded inside pool workers come home and graft under
        the parent's verify phase — one tree, keyed by property id."""
        obs.reset()
        extraction_cache.clear()
        ProChecker.from_config(
            AnalysisConfig("reference", jobs=4)).analyze()
        roots = obs.drain_spans()
        analyze_roots = [r for r in roots if r.name == "pipeline.analyze"]
        assert len(analyze_roots) == 1
        root = analyze_roots[0]
        verify_phases = root.find("pipeline.verify")
        assert len(verify_phases) == 1
        property_spans = verify_phases[0].find("verify.property")
        assert sorted(span.attributes["property"]
                      for span in property_spans) \
            == sorted(p.identifier for p in ALL_PROPERTIES)

    def test_cli_trace_out_profile_and_audit(self, tmp_path, capsys):
        obs.reset()
        extraction_cache.clear()
        trace = tmp_path / "trace.jsonl"
        code = cli_main(["analyze", "reference", "--jobs", "2",
                         "--trace-out", str(trace), "--profile"])
        assert code == 0
        captured = capsys.readouterr()
        assert "pipeline profile" in captured.out
        assert str(trace) in captured.err
        # a cold full run exhibits every required pipeline phase
        assert audit_trace(str(trace)) == []
        stats_records = [r for r in read_trace(str(trace))
                         if r["type"] == "pipeline_stats"]
        assert len(stats_records) == 1
        restored = PipelineStats.from_dict(stats_records[0]["stats"])
        assert sum(restored.verdicts.values()) == 62


# ---------------------------------------------------------------------------
# Extraction cache
# ---------------------------------------------------------------------------
class TestExtractionCache:
    def test_one_conformance_run_across_instances(self):
        extraction_cache.clear()
        first = ProChecker("srsue").extract()
        second = ProChecker("srsue").extract()
        stats = extraction_cache.stats()
        assert stats["conformance_runs"] == 1
        assert stats["hits"] >= 1
        assert first is second

    def test_full_analysis_runs_conformance_once(self):
        extraction_cache.clear()
        ProChecker.from_config(AnalysisConfig("reference")).analyze()
        assert extraction_cache.stats()["conformance_runs"] == 1

    def test_custom_cases_invalidate(self):
        extraction_cache.clear()
        subset = full_suite("srsue")[:10]
        default = extraction_cache.get("srsue")
        custom = extraction_cache.get("srsue", subset)
        assert extraction_cache.stats()["conformance_runs"] == 2
        assert custom.conformance_cases < default.conformance_cases
        # The same custom suite hits the cache; the default is untouched.
        again = extraction_cache.get("srsue", subset)
        assert again is custom
        assert extraction_cache.stats()["conformance_runs"] == 2

    def test_cache_opt_out(self):
        extraction_cache.clear()
        config = AnalysisConfig("reference", use_extraction_cache=False)
        checker = ProChecker.from_config(config)
        checker.extract()
        assert extraction_cache.stats()["conformance_runs"] == 0


class TestExtractionCacheConcurrency:
    """Regression: ``get`` used to hold the cache-wide lock across the
    whole conformance run + extraction, serialising concurrent callers
    for *different* implementations behind one build."""

    def _patched_cache(self, monkeypatch, started, release):
        from repro.core import engine as engine_module
        from repro.core.engine import ExtractionRecord

        def fake_extraction(implementation, cases=None, chaos=None,
                            chaos_runs=1):
            if implementation == "slow":
                started.set()
                assert release.wait(timeout=10.0), "slow build never freed"
            return ExtractionRecord(implementation, fsm=None,
                                    extraction_seconds=0.0,
                                    coverage_percent=0.0,
                                    conformance_cases=0, log_lines=0)

        monkeypatch.setattr(engine_module, "run_extraction",
                            fake_extraction)
        return ExtractionCache()

    def test_different_keys_build_concurrently(self, monkeypatch):
        started, release = threading.Event(), threading.Event()
        cache = self._patched_cache(monkeypatch, started, release)
        slow = threading.Thread(target=cache.get, args=("slow",))
        slow.start()
        try:
            assert started.wait(timeout=10.0)
            # the slow build is in flight and must not block this key
            record = cache.get("fast")
            assert record.implementation == "fast"
            assert slow.is_alive()
        finally:
            release.set()
            slow.join(timeout=10.0)
        assert not slow.is_alive()
        assert cache.stats()["conformance_runs"] == 2

    def test_same_key_callers_share_one_build(self, monkeypatch):
        started, release = threading.Event(), threading.Event()
        cache = self._patched_cache(monkeypatch, started, release)
        results = []
        threads = [threading.Thread(
            target=lambda: results.append(cache.get("slow")))
            for _ in range(3)]
        for thread in threads:
            thread.start()
        assert started.wait(timeout=10.0)
        release.set()
        for thread in threads:
            thread.join(timeout=10.0)
        assert len(results) == 3
        assert all(record is results[0] for record in results)
        assert cache.stats()["conformance_runs"] == 1
        assert cache.stats()["hits"] >= 2


class TestSuiteFingerprint:
    """Regression: fingerprints keyed custom suites by ``__qualname__``
    alone, so lambdas/partials defined at the same site collided."""

    @staticmethod
    def _case(run):
        from repro.conformance import TestCase
        return TestCase(identifier="tc-1", procedure="attach",
                        description="fingerprint probe", run=run)

    def _fingerprint(self, run):
        return ExtractionCache.fingerprint("srsue", [self._case(run)])

    def test_same_site_lambdas_get_distinct_keys(self):
        def factory(value):
            return lambda ctx: value
        assert self._fingerprint(factory(1)) != self._fingerprint(factory(2))

    def test_equal_closures_get_equal_keys(self):
        def factory(value):
            return lambda ctx: value
        assert self._fingerprint(factory(7)) == self._fingerprint(factory(7))

    def test_same_site_partials_get_distinct_keys(self):
        def run(value, ctx):
            return value
        assert self._fingerprint(functools.partial(run, 1)) \
            != self._fingerprint(functools.partial(run, 2))

    def test_default_suite_key_is_stable(self):
        assert ExtractionCache.fingerprint("srsue") \
            == ExtractionCache.fingerprint("srsue")
        assert ExtractionCache.fingerprint("srsue") \
            != ExtractionCache.fingerprint("oai")

    def test_distinct_case_lists_distinct_keys(self):
        suite = full_suite("srsue")
        assert ExtractionCache.fingerprint("srsue", suite[:5]) \
            != ExtractionCache.fingerprint("srsue", suite[:6])


# ---------------------------------------------------------------------------
# AnalysisConfig
# ---------------------------------------------------------------------------
class TestAnalysisConfig:
    def test_property_id_filter(self):
        config = AnalysisConfig("reference",
                                property_ids=("SEC-01", "PRIV-08"))
        selected = config.resolved_properties()
        assert [p.identifier for p in selected] == ["SEC-01", "PRIV-08"]

    def test_category_filter(self):
        config = AnalysisConfig("reference", category="privacy")
        selected = config.resolved_properties()
        assert selected
        assert all(p.category == "privacy" for p in selected)

    def test_unknown_property_id_rejected(self):
        with pytest.raises(EngineError):
            AnalysisConfig("reference",
                           property_ids=("NOPE-1",)).resolved_properties()

    def test_unknown_category_rejected(self):
        with pytest.raises(EngineError):
            AnalysisConfig("reference",
                           category="astrology").resolved_properties()

    def test_resolved_jobs_floor(self):
        assert AnalysisConfig("reference", jobs=0).resolved_jobs() == 1
        assert AnalysisConfig("reference", jobs=3).resolved_jobs() == 3
        assert AnalysisConfig("reference").resolved_jobs() >= 1

    def test_config_implementation_mismatch_rejected(self):
        with pytest.raises(ProCheckerError):
            ProChecker("oai", config=AnalysisConfig("srsue"))

    def test_grouping_covers_catalog_without_duplicates(self):
        groups = group_properties(ALL_PROPERTIES)
        flattened = [p.identifier for group in groups for p in group]
        assert sorted(flattened) \
            == sorted(p.identifier for p in ALL_PROPERTIES)
        assert len(groups) < len(ALL_PROPERTIES)  # LTL configs shared


# ---------------------------------------------------------------------------
# Deprecation shim (removed with the repro.api facade)
# ---------------------------------------------------------------------------
def test_analyze_implementation_shim_removed():
    """The PR 1 shim completed its deprecation cycle; the supported
    entry points are ProChecker.from_config / analyze_many (re-exported
    by repro.api)."""
    import repro
    import repro.api
    import repro.core
    for module in (repro, repro.core, repro.api):
        assert not hasattr(module, "analyze_implementation")
        assert "analyze_implementation" not in module.__all__


# ---------------------------------------------------------------------------
# Serialization round-trips
# ---------------------------------------------------------------------------
class TestSerialization:
    def test_property_result_round_trip(self, serial_reports):
        report = serial_reports["srsue"]
        for result in (report.result_for("SEC-37"),
                       report.result_for("SEC-01")):
            payload = json.loads(json.dumps(result.to_dict()))
            restored = PropertyResult.from_dict(payload)
            assert restored.signature() == result.signature()
            if result.counterexample is not None:
                assert restored.counterexample.initial_state \
                    == result.counterexample.initial_state
                assert len(restored.counterexample.steps) \
                    == len(result.counterexample.steps)

    def test_report_round_trip(self, serial_reports):
        report = serial_reports["oai"]
        payload = json.loads(json.dumps(report.to_dict()))
        restored = AnalysisReport.from_dict(payload)
        assert restored.verdict_signature() == report.verdict_signature()
        assert restored.implementation == report.implementation
        assert restored.jobs == report.jobs
        assert restored.detected_attacks() == report.detected_attacks()

    def test_attack_result_round_trip(self):
        result = run_attack("I3", "srsue")
        payload = json.loads(json.dumps(result.to_dict(), default=str))
        restored = AttackResult.from_dict(payload)
        assert restored.attack_id == result.attack_id
        assert restored.succeeded == result.succeeded
        assert restored.evidence == result.evidence

    def test_attack_outcome_alias(self):
        assert AttackOutcome is AttackResult


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------
class TestCli:
    def test_verify_json_output(self, capsys):
        code = cli_main(["verify", "reference", "SEC-37", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["property"] == "SEC-37"
        assert payload["verdict"] == "verified"

    def test_verify_not_applicable_exit_code(self):
        # PRIV-07 is a dash row for the reference UE in Table I.
        assert cli_main(["verify", "reference", "PRIV-07",
                         "--quiet"]) == 3

    def test_verify_violated_exit_code(self):
        assert cli_main(["verify", "srsue", "SEC-01", "--quiet"]) == 1

    def test_attack_json_output(self, capsys):
        code = cli_main(["attack", "P1", "reference", "--json"])
        assert code == 1  # attack succeeded
        payload = json.loads(capsys.readouterr().out)
        assert payload["attack_id"] == "P1"
        assert payload["succeeded"] is True

    def test_analyze_json_output(self, capsys):
        code = cli_main(["analyze", "reference", "--jobs", "2", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["implementation"] == "reference"
        assert payload["jobs"] == 2
        assert len(payload["results"]) == 62


class TestExtractionCacheChaosKeys:
    """Chaos extractions are cached under their own (config, runs) key,
    never aliasing the clean entry."""

    def test_chaos_key_distinct_from_clean(self):
        from repro.lte.channel import ChaosConfig

        extraction_cache.clear()
        clean = extraction_cache.get("reference")
        chaotic = extraction_cache.get(
            "reference", chaos=ChaosConfig.default(), chaos_runs=2)
        assert chaotic is not clean
        assert clean.stability is None
        assert chaotic.stability is not None
        assert chaotic.stability.runs == 2

    def test_same_chaos_config_hits_the_cache(self):
        from repro.lte.channel import ChaosConfig

        extraction_cache.clear()
        first = extraction_cache.get(
            "reference", chaos=ChaosConfig.default(), chaos_runs=2)
        hits_before = extraction_cache.stats()["hits"]
        second = extraction_cache.get(
            "reference", chaos=ChaosConfig.default(), chaos_runs=2)
        assert second is first
        assert extraction_cache.stats()["hits"] == hits_before + 1

    def test_different_seed_is_a_different_key(self):
        from repro.lte.channel import ChaosConfig

        extraction_cache.clear()
        first = extraction_cache.get(
            "reference", chaos=ChaosConfig.default(seed=0), chaos_runs=2)
        other = extraction_cache.get(
            "reference", chaos=ChaosConfig.default(seed=9), chaos_runs=2)
        assert other is not first
