"""Observational distinguishability (linkability) tests."""

from repro.cpv.equivalence import (Frame, distinguishable,
                                   linkability_experiment)
from repro.cpv.terms import Atom, KIND_DATA, Mac, const, nonce, secret_key

K = secret_key("k")


def frame_of(*observations):
    frame = Frame()
    for label, term in observations:
        frame.observe(label, term)
    return frame


class TestLabelOracle:
    def test_different_response_types_distinguish(self):
        """The P2 test: auth_response vs auth_mac_failure."""
        victim = frame_of(("authentication_response", const("res")))
        other = frame_of(("auth_mac_failure", const("fail")))
        verdict = distinguishable(victim, other)
        assert verdict
        assert "authentication_response" in verdict.test

    def test_different_lengths_distinguish(self):
        victim = frame_of(("a", const("x")))
        other = frame_of(("a", const("x")), ("b", const("y")))
        assert distinguishable(victim, other)

    def test_identical_frames_indistinguishable(self):
        first = frame_of(("a", const("x")))
        second = frame_of(("a", const("x")))
        assert not distinguishable(first, second)


class TestEqualityTests:
    def test_value_reuse_distinguishes(self):
        """GUTI reuse: w0 = w1 holds in one world only."""
        guti = Atom("guti:1234", KIND_DATA)
        fresh = Atom("guti:5678", KIND_DATA)
        linkable = frame_of(("paging", guti), ("paging", guti))
        unlinkable = frame_of(("paging", guti), ("paging", fresh))
        verdict = distinguishable(linkable, unlinkable)
        assert verdict
        assert "w0 = w1" in verdict.test

    def test_same_reuse_pattern_indistinguishable(self):
        a = Atom("id:a", KIND_DATA)
        b = Atom("id:b", KIND_DATA)
        first = frame_of(("m", a), ("m", a))
        second = frame_of(("m", b), ("m", b))
        assert not distinguishable(first, second)


class TestDerivabilityTests:
    def test_probe_term_distinguishes(self):
        imsi = Atom("imsi:001010000000001", KIND_DATA)
        leaking = frame_of(("identity_response", imsi))
        silent = frame_of(("identity_response",
                           Mac(const("guti"), K)))
        verdict = distinguishable(leaking, silent, probe_terms=[imsi])
        assert verdict

    def test_equal_knowledge_indistinguishable(self):
        n = nonce("n")
        first = frame_of(("m", Mac(n, K)))
        second = frame_of(("m", Mac(n, K)))
        assert not distinguishable(first, second, probe_terms=[n])


class TestLinkabilityExperiment:
    def test_p2_style_experiment(self):
        verdict = linkability_experiment(
            victim_responses=[("authentication_response", const("res"))],
            other_responses=[("auth_mac_failure", const("fail"))])
        assert verdict.distinguishable

    def test_uniform_responses_safe(self):
        verdict = linkability_experiment(
            victim_responses=[("auth_mac_failure", const("fail"))],
            other_responses=[("auth_mac_failure", const("fail"))])
        assert not verdict.distinguishable
