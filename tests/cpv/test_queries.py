"""Tests for secrecy, correspondence and feasibility queries."""

import pytest

from repro.cpv.protocol import ProtocolError, ProtocolTrace, Event
from repro.cpv.queries import (ACTION_DROP, ACTION_INJECT, ACTION_REPLAY,
                               AdversaryAction, check_action_feasible,
                               check_correspondence,
                               check_counterexample_feasibility,
                               check_secrecy)
from repro.cpv.deduction import Knowledge
from repro.cpv.terms import Mac, Pair, SEnc, const, nonce, secret_key

K = secret_key("k")
N = nonce("n")


def sample_trace():
    trace = ProtocolTrace()
    trace.send("ue", "attach_request", const("attach_request"))
    trace.send("mme", "challenge", Pair(const("auth"), SEnc(N, K)))
    trace.claim("ue", "authenticated", const("auth"))
    return trace


class TestTrace:
    def test_event_kinds_validated(self):
        with pytest.raises(ProtocolError):
            Event("teleport", "ue", "x", const("t"))

    def test_send_requires_term(self):
        with pytest.raises(ProtocolError):
            Event("send", "ue", "x", None)

    def test_adversary_knowledge_collects_sends(self):
        knowledge = sample_trace().adversary_knowledge()
        assert knowledge.can_construct(const("attach_request"))
        assert not knowledge.can_construct(N)

    def test_knowledge_before_excludes_later(self):
        trace = sample_trace()
        early = trace.knowledge_before(1)
        assert not early.can_construct(Pair(const("auth"), SEnc(N, K)))


class TestSecrecy:
    def test_secret_preserved(self):
        result = check_secrecy(sample_trace(), N)
        assert result.satisfied

    def test_leak_detected(self):
        trace = sample_trace()
        trace.send("mme", "oops", K)
        result = check_secrecy(trace, N)
        assert not result.satisfied


class TestCorrespondence:
    def test_claim_with_cause(self):
        trace = ProtocolTrace()
        trace.send("mme", "challenge", const("c"))
        trace.claim("ue", "done")
        result = check_correspondence(trace, "done", "challenge")
        assert result.satisfied

    def test_claim_without_cause(self):
        trace = ProtocolTrace()
        trace.claim("ue", "done")
        result = check_correspondence(trace, "done", "challenge")
        assert not result.satisfied

    def test_injective_requires_one_cause_each(self):
        trace = ProtocolTrace()
        trace.send("mme", "challenge", const("c"))
        trace.claim("ue", "done")
        trace.claim("ue", "done")
        assert check_correspondence(trace, "done", "challenge").satisfied
        assert not check_correspondence(trace, "done", "challenge",
                                        injective=True).satisfied


class TestFeasibility:
    def test_drop_always_feasible(self):
        verdict = check_action_feasible(
            AdversaryAction(ACTION_DROP, "anything"), Knowledge())
        assert verdict.satisfied

    def test_replay_requires_observation(self):
        term = Mac(const("m"), K)
        knowledge = Knowledge()
        action = AdversaryAction(ACTION_REPLAY, "m", term)
        assert not check_action_feasible(action, knowledge).satisfied
        knowledge.observe(term)
        assert check_action_feasible(action, knowledge).satisfied

    def test_inject_plaintext_feasible(self):
        action = AdversaryAction(ACTION_INJECT, "paging", const("paging"))
        assert check_action_feasible(action, Knowledge()).satisfied

    def test_inject_mac_requires_key(self):
        forged = Pair(const("m"), Mac(const("m"), K))
        action = AdversaryAction(ACTION_INJECT, "m", forged)
        assert not check_action_feasible(action, Knowledge()).satisfied
        assert check_action_feasible(action, Knowledge({K})).satisfied

    def test_counterexample_batch_validation(self):
        trace = ProtocolTrace()
        trace.send("mme", "challenge", const("c"))
        trace.claim("adversary", "adv:replay:challenge")
        actions = [AdversaryAction(ACTION_REPLAY, "challenge", const("c"))]
        verdict = check_counterexample_feasibility(actions, trace)
        assert verdict.all_feasible
        assert verdict.first_infeasible() is None

    def test_counterexample_with_infeasible_step(self):
        trace = ProtocolTrace()
        trace.claim("adversary", "adv:inject:m")
        forged = Mac(const("m"), K)
        actions = [AdversaryAction(ACTION_INJECT, "m", forged)]
        verdict = check_counterexample_feasibility(actions, trace)
        assert not verdict.all_feasible
        assert verdict.first_infeasible().message_label == "m"
