"""Dolev-Yao deduction tests: the heart of the ProVerif stand-in."""

from hypothesis import given, strategies as st

from repro.cpv.deduction import Knowledge, can_derive, saturate
from repro.cpv.terms import (Atom, Hash, KDF, Mac, Pair, SEnc, const,
                             nonce, pair, secret_key)

K = secret_key("k")
K2 = secret_key("k2")
N = nonce("n")
TAG = const("tag")


class TestSaturation:
    def test_pairs_decompose(self):
        closure = saturate({Pair(N, TAG)})
        assert N in closure

    def test_encryption_stays_opaque_without_key(self):
        closure = saturate({SEnc(N, K)})
        assert N not in closure

    def test_encryption_opens_with_key(self):
        closure = saturate({SEnc(N, K), K})
        assert N in closure

    def test_key_from_decrypted_payload(self):
        """Keys recovered from one ciphertext open another (fixpoint)."""
        closure = saturate({SEnc(K2, K), K, SEnc(N, K2)})
        assert N in closure

    def test_mac_never_decomposes(self):
        closure = saturate({Mac(N, K), K})
        assert N not in closure

    def test_hash_never_inverts(self):
        closure = saturate({Hash(N)})
        assert N not in closure


class TestSynthesis:
    def test_public_atoms_always_derivable(self):
        assert can_derive(set(), TAG)

    def test_secret_atoms_not_derivable(self):
        assert not can_derive(set(), K)

    def test_compose_pair(self):
        assert can_derive({N}, Pair(N, TAG))

    def test_compose_encryption_needs_key(self):
        assert can_derive({N, K}, SEnc(N, K))
        assert not can_derive({N}, SEnc(N, K))

    def test_compose_mac_needs_key(self):
        assert can_derive({K}, Mac(TAG, K))
        assert not can_derive(set(), Mac(TAG, K))

    def test_known_term_directly_derivable(self):
        """A MAC observed on the wire can be replayed without the key."""
        tag_term = Mac(N, K)
        assert can_derive({tag_term}, tag_term)

    def test_kdf_one_way(self):
        derived = KDF(K, const("ctx"))
        assert can_derive({K}, derived)
        assert not can_derive({derived}, K)

    def test_forward_then_extract(self):
        """<senc(n,k), k> as one observed pair leaks n."""
        bundle = Pair(SEnc(N, K), K)
        assert can_derive({bundle}, N)


class TestKnowledge:
    def test_incremental_observation(self):
        knowledge = Knowledge()
        assert not knowledge.can_construct(N)
        knowledge.observe(Pair(N, TAG))
        assert knowledge.can_construct(N)

    def test_contains_operator(self):
        knowledge = Knowledge({N})
        assert N in knowledge
        assert Pair(N, TAG) in knowledge

    def test_knows_atom_secrecy(self):
        knowledge = Knowledge({SEnc(N, K)})
        assert not knowledge.knows_atom(N)
        knowledge.observe(K)
        assert knowledge.knows_atom(N)

    def test_copy_is_independent(self):
        knowledge = Knowledge({N})
        clone = knowledge.copy()
        clone.observe(K)
        assert not knowledge.can_construct(SEnc(N, K))
        assert clone.can_construct(SEnc(N, K))

    def test_observed_returns_raw_set(self):
        knowledge = Knowledge()
        knowledge.observe(Pair(N, TAG))
        assert Pair(N, TAG) in knowledge.observed()
        assert N not in knowledge.observed()   # derived, not raw


_ATOMS = st.sampled_from([N, TAG, K, K2, const("x"), nonce("m")])


@st.composite
def terms(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        return draw(_ATOMS)
    kind = draw(st.sampled_from(["pair", "senc", "mac", "hash"]))
    left = draw(terms(depth=depth + 1))
    if kind == "hash":
        return Hash(left)
    right = draw(terms(depth=depth + 1))
    if kind == "pair":
        return Pair(left, right)
    if kind == "senc":
        return SEnc(left, right)
    return Mac(left, right)


class TestDeductionProperties:
    @given(st.sets(terms(), max_size=5), terms())
    def test_monotonicity(self, knowledge, goal):
        """More knowledge never removes derivability."""
        if can_derive(knowledge, goal):
            assert can_derive(knowledge | {const("extra")}, goal)

    @given(st.sets(terms(), max_size=5), terms())
    def test_observed_terms_always_derivable(self, knowledge, goal):
        assert can_derive(knowledge | {goal}, goal)

    @given(st.sets(terms(), max_size=4), terms(), terms())
    def test_pair_derivable_iff_components(self, knowledge, left, right):
        target = Pair(left, right)
        if target not in saturate(knowledge):
            both = can_derive(knowledge, left) \
                and can_derive(knowledge, right)
            assert can_derive(knowledge, target) == both

    @given(st.sets(terms(), max_size=5))
    def test_saturation_idempotent(self, knowledge):
        once = saturate(knowledge)
        assert saturate(once) == once
