"""Tests for the DY term algebra."""

import pytest

from repro.cpv.terms import (Atom, Hash, KDF, Mac, Pair, SEnc, TermError,
                             const, identity, nonce, pair, secret_key,
                             unpair)


class TestAtoms:
    def test_kinds_validated(self):
        with pytest.raises(TermError):
            Atom("x", kind="banana")

    def test_helpers(self):
        assert const("tag").public
        assert not secret_key("k").public
        assert nonce("n").kind == "nonce"
        assert identity("imsi").kind == "identity"

    def test_hashable_and_equal(self):
        assert const("a") == const("a")
        assert {const("a"), const("a")} == {const("a")}


class TestStructure:
    def test_subterms(self):
        term = SEnc(Pair(const("a"), nonce("n")), secret_key("k"))
        atoms = {a.name for a in term.atoms()}
        assert atoms == {"a", "n", "k"}
        assert term.size() == 5

    def test_mac_and_hash_subterms(self):
        term = Mac(Hash(const("body")), secret_key("k"))
        assert {a.name for a in term.atoms()} == {"body", "k"}

    def test_kdf(self):
        term = KDF(secret_key("kasme"), const("nas-int"))
        assert {a.name for a in term.atoms()} == {"kasme", "nas-int"}

    def test_str_representations(self):
        term = Pair(const("a"), Mac(const("b"), secret_key("k")))
        assert str(term) == "<a, mac(b, k)>"


class TestPairing:
    def test_pair_unpair_roundtrip(self):
        parts = (const("a"), const("b"), const("c"), nonce("n"))
        assert unpair(pair(*parts)) == parts

    def test_single_element(self):
        assert pair(const("a")) == const("a")
        assert unpair(const("a")) == (const("a"),)

    def test_empty_rejected(self):
        with pytest.raises(TermError):
            pair()

    def test_right_nesting(self):
        term = pair(const("a"), const("b"), const("c"))
        assert isinstance(term, Pair)
        assert term.left == const("a")
        assert isinstance(term.right, Pair)
