"""ProtocolTrace API tests (event bookkeeping)."""

from repro.cpv.protocol import (EVENT_CLAIM, EVENT_RECV, EVENT_SEND,
                                ProtocolTrace)
from repro.cpv.terms import const, nonce


def make_trace():
    trace = ProtocolTrace()
    trace.send("ue", "attach_request", const("attach_request"))
    trace.recv("mme", "attach_request", const("attach_request"))
    trace.send("mme", "challenge", nonce("n"))
    trace.claim("ue", "done")
    return trace


class TestTraceApi:
    def test_event_kinds(self):
        trace = make_trace()
        kinds = [event.kind for event in trace]
        assert kinds == [EVENT_SEND, EVENT_RECV, EVENT_SEND, EVENT_CLAIM]

    def test_labels(self):
        assert make_trace().labels() == [
            "attach_request", "attach_request", "challenge", "done"]

    def test_find(self):
        trace = make_trace()
        indices = list(trace.find(lambda e: e.principal == "mme"))
        assert indices == [1, 2]

    def test_len(self):
        assert len(make_trace()) == 4

    def test_claims_do_not_feed_knowledge(self):
        trace = ProtocolTrace()
        trace.claim("ue", "secret_event", nonce("n"))
        knowledge = trace.adversary_knowledge()
        assert not knowledge.can_construct(nonce("n"))

    def test_recv_events_do_not_feed_knowledge(self):
        """Only transmissions are observable; a receive is the same wire
        event and must not double-count."""
        trace = ProtocolTrace()
        trace.recv("ue", "m", nonce("n"))
        assert not trace.adversary_knowledge().can_construct(nonce("n"))

    def test_initial_knowledge_threaded(self):
        trace = make_trace()
        knowledge = trace.adversary_knowledge(initial=[nonce("k")])
        assert knowledge.can_construct(nonce("k"))
