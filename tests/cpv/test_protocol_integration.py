"""Correspondence queries over real testbed traffic.

Builds a :class:`ProtocolTrace` from an actual attach exchange and poses
the authenticity (correspondence) queries of Section VI — connecting the
CPV's event layer to the substrate it verifies.
"""

import pytest

from repro.cpv.protocol import ProtocolTrace
from repro.cpv.queries import check_correspondence, check_secrecy
from repro.cpv.terms import Atom, KIND_KEY
from repro.lte import constants as c
from repro.lte.messages import NasMessage
from repro.testbed import Attacker, Testbed
from repro.testbed.attacker import _message_term


def attach_trace(implementation="reference"):
    """Run a real attach and lift the link history into a CPV trace."""
    testbed = Testbed(implementation)
    station = testbed.add_ue("victim")
    testbed.attach_all()
    trace = ProtocolTrace()
    for record in station.link.history:
        message = NasMessage.from_wire(record.frame)
        principal = "ue" if record.direction == "uplink" else "mme"
        trace.send(principal, message.name, _message_term(message))
        # claim events mirror protocol milestones
        if message.name == c.AUTHENTICATION_RESPONSE:
            trace.claim("ue", "ue_authenticated")
        if message.name == c.ATTACH_COMPLETE:
            trace.claim("ue", "ue_registered")
        if message.name == c.ATTACH_ACCEPT:
            trace.claim("mme", "mme_accepted")
    return testbed, station, trace


class TestAttachCorrespondence:
    def test_registration_implies_network_acceptance(self):
        _testbed, _station, trace = attach_trace()
        result = check_correspondence(trace, "ue_registered",
                                      "attach_accept")
        assert result.satisfied

    def test_authentication_implies_challenge(self):
        _testbed, _station, trace = attach_trace()
        result = check_correspondence(trace, "ue_authenticated",
                                      "authentication_request",
                                      injective=True)
        assert result.satisfied

    def test_acceptance_implies_security_mode_completion(self):
        _testbed, _station, trace = attach_trace()
        result = check_correspondence(trace, "mme_accepted",
                                      "security_mode_complete")
        assert result.satisfied

    def test_fabricated_claim_fails(self):
        _testbed, _station, trace = attach_trace()
        trace.claim("ue", "ue_registered")   # a second registration...
        result = check_correspondence(trace, "ue_registered",
                                      "attach_accept", injective=True)
        assert not result.satisfied          # ...with no second accept


class TestAttachSecrecy:
    def test_session_keys_not_on_the_wire(self):
        _testbed, station, trace = attach_trace()
        context = station.ue.security_ctx
        for key in (context.kasme, context.k_nas_int):
            secret = Atom(f"key:{key.hex()}", KIND_KEY)
            assert check_secrecy(trace, secret).satisfied

    def test_observed_identifiers_are_derivable(self):
        """Sanity: what genuinely crossed the channel IS in the
        adversary's knowledge (the IMSI travels in the initial attach)."""
        _testbed, station, trace = attach_trace()
        knowledge = trace.adversary_knowledge()
        from repro.cpv.terms import KIND_DATA
        imsi_atom = Atom(f"imsi:{station.subscriber.imsi}", KIND_DATA)
        assert knowledge.can_construct(imsi_atom)
