"""Content-addressed result store: identity, round-trip, quarantine."""

import json

import pytest

from repro import schema
from repro.core import AnalysisConfig, AnalysisReport, ProChecker
from repro.faults import FaultPlan
from repro.store import (ResultStore, StoreError, catalog_digest,
                         implementation_fingerprint, job_digest, job_key)

SMALL = ["SEC-01", "SEC-02"]


class TestJobIdentity:
    def test_digest_is_hex_sha256(self):
        digest = job_digest(AnalysisConfig("srsue", property_ids=SMALL))
        assert len(digest) == 64
        int(digest, 16)

    def test_digest_stable_across_jobs_widths(self):
        # Scheduling knobs are excluded from the identity: the engine's
        # determinism contract makes the verdicts identical across
        # --jobs widths, so the cache must hit regardless of width.
        narrow = AnalysisConfig("srsue", property_ids=SMALL, jobs=1)
        wide = AnalysisConfig("srsue", property_ids=SMALL, jobs=4,
                              group_timeout_seconds=5.0,
                              max_group_retries=3)
        assert job_digest(narrow) == job_digest(wide)

    def test_digest_varies_with_inputs(self):
        base = AnalysisConfig("srsue", property_ids=SMALL)
        assert job_digest(base) != job_digest(
            AnalysisConfig("oai", property_ids=SMALL))
        assert job_digest(base) != job_digest(
            AnalysisConfig("srsue", property_ids=["SEC-01"]))

    def test_fingerprint_tracks_source(self):
        fp = implementation_fingerprint("srsue")
        assert len(fp) == 64
        assert fp != implementation_fingerprint("oai")
        with pytest.raises(StoreError):
            implementation_fingerprint("huawei")

    def test_catalog_digest_covers_threat_config(self):
        assert (catalog_digest(AnalysisConfig("srsue", property_ids=SMALL))
                != catalog_digest(AnalysisConfig("srsue",
                                                 property_ids=["SEC-01"])))

    def test_fault_plans_are_uncacheable(self):
        plan = FaultPlan.parse(["engine.verify_group@SEC-01:raise:1"])
        config = AnalysisConfig("srsue", property_ids=SMALL,
                                fault_plan=plan)
        with pytest.raises(StoreError, match="fault"):
            job_key(config)

    def test_key_names_every_identity_axis(self):
        key = job_key(AnalysisConfig("srsue", property_ids=SMALL))
        assert key["implementation"] == "srsue"
        assert set(key) >= {"implementation", "implementation_fingerprint",
                            "catalog"}
        assert "jobs" not in key


class TestResultStore:
    def _analyze(self, config):
        return ProChecker.from_config(config).analyze()

    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        config = AnalysisConfig("srsue", property_ids=SMALL, jobs=1)
        report = self._analyze(config)
        digest = job_digest(config)
        store.put(digest, report.to_dict(), key=job_key(config))
        assert store.contains(digest)
        payload = store.get(digest)
        rebuilt = AnalysisReport.from_dict(payload)
        assert rebuilt.verdict_signature() == report.verdict_signature()
        assert store.digests() == [digest]

    def test_miss_returns_none(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.get("0" * 64) is None
        assert not store.contains("0" * 64)

    def test_bad_digest_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(StoreError):
            store.path_for("../../etc/passwd")
        with pytest.raises(StoreError):
            store.path_for("zz" * 32)

    def test_corrupted_entry_quarantined(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        config = AnalysisConfig("srsue", property_ids=SMALL)
        digest = job_digest(config)
        store.put(digest, self._analyze(config).to_dict(),
                  key=job_key(config))
        path = store.path_for(digest)
        path.write_text("{ not json")
        # A corrupt entry reads as a miss, never as an exception, and is
        # moved aside so the next write can repopulate the slot.
        assert store.get(digest) is None
        assert not path.exists()
        quarantined = list((store.root / "quarantine").iterdir())
        assert len(quarantined) == 1

    def test_digest_mismatch_quarantined(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        config = AnalysisConfig("srsue", property_ids=SMALL)
        digest = job_digest(config)
        entry = schema.stamp({"digest": "f" * 64, "key": {},
                              "report": {"implementation": "srsue"}})
        path = store.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(entry))
        assert store.get(digest) is None
        assert not path.exists()

    def test_future_major_entry_quarantined(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        config = AnalysisConfig("srsue", property_ids=SMALL)
        digest = job_digest(config)
        store.put(digest, self._analyze(config).to_dict(),
                  key=job_key(config))
        path = store.path_for(digest)
        entry = json.loads(path.read_text())
        entry[schema.SCHEMA_KEY] = "99.0"
        path.write_text(json.dumps(entry))
        assert store.get(digest) is None

    def test_stats_count_traffic(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        config = AnalysisConfig("srsue", property_ids=SMALL)
        digest = job_digest(config)
        store.get(digest)
        store.put(digest, self._analyze(config).to_dict(),
                  key=job_key(config))
        store.get(digest)
        stats = store.stats()
        assert stats["entries"] == 1
