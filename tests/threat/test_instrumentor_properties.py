"""Property-based tests: threat-model invariants over random FSMs."""

from hypothesis import given, settings, strategies as st

from repro.fsm import FiniteStateMachine, NULL_ACTION
from repro.lte import constants as c
from repro.mc import ModelChecker, parse_ltl
from repro.threat import ThreatConfig, build_threat_model


def check_ltl(model, formula, name="property"):
    return ModelChecker().check_formula(model, formula, name)

_UE_STATES = ("S0", "S1", "S2")
_MME_STATES = ("M0", "M1")
_DL_MESSAGES = (c.PAGING, c.ATTACH_REJECT, c.IDENTITY_REQUEST)
_UL_MESSAGES = (c.ATTACH_REQUEST, c.SERVICE_REQUEST, c.IDENTITY_RESPONSE)


@st.composite
def random_ue_fsm(draw):
    fsm = FiniteStateMachine(name="ue", initial_state=_UE_STATES[0])
    fsm.add_transition(_UE_STATES[0], draw(st.sampled_from(_UE_STATES)),
                       ("internal_power_on",), (c.ATTACH_REQUEST,))
    for _ in range(draw(st.integers(1, 5))):
        source = draw(st.sampled_from(_UE_STATES))
        target = draw(st.sampled_from(_UE_STATES))
        trigger = draw(st.sampled_from(_DL_MESSAGES))
        action = draw(st.sampled_from(_UL_MESSAGES + (NULL_ACTION,)))
        fsm.add_transition(source, target, (trigger,), (action,))
    return fsm


@st.composite
def random_mme_fsm(draw):
    fsm = FiniteStateMachine(name="mme", initial_state=_MME_STATES[0])
    for _ in range(draw(st.integers(1, 4))):
        source = draw(st.sampled_from(_MME_STATES))
        target = draw(st.sampled_from(_MME_STATES))
        trigger = draw(st.sampled_from(_UL_MESSAGES))
        action = draw(st.sampled_from(_DL_MESSAGES + (NULL_ACTION,)))
        fsm.add_transition(source, target, (trigger,), (action,))
    return fsm


@st.composite
def random_config(draw):
    return ThreatConfig(
        replay_dl=tuple(draw(st.sets(st.sampled_from(_DL_MESSAGES),
                                     max_size=1))),
        inject_dl=tuple(draw(st.sets(st.sampled_from(_DL_MESSAGES),
                                     max_size=1))),
        allow_drop=draw(st.booleans()),
    )


class TestModelInvariants:
    @settings(max_examples=25, deadline=None)
    @given(random_ue_fsm(), random_mme_fsm(), random_config())
    def test_scheduler_always_rotates(self, ue_fsm, mme_fsm, config):
        """Whatever machines and adversary: the UE acts infinitely often
        (no turn can wedge — the skip commands guarantee progress)."""
        model = build_threat_model(ue_fsm, mme_fsm, config)
        result = check_ltl(model,
                           parse_ltl("G (F (turn = ue))",
                                     model.variable_names),
                           "rotation")
        assert result.holds

    @settings(max_examples=25, deadline=None)
    @given(random_ue_fsm(), random_mme_fsm(), random_config())
    def test_states_stay_in_domain(self, ue_fsm, mme_fsm, config):
        """Reachable ue_state/mme_state values come from the FSMs."""
        model = build_threat_model(ue_fsm, mme_fsm, config)
        ue_ok = " | ".join(f"ue_state = {state}"
                           for state in sorted(ue_fsm.states))
        result = check_ltl(model,
                           parse_ltl(f"G ({ue_ok})",
                                     model.variable_names),
                           "domain")
        assert result.holds

    @settings(max_examples=15, deadline=None)
    @given(random_ue_fsm(), random_mme_fsm())
    def test_passive_model_has_no_adversary_commands(self, ue_fsm,
                                                     mme_fsm):
        model = build_threat_model(ue_fsm, mme_fsm,
                                   ThreatConfig(allow_drop=False))
        labels = {command.label for command in model.commands}
        adversarial = {label for label in labels
                       if label.startswith("adv_")
                       and not label.startswith("adv_pass")}
        assert not adversarial

    @settings(max_examples=15, deadline=None)
    @given(random_ue_fsm(), random_mme_fsm(), random_config())
    def test_honest_metadata_invariant(self, ue_fsm, mme_fsm, config):
        """A message with dl_injected=1 on the channel can only be there
        while an inject capability exists."""
        model = build_threat_model(ue_fsm, mme_fsm, config)
        if config.inject_dl:
            return  # injections legitimately occur
        result = check_ltl(model,
                           parse_ltl("G (dl_injected = 0)",
                                     model.variable_names),
                           "no-injection")
        assert result.holds
