"""Soundness link between the concrete USIM and the relational abstraction.

The threat model classifies every delivered authentication SQN as
``fresh`` / ``equal`` / ``stale_in`` / ``stale_out`` relative to the
receiver's state.  These tests pin the classification to the *concrete*
TS 33.102 Annex C array: for random histories,

- a value the real USIM accepts is never classified ``stale_out``;
- a value the real USIM rejects is never classified ``fresh``;
- ``equal`` classification matches slot-exact repetition.

That is the soundness direction the CEGAR loop relies on: every concrete
behaviour has a representative in the abstract relation, so no real
counterexample is abstracted away.
"""

from hypothesis import given, settings, strategies as st

from repro.lte.sqn import Sqn, UsimSqnArray

IND_BITS = 3   # a small array keeps collisions frequent in the tests


def classify(usim: UsimSqnArray, sqn: Sqn) -> str:
    """The abstraction's view of a delivered SQN given concrete state."""
    if sqn.seq > usim.highest_accepted_seq:
        return "fresh"
    if sqn.seq == usim.slots[sqn.ind]:
        return "equal"
    if usim.peek(sqn).accepted:
        return "stale_in"
    return "stale_out"


_HISTORY = st.lists(
    st.tuples(st.integers(1, 30), st.integers(0, (1 << IND_BITS) - 1)),
    min_size=0, max_size=30)
_PROBE = st.tuples(st.integers(1, 30),
                   st.integers(0, (1 << IND_BITS) - 1))


class TestClassificationSoundness:
    @settings(max_examples=200, deadline=None)
    @given(_HISTORY, _PROBE)
    def test_accepted_never_stale_out(self, history, probe):
        usim = UsimSqnArray(ind_bits=IND_BITS)
        for seq, ind in history:
            usim.verify(Sqn(seq, ind, ind_bits=IND_BITS))
        sqn = Sqn(probe[0], probe[1], ind_bits=IND_BITS)
        relation = classify(usim, sqn)
        if usim.peek(sqn).accepted:
            assert relation in ("fresh", "stale_in")

    @settings(max_examples=200, deadline=None)
    @given(_HISTORY, _PROBE)
    def test_rejected_never_fresh(self, history, probe):
        usim = UsimSqnArray(ind_bits=IND_BITS)
        for seq, ind in history:
            usim.verify(Sqn(seq, ind, ind_bits=IND_BITS))
        sqn = Sqn(probe[0], probe[1], ind_bits=IND_BITS)
        relation = classify(usim, sqn)
        if not usim.peek(sqn).accepted:
            assert relation in ("equal", "stale_out")

    @settings(max_examples=100, deadline=None)
    @given(_HISTORY)
    def test_replay_of_last_accept_is_equal_or_stale(self, history):
        """A byte-exact replay (the I3 probe) is never 'fresh'."""
        usim = UsimSqnArray(ind_bits=IND_BITS)
        last_accepted = None
        for seq, ind in history:
            sqn = Sqn(seq, ind, ind_bits=IND_BITS)
            if usim.verify(sqn).accepted:
                last_accepted = sqn
        if last_accepted is None:
            return
        relation = classify(usim, last_accepted)
        assert relation in ("equal", "stale_out", "stale_in")
        assert relation != "fresh"

    def test_p1_scenario_is_stale_in(self):
        """The P1 window is exactly the ``stale_in`` relation: captured
        (never delivered), overtaken in another slot, still accepted."""
        usim = UsimSqnArray(ind_bits=IND_BITS)
        captured = Sqn(2, 2, ind_bits=IND_BITS)    # withheld by attacker
        usim.verify(Sqn(1, 1, ind_bits=IND_BITS))
        usim.verify(Sqn(3, 3, ind_bits=IND_BITS))  # SQN moves past it
        assert classify(usim, captured) == "stale_in"
        assert usim.peek(captured).accepted        # concretely accepted
