"""Threat instrumentor tests: IMP^mu structure and semantics."""

import pytest

from repro.baselines import lteinspector_mme, lteinspector_ue
from repro.lte import constants as c
from repro.mc import ModelChecker, parse_ltl
from repro.threat import (Refinement, ThreatConfig, build_threat_model)
from repro.threat.predicates import (PredicateError, compile_predicate,
                                     split_guard)


def check_ltl(model, formula, name="property"):
    return ModelChecker().check_formula(model, formula, name)


def baseline_model(config=None):
    return build_threat_model(lteinspector_ue(), lteinspector_mme(),
                              config)


class TestPredicates:
    def test_flag_predicates(self):
        expr = compile_predicate("mac_valid", "1")
        assert expr.evaluate({"dl_mac_valid": 1})
        assert not expr.evaluate({"dl_mac_valid": 0})

    def test_relational_sqn(self):
        fresh = compile_predicate("sqn_fresh", "1")
        assert fresh.evaluate({"dl_sqn_rel": "fresh"})
        assert not fresh.evaluate({"dl_sqn_rel": "equal"})
        window = compile_predicate("sqn_in_window", "1")
        assert window.evaluate({"dl_sqn_rel": "stale_in"})
        assert not window.evaluate({"dl_sqn_rel": "stale_out"})

    def test_negated_values(self):
        not_fresh = compile_predicate("count_higher", "0")
        assert not_fresh.evaluate({"dl_count_rel": "stale_old"})
        assert not not_fresh.evaluate({"dl_count_rel": "fresh"})

    def test_markers_and_dropped_return_none(self):
        assert compile_predicate("accept", "1") is None
        assert compile_predicate("replay_ok", "1") is None

    def test_unknown_predicate_raises(self):
        with pytest.raises(PredicateError):
            compile_predicate("mystery_check", "1")

    def test_split_guard(self):
        trigger, predicates = split_guard(
            ("attach_accept", "mac_valid=1", "count_higher=0"))
        assert trigger == "attach_accept"
        assert predicates == {"mac_valid": "1", "count_higher": "0"}


class TestModelStructure:
    def test_variables_present(self):
        model = baseline_model()
        names = set(model.variable_names)
        assert {"turn", "ue_state", "mme_state", "chan_dl", "chan_ul",
                "dl_mac_valid", "dl_sqn_rel", "dl_count_rel",
                "dl_injected", "ul_injected"} <= names

    def test_initial_state(self):
        model = baseline_model()
        init = model.initial_state()
        assert init["turn"] == "ue"
        assert init["chan_dl"] == "none"
        assert init["ue_state"] == "ue_deregistered"

    def test_adversary_commands_scoped_by_config(self):
        passive = baseline_model(ThreatConfig(allow_drop=False))
        labels = {command.label for command in passive.commands}
        assert "adv_drop_dl" not in labels
        assert not any(label.startswith("adv_inject") for label in labels)

        active = baseline_model(ThreatConfig(
            replay_dl=(c.AUTHENTICATION_REQUEST,),
            inject_dl=(c.PAGING,),
            inject_ul=(c.DETACH_REQUEST,)))
        labels = {command.label for command in active.commands}
        assert "adv_replay_dl_authentication_request" in labels
        assert "adv_inject_dl_paging" in labels
        assert "adv_inject_ul_detach_request" in labels

    def test_session_replay_gets_capture_bit(self):
        config = ThreatConfig(replay_dl=(c.ATTACH_ACCEPT,))
        model = baseline_model(config)
        assert "sent_attach_accept" in model.variable_names

    def test_global_replay_has_no_capture_bit(self):
        config = ThreatConfig(replay_dl=(c.AUTHENTICATION_REQUEST,))
        model = baseline_model(config)
        assert not any(name.startswith("sent_")
                       for name in model.variable_names)


class TestRefinements:
    def test_no_forge_pins_mac_to_zero(self):
        config = ThreatConfig(inject_dl=(c.SECURITY_MODE_COMMAND,))
        refined = config.refined(
            Refinement("no_forge", c.SECURITY_MODE_COMMAND))
        model = baseline_model(refined)
        command = next(cmd for cmd in model.commands
                       if cmd.label == "adv_inject_dl_"
                       + c.SECURITY_MODE_COMMAND)
        assert command.updates["dl_mac_valid"] == 0

    def test_no_replay_removes_command(self):
        config = ThreatConfig(replay_dl=(c.AUTHENTICATION_REQUEST,))
        refined = config.refined(
            Refinement("no_replay", c.AUTHENTICATION_REQUEST))
        model = baseline_model(refined)
        assert not any(cmd.label.startswith("adv_replay")
                       for cmd in model.commands)

    def test_replay_needs_capture_guards_command(self):
        config = ThreatConfig(replay_dl=(c.ATTACH_ACCEPT,))
        refined = config.refined(
            Refinement("replay_needs_capture", c.ATTACH_ACCEPT))
        model = baseline_model(refined)
        command = next(cmd for cmd in model.commands
                       if cmd.label == "adv_replay_dl_attach_accept")
        state = model.initial_state()
        assert not command.guard.evaluate(
            {**state, "turn": "adv_dl", "sent_attach_accept": 0})
        assert command.guard.evaluate(
            {**state, "turn": "adv_dl", "sent_attach_accept": 1})

    def test_refined_preserves_other_settings(self):
        config = ThreatConfig(inject_dl=(c.PAGING,), allow_drop=False)
        refined = config.refined(Refinement("no_forge", c.PAGING))
        assert refined.inject_dl == (c.PAGING,)
        assert not refined.allow_drop
        assert refined.forbids_forge(c.PAGING)


class TestSemantics:
    def test_honest_attach_reaches_registered(self):
        model = baseline_model(ThreatConfig(allow_drop=False))
        result = check_ltl(
            model,
            parse_ltl("F (ue_state = ue_registered)",
                      model.variable_names),
            "attach-completes")
        assert result.holds

    def test_scheduler_never_deadlocks(self):
        model = baseline_model(ThreatConfig(
            replay_dl=(c.AUTHENTICATION_REQUEST,),
            inject_dl=(c.PAGING,)))
        result = check_ltl(model,
                           parse_ltl("G (F (turn = ue))",
                                     model.variable_names),
                           "liveness")
        assert result.holds

    def test_drop_breaks_liveness(self):
        model = baseline_model()   # drop allowed
        result = check_ltl(
            model,
            parse_ltl("G (chan_ul = attach_request -> "
                      "F (ue_state = ue_registered))",
                      model.variable_names),
            "attach-completes")
        assert not result.holds

    def test_extracted_models_compile(self, extracted_models, mme_model):
        for impl, fsm in extracted_models.items():
            model = build_threat_model(fsm, mme_model,
                                       ThreatConfig(allow_drop=False))
            assert len(model.commands) > 20, impl
