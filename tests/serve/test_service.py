"""Service mode end to end: queue, workers, store hits, HTTP /v1 API."""

import json

import pytest

from repro import obs, schema
from repro.cli import main as cli_main
from repro.core import AnalysisConfig, AnalysisReport, extraction_cache
from repro.serve import (AnalysisService, JobStatus, ServeClient,
                         ServeClientError, ServiceError, create_server)
from repro.store import ResultStore, job_digest

SMALL = ["SEC-01", "SEC-02"]


@pytest.fixture()
def service(tmp_path):
    svc = AnalysisService(ResultStore(tmp_path / "store"), workers=2,
                         default_engine_jobs=1)
    svc.start()
    yield svc
    svc.stop()


@pytest.fixture()
def client(service):
    server = create_server("127.0.0.1", 0, service, quiet=True)
    import threading
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield ServeClient(f"http://127.0.0.1:{server.port}")
    server.shutdown()
    server.server_close()


def _wait(service, job_id, timeout=60.0):
    import time
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = service.job(job_id)
        if record.status in (JobStatus.DONE, JobStatus.FAILED,
                             JobStatus.TIMEOUT):
            return record
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish")


class TestAnalysisService:
    def test_job_runs_and_report_lands_in_store(self, service):
        config = AnalysisConfig("srsue", property_ids=SMALL)
        record = service.submit(config.to_dict())
        assert record.status in (JobStatus.QUEUED, JobStatus.RUNNING,
                                 JobStatus.DONE)
        done = _wait(service, record.job_id)
        assert done.status is JobStatus.DONE
        assert done.store_hit is False
        payload = service.report(done.digest)
        report = AnalysisReport.from_dict(payload)
        assert {r.property.identifier for r in report.results} == set(SMALL)

    def test_resubmission_is_a_zero_work_store_hit(self, service):
        config = AnalysisConfig("srsue", property_ids=SMALL)
        first = _wait(service, service.submit(config.to_dict()).job_id)
        assert first.counters, "a cold run must record engine activity"

        before = obs.metrics().snapshot()
        second = service.submit(config.to_dict())
        # The hit is decided at submit time: no queueing, no worker.
        assert second.status is JobStatus.DONE
        assert second.store_hit is True
        assert second.counters == {}
        delta = obs.diff_snapshots(before, obs.metrics().snapshot())
        worked = [name for name in delta.get("counters", {})
                  if name.split(".")[0] in ("engine", "mc", "extraction",
                                            "cegar")]
        assert worked == [], f"store hit did real work: {worked}"
        assert second.digest == first.digest

    def test_hit_serves_identical_verdicts(self, service):
        config = AnalysisConfig("srsue", property_ids=SMALL)
        first = _wait(service, service.submit(config.to_dict()).job_id)
        second = service.submit(config.to_dict())
        original = AnalysisReport.from_dict(service.report(first.digest))
        served = AnalysisReport.from_dict(service.report(second.digest))
        assert served.verdict_signature() == original.verdict_signature()

    def test_jobs_width_does_not_defeat_the_store(self, service):
        narrow = AnalysisConfig("srsue", property_ids=SMALL, jobs=1)
        _wait(service, service.submit(narrow.to_dict()).job_id)
        wide = AnalysisConfig("srsue", property_ids=SMALL, jobs=4)
        assert service.submit(wide.to_dict()).store_hit is True

    def test_fault_plan_jobs_rejected(self, service):
        payload = AnalysisConfig("srsue", property_ids=SMALL).to_dict()
        payload["fault_plan"] = {"faults": [
            {"site": "engine.verify_group", "kind": "raise", "nth": 1}]}
        with pytest.raises((ServiceError, Exception)):
            service.submit(payload)

    def test_future_major_submission_rejected(self, service):
        payload = AnalysisConfig("srsue", property_ids=SMALL).to_dict()
        payload[schema.SCHEMA_KEY] = "99.0"
        with pytest.raises(schema.SchemaVersionError):
            service.submit(payload)

    def test_unknown_job_raises(self, service):
        with pytest.raises(KeyError):
            service.job("j999999")

    def test_stats_shape(self, service):
        stats = service.stats()
        assert stats["workers"] == 2
        assert "store" in stats and "jobs" in stats
        assert stats["live"] is True and stats["ready"] is True
        assert stats["draining"] is False
        assert stats["journal"] is None  # no --journal configured


class TestHTTPApi:
    def test_health(self, client):
        health = client.health()
        assert health[schema.SCHEMA_KEY] == schema.SCHEMA_VERSION
        assert health["workers"] == 2

    def test_submit_wait_fetch_roundtrip(self, client):
        config = AnalysisConfig("srsue", property_ids=SMALL)
        submitted = client.submit(config)
        assert submitted["status"] in ("queued", "running", "done")
        assert submitted[schema.SCHEMA_KEY] == schema.SCHEMA_VERSION
        done = client.wait(submitted["job_id"])
        assert done["status"] == "done"
        report = AnalysisReport.from_dict(client.report(done["digest"]))
        assert len(report.results) == len(SMALL)

    def test_second_submission_hits_store(self, client):
        config = AnalysisConfig("srsue", property_ids=SMALL)
        client.wait(client.submit(config)["job_id"])
        second = client.submit(config)
        assert second["status"] == "done"
        assert second["store_hit"] is True
        assert second["counters"] == {}

    def test_served_report_matches_one_shot_cli(self, client, capsys):
        # The acceptance check: a report served over HTTP carries the
        # same verdict signature as the same analysis run one-shot via
        # the CLI — byte-identical once both sides re-hydrate.
        extraction_cache.clear()
        assert cli_main(["analyze", "srsue", "--json", "--jobs", "1"]) == 0
        one_shot = AnalysisReport.from_dict(
            json.loads(capsys.readouterr().out))
        done = client.wait(client.submit(AnalysisConfig("srsue"))["job_id"],
                           timeout=120)
        served = AnalysisReport.from_dict(client.report(done["digest"]))
        assert served.verdict_signature() == one_shot.verdict_signature()

    def test_list_jobs_filters(self, client):
        config = AnalysisConfig("srsue", property_ids=SMALL)
        client.wait(client.submit(config)["job_id"])
        listed = client.jobs(status="done", implementation="srsue")
        assert listed, "expected at least one done srsue job"
        assert all(job["implementation"] == "srsue" for job in listed)
        assert client.jobs(implementation="oai") == []

    def test_bad_schema_major_is_400(self, client):
        payload = AnalysisConfig("srsue", property_ids=SMALL).to_dict()
        payload[schema.SCHEMA_KEY] = "99.0"
        with pytest.raises(ServeClientError, match="400"):
            client.submit(payload)

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServeClientError, match="404"):
            client.job("j424242")

    def test_unknown_report_is_404(self, client):
        with pytest.raises(ServeClientError, match="404"):
            client.report("0" * 64)

    def test_bad_status_filter_is_400(self, client):
        with pytest.raises(ServeClientError, match="400"):
            client.jobs(status="exploded")
