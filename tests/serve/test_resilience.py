"""The service resilience layer: journal recovery, drain, watchdog
deadlines, backpressure, and the client retry discipline."""

import threading
import time

import pytest

from repro import faults, obs
from repro.core import AnalysisConfig
from repro.serve import (AnalysisService, JobJournal, JobStatus,
                         QueueFullError, ServeClient, ServeClientError,
                         ServiceDrainingError, Watchdog, create_server)
from repro.store import ResultStore

SMALL = ["SEC-01"]
OTHER = ["SEC-02"]
TERMINAL = (JobStatus.DONE, JobStatus.FAILED, JobStatus.TIMEOUT)

PIPELINE_COUNTERS = ("engine", "mc", "extraction", "cegar")


def _config(implementation="srsue", props=SMALL, **extra):
    payload = AnalysisConfig(implementation, property_ids=props).to_dict()
    payload.update(extra)
    return payload


def _wait(service, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = service.job(job_id)
        if record.status in TERMINAL:
            return record
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not reach a terminal status")


def _wait_running(service, job_id, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if service.job(job_id).status is JobStatus.RUNNING:
            return
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} never started running")


def _pipeline_work(before, after):
    delta = obs.diff_snapshots(before, after)
    return [name for name in delta.get("counters", {})
            if name.split(".")[0] in PIPELINE_COUNTERS]


def _counter_delta(before, after, name):
    delta = obs.diff_snapshots(before, after)
    return delta.get("counters", {}).get(name, 0)


class TestJournalRecovery:
    def test_restart_replays_queued_jobs_to_done(self, tmp_path):
        # Crash simulation: submissions journal + queue, but the fleet
        # never starts — exactly the state a SIGKILL leaves behind.
        store_dir, journal_dir = tmp_path / "store", tmp_path / "journal"
        crashed = AnalysisService(ResultStore(store_dir), workers=1,
                                  journal=JobJournal(journal_dir))
        first = crashed.submit(_config(props=SMALL))
        second = crashed.submit(_config(props=OTHER))

        revived = AnalysisService(ResultStore(store_dir), workers=1,
                                  journal=JobJournal(journal_dir))
        revived.start()
        try:
            for job_id in (first.job_id, second.job_id):
                assert _wait(revived, job_id).status is JobStatus.DONE
            assert revived.report(first.digest) is not None
            assert revived.report(second.digest) is not None
        finally:
            revived.stop()

    def test_replayed_store_hit_consumes_zero_pipeline_work(self, tmp_path):
        store_dir, journal_dir = tmp_path / "store", tmp_path / "journal"
        journal = JobJournal(journal_dir)
        warm = AnalysisService(ResultStore(store_dir), workers=1,
                               journal=journal)
        warm.start()
        try:
            done = _wait(warm, warm.submit(_config()).job_id)
            assert done.status is JobStatus.DONE
        finally:
            warm.stop()
        # Crash after an identical job was journaled but never ran.
        resubmitted = AnalysisService(ResultStore(store_dir), workers=1,
                                      journal=JobJournal(journal_dir))
        ghost = resubmitted.submit(_config())
        # A submit-time store hit finishes immediately; rewind it to
        # the journaled-but-unfinished state a crash between the
        # submit append and the finish append would leave.
        assert ghost.store_hit is True

        del resubmitted
        journal2 = JobJournal(journal_dir)
        replayed = journal2.replay()
        assert replayed.pending == []  # the finish append closed it

        # Now the genuinely interesting case: a submit append with no
        # finish (crash mid-submission).  Journal it by hand.
        record = warm.job(done.job_id)
        record.job_id = "j000099"
        journal2.append_submit(record)

        before = obs.metrics().snapshot()
        revived = AnalysisService(ResultStore(store_dir), workers=1,
                                  journal=JobJournal(journal_dir))
        revived.start()
        try:
            hit = _wait(revived, "j000099")
            assert hit.status is JobStatus.DONE
            assert hit.store_hit is True
            assert hit.counters == {}
            worked = _pipeline_work(before, obs.metrics().snapshot())
            assert worked == [], f"replayed hit did real work: {worked}"
        finally:
            revived.stop()

    def test_running_at_crash_reruns_cold(self, tmp_path):
        store_dir, journal_dir = tmp_path / "store", tmp_path / "journal"
        journal = JobJournal(journal_dir)
        crashed = AnalysisService(ResultStore(store_dir), workers=1,
                                  journal=journal)
        record = crashed.submit(_config())
        # The worker had picked it up when the process died.
        record.worker = "serve-worker-0"
        journal.append_start(record)

        revived = AnalysisService(ResultStore(store_dir), workers=1,
                                  journal=JobJournal(journal_dir))
        revived.start()
        try:
            done = _wait(revived, record.job_id)
            assert done.status is JobStatus.DONE
            assert done.store_hit is False, "must re-run cold"
            assert done.counters, "a cold re-run records engine activity"
        finally:
            revived.stop()

    def test_replay_advances_the_id_counter(self, tmp_path):
        store_dir, journal_dir = tmp_path / "store", tmp_path / "journal"
        crashed = AnalysisService(ResultStore(store_dir), workers=1,
                                  journal=JobJournal(journal_dir))
        assert crashed.submit(_config()).job_id == "j000001"

        revived = AnalysisService(ResultStore(store_dir), workers=1,
                                  journal=JobJournal(journal_dir))
        revived.start()
        try:
            fresh = revived.submit(_config(props=OTHER))
            assert fresh.job_id == "j000002"
            _wait(revived, fresh.job_id)
        finally:
            revived.stop()

    def test_replay_of_identical_pair_keeps_coalesce_invariant(
            self, tmp_path):
        # Satellite: journal replay of two identical submissions must
        # still produce exactly one cold run and one store hit.
        store_dir, journal_dir = tmp_path / "store", tmp_path / "journal"
        crashed = AnalysisService(ResultStore(store_dir), workers=1,
                                  journal=JobJournal(journal_dir))
        twin_a = crashed.submit(_config())
        twin_b = crashed.submit(_config())
        assert twin_a.digest == twin_b.digest

        before = obs.metrics().snapshot()
        revived = AnalysisService(ResultStore(store_dir), workers=1,
                                  journal=JobJournal(journal_dir))
        revived.start()
        try:
            done_a = _wait(revived, twin_a.job_id)
            done_b = _wait(revived, twin_b.job_id)
            hits = [r for r in (done_a, done_b) if r.store_hit]
            cold = [r for r in (done_a, done_b) if not r.store_hit]
            assert len(hits) == 1 and len(cold) == 1
            assert hits[0].counters == {}
            assert cold[0].counters
            after = obs.metrics().snapshot()
            assert _counter_delta(before, after, "serve.store_hits") == 1
        finally:
            revived.stop()
        # The journal closed both: a third incarnation replays nothing.
        assert JobJournal(journal_dir).replay().pending == []


class TestCoalesceRace:
    def test_identical_pair_one_cold_run_one_hit(self, tmp_path):
        # Both submissions land while the store is still empty (the
        # fleet has not started), so neither can short-circuit at
        # submit time — the dequeue-time store re-check must coalesce.
        service = AnalysisService(ResultStore(tmp_path / "store"),
                                  workers=1)
        twin_a = service.submit(_config())
        twin_b = service.submit(_config())
        assert twin_a.status is JobStatus.QUEUED
        assert twin_b.status is JobStatus.QUEUED

        before = obs.metrics().snapshot()
        service.start()
        try:
            done_a = _wait(service, twin_a.job_id)
            done_b = _wait(service, twin_b.job_id)
            assert done_a.status is JobStatus.DONE
            assert done_b.status is JobStatus.DONE
            hits = [r for r in (done_a, done_b) if r.store_hit]
            cold = [r for r in (done_a, done_b) if not r.store_hit]
            assert len(hits) == 1 and len(cold) == 1
            assert hits[0].counters == {}, \
                "a coalesced hit must record zero per-job work"
            after = obs.metrics().snapshot()
            assert _counter_delta(before, after, "serve.store_hits") == 1
        finally:
            service.stop()


class TestWatchdog:
    def test_hung_job_times_out_while_fleet_keeps_working(self, tmp_path):
        faults.install(faults.FaultPlan.of(faults.FaultSpec(
            site="serve.run_job", key="srsue", kind="hang", nth=1,
            scope="all", hang_seconds=1.0)))
        service = AnalysisService(ResultStore(tmp_path / "store"),
                                  workers=2,
                                  watchdog_interval_seconds=0.05)
        service.start()
        try:
            before = obs.metrics().snapshot()
            hung = service.submit(_config("srsue",
                                          deadline_seconds=0.25))
            _wait_running(service, hung.job_id)
            other = service.submit(_config("reference", props=OTHER))

            timed_out = _wait(service, hung.job_id, timeout=5.0)
            assert timed_out.status is JobStatus.TIMEOUT
            assert timed_out.error.startswith("JobDeadlineExceeded")
            # Marked within the deadline margin — long before the
            # 1.0s hang would have released the worker.
            assert timed_out.elapsed_seconds() <= 0.8

            assert _wait(service, other.job_id).status is JobStatus.DONE
            after = obs.metrics().snapshot()
            assert _counter_delta(before, after,
                                  "serve.jobs_timed_out") == 1
            assert _counter_delta(before, after,
                                  "serve.workers_respawned") >= 1
            # Capacity survived: a post-timeout job still completes.
            extra = service.submit(_config("reference", props=SMALL))
            assert _wait(service, extra.job_id).status is JobStatus.DONE
        finally:
            faults.clear()
            service.stop()

    def test_scan_with_injected_clock_is_deterministic(self, tmp_path):
        service = AnalysisService(ResultStore(tmp_path / "store"),
                                  workers=1)
        record = service.submit(_config(deadline_seconds=1.0))
        watchdog = Watchdog(service, interval_seconds=0.05)
        # Not yet running: no deadline applies.
        assert watchdog.scan(now=record.submitted_at + 100.0) == 0
        record.status = JobStatus.RUNNING
        record.started_at = 1000.0
        record.worker = "serve-worker-0"
        assert watchdog.scan(now=1000.9) == 0
        assert watchdog.scan(now=1001.1) == 1
        assert record.status is JobStatus.TIMEOUT
        assert "1.000s deadline" in record.error
        # Terminal: a second scan finds nothing to do.
        assert watchdog.scan(now=1002.0) == 0

    def test_late_completion_cannot_resurrect_a_timeout(self, tmp_path):
        service = AnalysisService(ResultStore(tmp_path / "store"),
                                  workers=1)
        record = service.submit(_config(deadline_seconds=0.1))
        record.status = JobStatus.RUNNING
        record.started_at = 0.0
        Watchdog(service).scan(now=10.0)
        assert record.status is JobStatus.TIMEOUT
        before = obs.metrics().snapshot()
        service._finalize(record, JobStatus.DONE, counters={"x": 1})
        assert record.status is JobStatus.TIMEOUT
        assert record.counters == {}
        assert _counter_delta(before, obs.metrics().snapshot(),
                              "serve.late_completions") == 1

    def test_abandoned_worker_is_replaced(self, tmp_path):
        service = AnalysisService(ResultStore(tmp_path / "store"),
                                  workers=2)
        service.start()
        try:
            with service._fleet_lock:
                victim = service._threads[0].name
            before = obs.metrics().snapshot()
            service._abandon_worker(victim)
            stats = service.stats()
            assert stats["workers_alive"] == 2
            assert _counter_delta(before, obs.metrics().snapshot(),
                                  "serve.workers_respawned") == 1
        finally:
            service.stop()


class TestBackpressureAndDrain:
    def test_queue_bound_rejects_with_retry_after(self, tmp_path):
        service = AnalysisService(ResultStore(tmp_path / "store"),
                                  workers=1, max_queue=1)
        service.submit(_config())  # fills the (unstarted) queue
        before = obs.metrics().snapshot()
        with pytest.raises(QueueFullError) as excinfo:
            service.submit(_config(props=OTHER))
        assert excinfo.value.retry_after_seconds > 0
        assert _counter_delta(before, obs.metrics().snapshot(),
                              "serve.queue_rejections") == 1

    def test_http_429_and_client_retry_succeeds(self, tmp_path):
        service = AnalysisService(ResultStore(tmp_path / "store"),
                                  workers=1, max_queue=1)
        service.submit(_config())
        server = create_server("127.0.0.1", 0, service, quiet=True)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.port}"
        try:
            impatient = ServeClient(base, retries=0)
            with pytest.raises(ServeClientError) as excinfo:
                impatient.submit(_config(props=OTHER))
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after is not None
            assert excinfo.value.retry_after >= 1

            # A retrying client succeeds once capacity frees: the
            # injected sleep starts the fleet, which drains the queue.
            def free_capacity(_delay):
                service.start()
                deadline = time.monotonic() + 10.0
                while service._queue.qsize() > 0 \
                        and time.monotonic() < deadline:
                    time.sleep(0.01)

            patient = ServeClient(base, retries=2, sleep=free_capacity)
            accepted = patient.submit(_config(props=OTHER))
            assert accepted["status"] in ("queued", "running", "done")
            patient.wait(accepted["job_id"])
        finally:
            server.shutdown()
            server.server_close()
            service.stop()

    def test_draining_rejects_submissions(self, tmp_path):
        service = AnalysisService(ResultStore(tmp_path / "store"),
                                  workers=1)
        service.start()
        try:
            assert service.ready is True
            assert service.drain(wait=True, timeout=5.0) is True
            assert service.ready is False
            assert service.stats()["draining"] is True
            with pytest.raises(ServiceDrainingError):
                service.submit(_config())
        finally:
            service.stop()

    def test_drain_leaves_queued_jobs_queued(self, tmp_path):
        faults.install(faults.FaultPlan.of(faults.FaultSpec(
            site="serve.run_job", key="srsue", kind="hang", nth=1,
            scope="all", hang_seconds=0.8)))
        service = AnalysisService(ResultStore(tmp_path / "store"),
                                  workers=1, join_timeout_seconds=0.1)
        service.start()
        try:
            busy = service.submit(_config("srsue"))
            _wait_running(service, busy.job_id)
            parked = service.submit(_config("srsue", props=OTHER))
            service.drain(wait=False)
            time.sleep(0.3)
            # The lone worker is still hung on the first job, and a
            # draining worker must not pick up the second even once
            # free — it stays QUEUED for the next incarnation.
            assert service.job(parked.job_id).status is JobStatus.QUEUED
        finally:
            faults.clear()
            service.stop(wait=False)

    def test_readiness_endpoint_splits_from_liveness(self, tmp_path):
        service = AnalysisService(ResultStore(tmp_path / "store"),
                                  workers=1)
        service.start()
        server = create_server("127.0.0.1", 0, service, quiet=True)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServeClient(f"http://127.0.0.1:{server.port}")
        try:
            health = client.health()
            assert health["live"] is True
            assert health["ready"] is True
            assert health["draining"] is False
            assert client.ready() is True

            service.drain(wait=True, timeout=5.0)
            # Liveness stays 200 while draining; readiness flips 503.
            assert client.health()["draining"] is True
            assert client.ready() is False
            with pytest.raises(ServeClientError) as excinfo:
                client._request("GET", "/v1/health/ready")
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after is not None
        finally:
            server.shutdown()
            server.server_close()
            service.stop()


class TestWorkerLoopStranding:
    def test_dispatch_failure_fails_the_job_not_the_worker(self, tmp_path):
        service = AnalysisService(ResultStore(tmp_path / "store"),
                                  workers=1)
        service.start()
        try:
            def explode(record):
                raise RuntimeError("dispatch exploded")

            service._run_job = explode
            before = obs.metrics().snapshot()
            doomed = service.submit(_config())
            failed = _wait(service, doomed.job_id)
            assert failed.status is JobStatus.FAILED
            assert "RuntimeError: dispatch exploded" in failed.error
            after = obs.metrics().snapshot()
            assert _counter_delta(before, after,
                                  "serve.jobs_stranded") == 1
            assert _counter_delta(before, after,
                                  "serve.worker_loop_errors") == 1

            # Regression core: the worker survived and the next job runs.
            service.__dict__.pop("_run_job")
            healthy = service.submit(_config(props=OTHER))
            assert _wait(service, healthy.job_id).status is JobStatus.DONE
        finally:
            service.__dict__.pop("_run_job", None)
            service.stop()


class TestStopLifecycle:
    def test_stop_is_idempotent_and_restartable(self, tmp_path):
        service = AnalysisService(ResultStore(tmp_path / "store"),
                                  workers=2)
        service.start()
        first = _wait(service, service.submit(_config()).job_id)
        assert first.status is JobStatus.DONE
        service.stop()
        service.stop()  # second stop is a no-op
        assert service.stats()["workers_alive"] == 0
        assert service.ready is False

        service.start()
        try:
            assert service.stats()["workers_alive"] == 2
            second = _wait(service,
                           service.submit(_config(props=OTHER)).job_id)
            assert second.status is JobStatus.DONE
        finally:
            service.stop()

    def test_restart_runs_jobs_queued_while_stopped(self, tmp_path):
        service = AnalysisService(ResultStore(tmp_path / "store"),
                                  workers=1)
        service.start()
        service.stop()
        parked = service.submit(_config())
        assert parked.status is JobStatus.QUEUED
        service.start()
        try:
            assert _wait(service, parked.job_id).status is JobStatus.DONE
        finally:
            service.stop()

    def test_leaked_threads_are_counted_and_surfaced(self, tmp_path):
        faults.install(faults.FaultPlan.of(faults.FaultSpec(
            site="serve.run_job", key="srsue", kind="hang", nth=1,
            scope="all", hang_seconds=1.5)))
        service = AnalysisService(ResultStore(tmp_path / "store"),
                                  workers=1, join_timeout_seconds=0.1)
        service.start()
        try:
            hung = service.submit(_config("srsue"))
            _wait_running(service, hung.job_id)
            before = obs.metrics().snapshot()
            service.stop(wait=True)
            assert _counter_delta(before, obs.metrics().snapshot(),
                                  "serve.stop_leaked_threads") == 1
            assert service.stats()["leaked_threads"]
        finally:
            faults.clear()


class TestJournalFaultInjection:
    def test_failed_start_append_fails_the_job_not_the_worker(
            self, tmp_path):
        service = AnalysisService(
            ResultStore(tmp_path / "store"), workers=1,
            journal=JobJournal(tmp_path / "journal"))
        service.start()
        faults.install(faults.FaultPlan.of(faults.FaultSpec(
            site="journal.append", key="start", kind="raise", nth=1,
            scope="all")))
        try:
            doomed = service.submit(_config())
            failed = _wait(service, doomed.job_id)
            assert failed.status is JobStatus.FAILED
            assert "InjectedFault" in failed.error
            faults.clear()
            # The worker survived the journal failure.
            healthy = service.submit(_config(props=OTHER))
            assert _wait(service, healthy.job_id).status is JobStatus.DONE
        finally:
            faults.clear()
            service.stop()

    def test_failed_finish_append_is_tolerated(self, tmp_path):
        store_dir, journal_dir = tmp_path / "store", tmp_path / "journal"
        service = AnalysisService(ResultStore(store_dir), workers=1,
                                  journal=JobJournal(journal_dir))
        service.start()
        faults.install(faults.FaultPlan.of(faults.FaultSpec(
            site="journal.append", key="finish", kind="raise", nth=0,
            scope="all")))
        try:
            before = obs.metrics().snapshot()
            done = _wait(service, service.submit(_config()).job_id)
            # The verdict is already in the store — losing the finish
            # append must not undo the job.
            assert done.status is JobStatus.DONE
            assert _counter_delta(before, obs.metrics().snapshot(),
                                  "serve.journal_append_failures") >= 1
        finally:
            faults.clear()
            service.stop()
        # Self-healing: the journal shows the job unfinished, but the
        # replaying service resolves it as a store hit, not a re-run.
        before = obs.metrics().snapshot()
        revived = AnalysisService(ResultStore(store_dir), workers=1,
                                  journal=JobJournal(journal_dir))
        revived.start()
        try:
            hit = _wait(revived, done.job_id)
            assert hit.status is JobStatus.DONE
            assert hit.store_hit is True
            assert _pipeline_work(before, obs.metrics().snapshot()) == []
        finally:
            revived.stop()


class TestClientRetryDiscipline:
    def _client(self, monkeypatch, outcomes, **kwargs):
        sleeps = []
        clock = {"now": 0.0}

        def fake_sleep(delay):
            sleeps.append(delay)
            clock["now"] += max(delay, 0.001)

        client = ServeClient("http://test.invalid", sleep=fake_sleep,
                             clock=lambda: clock["now"], jitter_seed=7,
                             **kwargs)
        attempts = {"n": 0}

        def scripted(method, path, payload=None):
            attempts["n"] += 1
            outcome = outcomes[min(attempts["n"] - 1, len(outcomes) - 1)]
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        monkeypatch.setattr(client, "_request", scripted)
        return client, sleeps, attempts

    def test_wait_backs_off_exponentially_with_a_cap(self, monkeypatch):
        outcomes = [{"status": "queued"}] * 6 + [{"status": "done"}]
        client, sleeps, attempts = self._client(monkeypatch, outcomes)
        record = client.wait("j1", timeout=100.0, poll_seconds=0.05,
                             poll_cap_seconds=0.4)
        assert record["status"] == "done"
        assert attempts["n"] == 7
        assert sleeps == [0.05, 0.1, 0.2, 0.4, 0.4, 0.4]

    def test_wait_honours_retry_after_from_429(self, monkeypatch):
        outcomes = [
            ServeClientError("429", status=429, retry_after=3.0),
            {"status": "done"},
        ]
        client, sleeps, _ = self._client(monkeypatch, outcomes)
        assert client.wait("j1", timeout=100.0)["status"] == "done"
        assert sleeps == [3.0]

    def test_wait_treats_timeout_status_as_terminal(self, monkeypatch):
        client, _, _ = self._client(monkeypatch, [{"status": "timeout"}])
        assert client.wait("j1")["status"] == "timeout"

    def test_wait_gives_up_at_the_deadline(self, monkeypatch):
        client, _, _ = self._client(monkeypatch, [{"status": "queued"}])
        with pytest.raises(ServeClientError, match="still queued"):
            client.wait("j1", timeout=1.0, poll_seconds=0.3)

    def test_wait_raises_non_retryable_errors(self, monkeypatch):
        outcomes = [ServeClientError("gone", status=404)]
        client, _, attempts = self._client(monkeypatch, outcomes)
        with pytest.raises(ServeClientError, match="gone"):
            client.wait("j1", timeout=10.0)
        assert attempts["n"] == 1

    def test_analysis_submit_retries_5xx(self, monkeypatch):
        outcomes = [
            ServeClientError("boom", status=500),
            ServeClientError("boom", status=503),
            {"job_id": "j1", "status": "queued"},
        ]
        client, sleeps, attempts = self._client(monkeypatch, outcomes,
                                                retries=3)
        assert client.submit({"implementation": "srsue"})["job_id"] == "j1"
        assert attempts["n"] == 3
        assert len(sleeps) == 2
        # Jittered exponential: each delay is in [base/2, base].
        for index, delay in enumerate(sleeps):
            base = min(2.0, 0.1 * (2 ** index))
            assert base / 2 <= delay <= base

    def test_analysis_submit_honours_retry_after(self, monkeypatch):
        outcomes = [
            ServeClientError("full", status=429, retry_after=2.0),
            {"job_id": "j1"},
        ]
        client, sleeps, _ = self._client(monkeypatch, outcomes, retries=1)
        client.submit({"implementation": "srsue"})
        assert sleeps == [2.0]

    def test_fuzz_submit_never_retries_http_errors(self, monkeypatch):
        outcomes = [ServeClientError("boom", status=500)]
        client, _, attempts = self._client(monkeypatch, outcomes,
                                           retries=3)
        with pytest.raises(ServeClientError, match="boom"):
            client.submit_fuzz("srsue")
        assert attempts["n"] == 1, \
            "a 5xx proves the request was read; a fuzz re-send could " \
            "start a duplicate campaign"

    def test_fuzz_submit_retries_connection_errors(self, monkeypatch):
        outcomes = [
            ServeClientError("unreachable"),  # status=None: connection
            {"job_id": "j1"},
        ]
        client, _, attempts = self._client(monkeypatch, outcomes,
                                           retries=2)
        assert client.submit_fuzz("srsue")["job_id"] == "j1"
        assert attempts["n"] == 2

    def test_backoff_jitter_stays_within_bounds(self):
        client = ServeClient("http://test.invalid", jitter_seed=11)
        for attempt in range(6):
            expected = min(2.0, 0.1 * (2 ** attempt))
            delay = client._backoff(attempt)
            assert expected / 2 <= delay <= expected
