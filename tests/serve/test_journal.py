"""The write-ahead job journal: append, replay, rotation, quarantine."""

import json

import pytest

from repro import faults, obs, schema
from repro.serve import JobJournal, JobRecord, JobStatus, JournalError
from repro.serve.journal import (EVENT_FINISH, EVENT_START, EVENT_SUBMIT,
                                 _job_number)


def _record(job_id="j000001", digest="d" * 64, status=JobStatus.QUEUED,
            **extra):
    record = JobRecord(job_id=job_id, digest=digest,
                       implementation="srsue",
                       payload={"implementation": "srsue"}, **extra)
    record.status = status
    return record


@pytest.fixture()
def journal(tmp_path):
    return JobJournal(tmp_path / "journal")


class TestAppend:
    def test_append_writes_stamped_jsonl(self, journal):
        journal.append_submit(_record())
        lines = journal.path.read_text().splitlines()
        assert len(lines) == 1
        entry = json.loads(lines[0])
        assert entry["event"] == EVENT_SUBMIT
        assert entry["job_id"] == "j000001"
        assert entry[schema.SCHEMA_KEY] == schema.SCHEMA_VERSION
        assert entry["payload"] == {"implementation": "srsue"}

    def test_unknown_event_rejected(self, journal):
        with pytest.raises(JournalError, match="unknown journal event"):
            journal.append("restart", "j000001")
        assert not journal.path.exists()

    def test_append_fault_site_fires_before_the_write(self, journal):
        faults.install(faults.FaultPlan.of(faults.FaultSpec(
            site="journal.append", key=EVENT_SUBMIT, kind="raise",
            nth=1, scope="all")))
        try:
            with pytest.raises(faults.InjectedFault):
                journal.append_submit(_record())
            # The fault models a failed disk: nothing may have landed.
            assert not journal.path.exists()
            # Other events keep working (the key scopes the fault).
            journal.append_start(_record(status=JobStatus.RUNNING))
        finally:
            faults.clear()


class TestReplay:
    def test_missing_file_is_a_fresh_start(self, journal):
        replay = journal.replay()
        assert replay.pending == []
        assert replay.max_job_number == 0
        assert replay.truncated_bytes == 0

    def test_submit_without_finish_is_pending(self, journal):
        journal.append_submit(_record("j000001"))
        journal.append_submit(_record("j000002"))
        done = _record("j000001", status=JobStatus.DONE)
        journal.append_start(done)
        journal.append_finish(done)
        replay = journal.replay()
        assert [e["job_id"] for e in replay.pending] == ["j000002"]
        assert replay.finished == ["j000001"]
        assert replay.max_job_number == 2
        assert replay.entries_read == 4

    def test_running_at_crash_is_still_pending(self, journal):
        # A start with no finish: the process died mid-job.
        record = _record("j000003", status=JobStatus.RUNNING)
        journal.append_submit(record)
        journal.append_start(record)
        replay = journal.replay()
        assert [e["job_id"] for e in replay.pending] == ["j000003"]

    def test_all_terminal_statuses_close_a_job(self, journal):
        for index, status in enumerate((JobStatus.DONE, JobStatus.FAILED,
                                        JobStatus.TIMEOUT), start=1):
            record = _record(f"j{index:06d}", status=status)
            journal.append_submit(record)
            journal.append_finish(record)
        assert journal.replay().pending == []

    def test_pending_preserves_submission_order(self, journal):
        for index in (1, 2, 3):
            journal.append_submit(_record(f"j{index:06d}"))
        closed = _record("j000002", status=JobStatus.FAILED)
        journal.append_finish(closed)
        replay = journal.replay()
        assert [e["job_id"] for e in replay.pending] == \
            ["j000001", "j000003"]


class TestCorruptedTail:
    def test_half_written_tail_is_quarantined_and_truncated(self, journal):
        journal.append_submit(_record("j000001"))
        clean = journal.path.read_bytes()
        # A SIGKILL mid-append leaves a torn line behind.
        with open(journal.path, "ab") as handle:
            handle.write(b'{"event": "fini')
        before = obs.metrics().snapshot()
        replay = journal.replay()
        assert [e["job_id"] for e in replay.pending] == ["j000001"]
        assert replay.truncated_bytes == len(b'{"event": "fini')
        assert journal.path.read_bytes() == clean
        tails = list((journal.root / JobJournal.QUARANTINE).iterdir())
        assert len(tails) == 1
        assert tails[0].read_bytes() == b'{"event": "fini'
        delta = obs.diff_snapshots(before, obs.metrics().snapshot())
        assert delta["counters"].get(
            "serve.journal_truncated_tails") == 1
        # The truncated journal replays cleanly a second time.
        again = journal.replay()
        assert again.truncated_bytes == 0
        assert [e["job_id"] for e in again.pending] == ["j000001"]

    def test_unknown_major_line_is_treated_as_corrupt(self, journal):
        journal.append_submit(_record("j000001"))
        with open(journal.path, "a") as handle:
            handle.write(json.dumps({
                "event": EVENT_FINISH, "job_id": "j000001",
                "status": "done", schema.SCHEMA_KEY: "99.0"}) + "\n")
        replay = journal.replay()
        # The finish line was unreadable -> the job stays pending
        # (conservative: better a redundant re-run than a lost job).
        assert [e["job_id"] for e in replay.pending] == ["j000001"]
        assert replay.truncated_bytes > 0

    def test_non_object_line_is_corrupt(self, journal):
        journal.append_submit(_record("j000001"))
        with open(journal.path, "a") as handle:
            handle.write('["not", "an", "object"]\n')
        assert journal.replay().truncated_bytes > 0


class TestRotation:
    def test_rotate_compacts_to_pending_submits(self, journal):
        journal.append_submit(_record("j000001"))
        done = _record("j000001", status=JobStatus.DONE)
        journal.append_start(done)
        journal.append_finish(done)
        journal.append_submit(_record("j000002"))
        replay = journal.replay()
        journal.rotate(list(replay.pending))
        lines = [json.loads(line)
                 for line in journal.path.read_text().splitlines()]
        assert [(e["event"], e["job_id"]) for e in lines] == \
            [(EVENT_SUBMIT, "j000002")]
        # Rotation is itself journaled state: a fresh replay agrees.
        assert [e["job_id"] for e in journal.replay().pending] == \
            ["j000002"]

    def test_rotate_rejects_non_submit_entries(self, journal):
        with pytest.raises(JournalError, match="submit entries only"):
            journal.rotate([{"event": EVENT_START, "job_id": "j000001"}])

    def test_rotate_to_empty(self, journal):
        journal.append_submit(_record("j000001"))
        journal.rotate([])
        assert journal.path.read_bytes() == b""


class TestStats:
    def test_stats_shape(self, journal):
        stats = journal.stats()
        assert stats["bytes"] == 0
        assert stats["quarantined_tails"] == 0
        journal.append_submit(_record())
        assert journal.stats()["bytes"] > 0

    def test_job_number_parsing(self):
        assert _job_number("j000042") == 42
        assert _job_number("weird-id") == 0
