"""Content-addressed, persistent result store for analysis reports.

The store is what makes analyses *idempotent, addressable jobs*: a
finished :class:`~repro.core.report.AnalysisReport` is filed under a
digest derived from everything its verdicts are a pure function of —

- the **implementation fingerprint** (a content hash of the
  implementation's source module, so editing ``srsue_like.py``
  invalidates every cached srsUE report);
- the **catalog hash** of the resolved property selection (identifier,
  instantiated formula, canonical threat-configuration key, testbed
  experiment — the same canonicalisation
  :func:`~repro.core.cegar.threat_config_key` uses for model sharing);
- the **chaos spec** (seed, rates, scope, consensus width), because a
  perturbed extraction may legitimately change the model;
- the CEGAR iteration budget.

Scheduling knobs (``jobs``, timeouts, retries, backoff) are *excluded*:
the engine's determinism contract guarantees a ``--jobs 4`` run is
verdict-identical to a serial one, so both must hit the same entry.
Configs that can change verdicts non-reproducibly (an installed fault
plan) or that hold live callables (a custom ``cases`` suite, non-catalog
property objects) are **uncacheable** and raise :class:`StoreError`.

Layout: one JSON file per entry, sharded by digest prefix
(``<root>/ab/abcdef....json``) so directories stay small at millions of
entries.  Writes are atomic (temp file + ``os.replace``); a corrupted or
wire-incompatible entry is *quarantined* (moved to ``<root>/quarantine``)
and reported as a miss instead of crashing the reader.  Hits, misses,
writes and quarantines are counted in the :mod:`repro.obs` registry
(``store.*``).
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import sys
import tempfile
import threading
from pathlib import Path
from typing import Dict, List, Optional

from .. import obs, schema
from ..core.cegar import threat_config_key
from ..core.engine import AnalysisConfig
from ..lte.implementations import REGISTRY
# The per-verdict model-checking cache lives in repro.mc.cache (the
# store package imports repro.core, which imports repro.mc — defining
# it here would close an import cycle) but is re-exported as part of
# the persistence surface.  Note ``AnalysisConfig.mc_cache_dir`` is a
# warmth knob only: it is *not* part of job_key/job_digest, because a
# warm MC cache must never change what an analysis concludes.
from ..mc.cache import McCacheError, McVerdictCache, verdict_digest
from ..properties.spec import EXTRACTED_VOCAB, KIND_LTL

__all__ = [
    "ResultStore", "StoreError", "implementation_fingerprint",
    "catalog_digest", "job_key", "job_digest",
    "McCacheError", "McVerdictCache", "verdict_digest",
]


class StoreError(Exception):
    """Raised for uncacheable configs and malformed store operations."""


# ---------------------------------------------------------------------------
# Job identity
# ---------------------------------------------------------------------------
def implementation_fingerprint(implementation: str) -> str:
    """Content hash of the implementation under analysis.

    Digests the source of the module defining the registered UE class
    (plus the class qualname and the package version), so a behavioural
    edit to the implementation — or a pipeline release — invalidates
    every report cached for it.
    """
    if implementation not in REGISTRY:
        raise StoreError(f"unknown implementation {implementation!r}; "
                         f"available: {sorted(REGISTRY)}")
    ue_class = REGISTRY[implementation]
    module = sys.modules[ue_class.__module__]
    from .. import __version__
    digest = hashlib.sha256()
    digest.update(inspect.getsource(module).encode())
    digest.update(ue_class.__qualname__.encode())
    digest.update(__version__.encode())
    return digest.hexdigest()


def catalog_digest(config: AnalysisConfig) -> str:
    """Hash of the resolved property selection, in canonical form.

    Each property contributes its identifier, kind, the formula
    *instantiated* for the extracted-model vocabulary, the canonical
    threat-configuration key, the testbed experiment id, and the
    verification budget — everything the verdict depends on besides the
    models themselves.
    """
    rows = []
    for prop in config.resolved_properties():
        threat = (threat_config_key(prop.threat)
                  if prop.kind == KIND_LTL else ())
        formula = (prop.formula_for(EXTRACTED_VOCAB)
                   if prop.kind == KIND_LTL else "")
        rows.append((prop.identifier, prop.kind, formula, repr(threat),
                     prop.testbed_attack))
    digest = hashlib.sha256()
    digest.update(repr(config.max_cegar_iterations).encode())
    for row in rows:
        digest.update(repr(row).encode())
    return digest.hexdigest()


def job_key(config: AnalysisConfig) -> Dict:
    """The canonical, JSON-ready identity of one analysis job.

    Raises :class:`StoreError` for uncacheable configs (fault plans,
    custom suites, non-catalog properties) — serving a stored report for
    one of those would return results the submitted job could not have
    produced.
    """
    if config.fault_plan is not None:
        raise StoreError("configs with an installed fault plan are "
                         "uncacheable (injected faults change verdicts)")
    if config.cases is not None:
        raise StoreError("configs with a custom conformance suite are "
                         "uncacheable (live callables have no stable "
                         "wire identity)")
    return {
        "implementation": config.implementation,
        "implementation_fingerprint":
            implementation_fingerprint(config.implementation),
        "catalog": catalog_digest(config),
        "chaos": (config.chaos.to_dict()
                  if config.chaos is not None else None),
        "chaos_runs": config.chaos_runs if config.chaos is not None else 1,
    }


def job_digest(config: AnalysisConfig) -> str:
    """Content address of the job: SHA-256 of the canonical key JSON."""
    canonical = json.dumps(job_key(config), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------
class ResultStore:
    """JSON-on-disk content-addressed store, sharded by digest prefix."""

    QUARANTINE = "quarantine"

    def __init__(self, root: os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def path_for(self, digest: str) -> Path:
        if len(digest) < 3 or not all(c in "0123456789abcdef"
                                      for c in digest):
            raise StoreError(f"malformed digest {digest!r}")
        return self.root / digest[:2] / f"{digest}.json"

    # ------------------------------------------------------------------
    def put(self, digest: str, report_payload: Dict,
            key: Optional[Dict] = None) -> Path:
        """File a report under its digest (atomic; last writer wins)."""
        entry = schema.stamp({
            "digest": digest,
            "key": key,
            "report": report_payload,
        })
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                        prefix=f".{digest[:8]}-",
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle, sort_keys=True, default=str)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                obs.count("store.tmp_unlink_failures")
            raise
        obs.count("store.writes")
        return path

    def get(self, digest: str) -> Optional[Dict]:
        """The stored report payload, or ``None`` on a miss.

        A corrupted entry (unparseable JSON, digest mismatch, unknown
        wire-format major) is moved to the quarantine directory and
        reported as a miss — one bad file must never take the service
        down or poison future lookups of the same digest.
        """
        path = self.path_for(digest)
        try:
            text = path.read_text()
        except OSError:
            obs.count("store.misses")
            return None
        try:
            entry = json.loads(text)
            if not isinstance(entry, dict):
                raise ValueError(f"entry is {type(entry).__name__}, "
                                 f"not an object")
            schema.check(entry, "store entry")
            if entry.get("digest") != digest:
                raise ValueError(f"digest mismatch: entry says "
                                 f"{entry.get('digest')!r}")
            report = entry["report"]
        except (ValueError, KeyError, schema.SchemaVersionError) as exc:
            self._quarantine(path, exc)
            obs.count("store.misses")
            return None
        obs.count("store.hits")
        return report

    def contains(self, digest: str) -> bool:
        return self.path_for(digest).exists()

    # ------------------------------------------------------------------
    def _quarantine(self, path: Path, reason: Exception) -> None:
        quarantine = self.root / self.QUARANTINE
        quarantine.mkdir(parents=True, exist_ok=True)
        target = quarantine / path.name
        with self._lock:
            try:
                os.replace(path, target)
            except OSError:       # pragma: no cover - already moved/gone
                obs.count("store.quarantine_failures")
                return
        obs.count("store.quarantined")

    # ------------------------------------------------------------------
    def digests(self) -> List[str]:
        """Every digest currently filed (sorted; excludes quarantine)."""
        found = []
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir() or shard.name == self.QUARANTINE:
                continue
            for entry in sorted(shard.glob("*.json")):
                found.append(entry.stem)
        return found

    def stats(self) -> Dict[str, int]:
        quarantined = 0
        quarantine = self.root / self.QUARANTINE
        if quarantine.is_dir():
            quarantined = sum(1 for _ in quarantine.iterdir())
        return {"entries": len(self.digests()),
                "quarantined": quarantined}
