"""Protocol finite-state machines: the paper's Section III-B model.

Public surface:

- :class:`FiniteStateMachine`, :class:`Transition`, :data:`NULL_ACTION` —
  the 5-tuple machine the extractor produces and the verifier consumes;
- :func:`to_dot` / :func:`from_dot` — the Graphviz-like model language;
- :func:`check_refinement` — the RQ2 refinement relation;
- analyses: :func:`missing_stimuli`, :func:`dead_states`, :func:`diff`.
"""

from .machine import NULL_ACTION, FiniteStateMachine, FSMError, Transition
from .dot import from_dot, parse_label, to_dot, transition_label
from .refinement import (DIRECT, SPLIT, STRICTER_CONDITION, UNMAPPED,
                         RefinementReport, TransitionMapping, check_refinement)
from .analysis import (CoverageGap, FSMDiff, condition_histogram, dead_states,
                       diff, guard_strictness, missing_stimuli)

__all__ = [
    "NULL_ACTION", "FiniteStateMachine", "FSMError", "Transition",
    "to_dot", "from_dot", "transition_label", "parse_label",
    "check_refinement", "RefinementReport", "TransitionMapping",
    "DIRECT", "STRICTER_CONDITION", "SPLIT", "UNMAPPED",
    "CoverageGap", "FSMDiff", "missing_stimuli", "dead_states", "diff",
    "condition_histogram", "guard_strictness",
]
