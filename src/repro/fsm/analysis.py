"""Structural analyses over extracted FSMs.

Beyond verification, the paper notes the extracted FSM "can also be used to
enhance testing by detecting missing test cases".  The helpers here support
that use: they find states with no outgoing transition for some message of
the alphabet (untested stimuli), dead states, and compute simple structural
diffs between two machines extracted from different implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .machine import FiniteStateMachine, Transition


@dataclass
class CoverageGap:
    """A (state, trigger) pair for which the extracted FSM has no behaviour.

    Each gap corresponds to a stimulus that no conformance test case ever
    delivered in that state — i.e. a candidate missing test case.
    """

    state: str
    trigger: str

    def suggested_test_case(self) -> str:
        return (f"drive the implementation to state {self.state!r} and "
                f"deliver {self.trigger!r}")


def missing_stimuli(fsm: FiniteStateMachine,
                    alphabet: Optional[Set[str]] = None) -> List[CoverageGap]:
    """(state, message) pairs with no observed transition.

    ``alphabet`` defaults to the machine's own trigger set; pass the full
    standards message list to also flag messages never seen anywhere.
    """
    alphabet = set(alphabet) if alphabet else fsm.triggers
    gaps = []
    for state in sorted(fsm.reachable_states()):
        observed = {t.trigger for t in fsm.transitions_from(state)}
        for trigger in sorted(alphabet - observed):
            gaps.append(CoverageGap(state, trigger))
    return gaps


def dead_states(fsm: FiniteStateMachine) -> Set[str]:
    """Reachable states with no outgoing transition (protocol sinks)."""
    return {state for state in fsm.reachable_states()
            if not fsm.transitions_from(state)}


@dataclass
class FSMDiff:
    """Structural difference between two machines (e.g. srsUE vs OAI)."""

    only_in_first: List[Transition] = field(default_factory=list)
    only_in_second: List[Transition] = field(default_factory=list)
    common: List[Transition] = field(default_factory=list)
    states_only_in_first: Set[str] = field(default_factory=set)
    states_only_in_second: Set[str] = field(default_factory=set)

    @property
    def identical(self) -> bool:
        return (not self.only_in_first and not self.only_in_second
                and not self.states_only_in_first
                and not self.states_only_in_second)


def diff(first: FiniteStateMachine, second: FiniteStateMachine) -> FSMDiff:
    """Compare two machines transition-by-transition."""
    first_set = set(first.transitions)
    second_set = set(second.transitions)
    return FSMDiff(
        only_in_first=sorted(first_set - second_set),
        only_in_second=sorted(second_set - first_set),
        common=sorted(first_set & second_set),
        states_only_in_first=first.states - second.states,
        states_only_in_second=second.states - first.states,
    )


def condition_histogram(fsm: FiniteStateMachine) -> Dict[str, int]:
    """How often each condition appears across transitions."""
    histogram: Dict[str, int] = {}
    for transition in fsm.transitions:
        for condition in transition.conditions:
            histogram[condition] = histogram.get(condition, 0) + 1
    return histogram


def guard_strictness(fsm: FiniteStateMachine) -> Tuple[float, int]:
    """(mean predicates per transition, max predicates) — RQ2 richness metric.

    LTEInspector-style hand models carry few data predicates; ProChecker's
    extracted models carry sequence numbers, MAC validity flags, etc.  This
    metric quantifies that difference for the model-comparison benchmark.
    """
    if not fsm.transitions:
        return 0.0, 0
    counts = [len(t.predicates) for t in fsm.transitions]
    return sum(counts) / len(counts), max(counts)
