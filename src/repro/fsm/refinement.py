"""FSM refinement checking (RQ2, Section VII-B).

The paper defines that ``M2`` *refines* ``M1`` when:

1. every state of ``M1`` maps one-to-one onto a state of ``M2`` (possibly a
   *sub-state* of it — e.g. ``ue_registered`` in LTEInspector maps onto the
   family of registered sub-states ProChecker extracts);
2. the condition set of ``M2`` is a strict superset of ``M1``'s, and likewise
   for actions;
3. each transition of ``M1`` maps onto ``M2`` transitions in one of three
   ways:  (i) directly, (ii) onto a transition with the same endpoints but a
   *stricter* guard ``sigma_i & phi`` (Fig. 7(i)), or (iii) onto a *chain* of
   transitions through new intermediate states (Fig. 7(ii)).

:func:`check_refinement` implements exactly this definition and returns a
:class:`RefinementReport` recording how each abstract transition was mapped,
so the RQ2 benchmark can report the same comparison as the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .machine import FiniteStateMachine, Transition

#: How a single abstract transition was mapped onto the refined model.
DIRECT = "direct"
STRICTER_CONDITION = "stricter-condition"
SPLIT = "split-through-new-states"
UNMAPPED = "unmapped"


@dataclass
class TransitionMapping:
    """The refinement evidence for one abstract transition."""

    abstract: Transition
    kind: str
    concrete: Tuple[Transition, ...] = ()
    new_conditions: Tuple[str, ...] = ()

    @property
    def mapped(self) -> bool:
        return self.kind != UNMAPPED


@dataclass
class RefinementReport:
    """Outcome of a refinement check between two FSMs."""

    abstract_name: str
    refined_name: str
    state_mapping: Dict[str, Set[str]] = field(default_factory=dict)
    unmapped_states: Set[str] = field(default_factory=set)
    condition_superset: bool = False
    action_superset: bool = False
    new_conditions: Set[str] = field(default_factory=set)
    new_actions: Set[str] = field(default_factory=set)
    transition_mappings: List[TransitionMapping] = field(default_factory=list)

    @property
    def states_ok(self) -> bool:
        return not self.unmapped_states

    @property
    def transitions_ok(self) -> bool:
        return all(m.mapped for m in self.transition_mappings)

    @property
    def is_refinement(self) -> bool:
        """True iff all three clauses of the paper's definition hold."""
        return (self.states_ok and self.condition_superset
                and self.action_superset and self.transitions_ok)

    def mapping_counts(self) -> Dict[str, int]:
        counts = {DIRECT: 0, STRICTER_CONDITION: 0, SPLIT: 0, UNMAPPED: 0}
        for mapping in self.transition_mappings:
            counts[mapping.kind] += 1
        return counts


def _map_states(
    abstract: FiniteStateMachine,
    refined: FiniteStateMachine,
    substate_map: Mapping[str, Sequence[str]],
) -> Tuple[Dict[str, Set[str]], Set[str]]:
    """Map every abstract state to its refined (sub-)states."""
    mapping: Dict[str, Set[str]] = {}
    unmapped: Set[str] = set()
    for state in abstract.states:
        if state in refined.states:
            targets = {state}
        elif state in substate_map:
            targets = {s for s in substate_map[state] if s in refined.states}
        else:
            targets = set()
        if targets:
            mapping[state] = targets
        else:
            unmapped.add(state)
    return mapping, unmapped


def _find_direct_or_stricter(
    abstract_t: Transition,
    refined: FiniteStateMachine,
    sources: Set[str],
    targets: Set[str],
) -> Optional[TransitionMapping]:
    """Mapping cases (i) and (ii): same endpoints, equal or stricter guard."""
    best: Optional[TransitionMapping] = None
    abstract_guard = set(abstract_t.conditions)
    for candidate in refined.transitions:
        if candidate.source not in sources or candidate.target not in targets:
            continue
        if candidate.trigger != abstract_t.trigger:
            continue
        candidate_guard = set(candidate.conditions)
        if not abstract_guard <= candidate_guard:
            continue
        extra = tuple(sorted(candidate_guard - abstract_guard))
        if not extra:
            return TransitionMapping(abstract_t, DIRECT, (candidate,))
        if best is None:
            best = TransitionMapping(abstract_t, STRICTER_CONDITION,
                                     (candidate,), extra)
    return best


def _find_split(
    abstract_t: Transition,
    refined: FiniteStateMachine,
    sources: Set[str],
    targets: Set[str],
    max_chain: int,
) -> Optional[TransitionMapping]:
    """Mapping case (iii): a chain through new intermediate states.

    The chain must start on the abstract trigger and carry all abstract
    conditions/actions across the chain as a whole (new ones may be added,
    per the definition).
    """
    abstract_guard = set(abstract_t.conditions)
    abstract_actions = set(abstract_t.actions)
    for source in sources:
        for first in refined.transitions_from(source):
            if first.trigger != abstract_t.trigger:
                continue
            chain = [first]
            while len(chain) < max_chain:
                if chain[-1].target in targets:
                    chain_conditions = {c for t in chain for c in t.conditions}
                    chain_actions = {a for t in chain for a in t.actions}
                    if (abstract_guard <= chain_conditions
                            and abstract_actions <= chain_actions
                            and len(chain) > 1):
                        extra = tuple(sorted(chain_conditions - abstract_guard))
                        return TransitionMapping(abstract_t, SPLIT,
                                                 tuple(chain), extra)
                    break
                outgoing = refined.transitions_from(chain[-1].target)
                if len(outgoing) != 1:
                    # Only unambiguous chains are accepted automatically;
                    # branching intermediate states would need manual review.
                    break
                chain.append(outgoing[0])
            else:
                continue
    return None


def check_refinement(
    abstract: FiniteStateMachine,
    refined: FiniteStateMachine,
    substate_map: Optional[Mapping[str, Sequence[str]]] = None,
    max_chain: int = 4,
) -> RefinementReport:
    """Check whether ``refined`` is a refinement of ``abstract``.

    ``substate_map`` supplies the standards-based mapping from abstract
    states to refined sub-states (the paper does this "following the
    standards [19]", e.g. ``ue_registered -> {ue_registered_normal_service,
    ...}``).
    """
    substate_map = substate_map or {}
    report = RefinementReport(abstract.name, refined.name)
    report.state_mapping, report.unmapped_states = _map_states(
        abstract, refined, substate_map)

    abstract_sigma, refined_sigma = abstract.conditions, refined.conditions
    abstract_gamma, refined_gamma = abstract.actions, refined.actions
    report.condition_superset = abstract_sigma <= refined_sigma
    report.action_superset = abstract_gamma <= refined_gamma
    report.new_conditions = refined_sigma - abstract_sigma
    report.new_actions = refined_gamma - abstract_gamma

    for abstract_t in abstract.transitions:
        sources = report.state_mapping.get(abstract_t.source, set())
        targets = report.state_mapping.get(abstract_t.target, set())
        if not sources or not targets:
            report.transition_mappings.append(
                TransitionMapping(abstract_t, UNMAPPED))
            continue
        mapping = _find_direct_or_stricter(abstract_t, refined,
                                           sources, targets)
        if mapping is None:
            mapping = _find_split(abstract_t, refined, sources, targets,
                                  max_chain)
        report.transition_mappings.append(
            mapping or TransitionMapping(abstract_t, UNMAPPED))
    return report
