"""Protocol finite-state machines.

The paper (Section III-B) models each 4G LTE protocol participant as a
deterministic finite-state machine, a 5-tuple ``(Sigma, Gamma, S, s0, T)``
where ``Sigma`` is the non-empty set of *conditions*, ``Gamma`` the set of
*actions*, ``S`` the finite set of protocol states, ``s0`` the initial state
and ``T`` the finite set of transitions.  A transition is a 4-tuple
``(s_in, s_out, sigma, gamma)`` with ``sigma`` a subset of ``Sigma`` (the
guard: incoming message plus predicate conditions) and ``gamma`` a subset of
``Gamma`` (the responsive actions, possibly ``null_action``).

This module provides the concrete data structures used everywhere else in
the framework: the model extractor produces :class:`FiniteStateMachine`
instances, the threat instrumentor consumes two of them, and the refinement
analysis of RQ2 compares them.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

#: The distinguished action recorded when an incoming message triggers no
#: response at all (Algorithm 1, lines 20-21).
NULL_ACTION = "null_action"


class FSMError(Exception):
    """Raised for structurally invalid machines or transitions."""


@dataclass(frozen=True, order=True)
class Transition:
    """A single FSM transition ``(s_in, s_out, sigma, gamma)``.

    ``conditions`` holds the incoming-message name first (by convention) and
    any predicate conditions after it, e.g.
    ``("authentication_request", "mac_valid=1", "sqn_in_range=1")``.
    ``actions`` holds the outgoing-message names, or ``(NULL_ACTION,)``.
    """

    source: str
    target: str
    conditions: Tuple[str, ...]
    actions: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.source or not self.target:
            raise FSMError("transition requires non-empty source and target")
        if not self.conditions:
            raise FSMError("transition requires at least one condition")
        if not self.actions:
            raise FSMError("transition requires at least one action "
                           f"(use {NULL_ACTION!r} for no response)")

    @property
    def trigger(self) -> str:
        """The incoming message that fires this transition."""
        return self.conditions[0]

    @property
    def predicates(self) -> Tuple[str, ...]:
        """Guard conditions beyond the triggering message."""
        return self.conditions[1:]

    def with_extra_condition(self, predicate: str) -> "Transition":
        """Return a stricter copy whose guard also requires ``predicate``."""
        return Transition(self.source, self.target,
                          self.conditions + (predicate,), self.actions)

    def describe(self) -> str:
        guard = " & ".join(self.conditions)
        acts = ", ".join(self.actions)
        return f"{self.source} --[{guard} / {acts}]--> {self.target}"


@dataclass
class FiniteStateMachine:
    """A protocol FSM per the paper's Section III-B definition.

    States, conditions and actions are plain strings; the sets ``Sigma``
    (conditions) and ``Gamma`` (actions) are derived from the registered
    transitions plus any explicitly added vocabulary.
    """

    name: str
    initial_state: str
    states: Set[str] = field(default_factory=set)
    transitions: List[Transition] = field(default_factory=list)
    extra_conditions: Set[str] = field(default_factory=set)
    extra_actions: Set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not self.initial_state:
            raise FSMError("FSM requires an initial state")
        self.states.add(self.initial_state)
        for transition in self.transitions:
            self.states.add(transition.source)
            self.states.add(transition.target)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_state(self, state: str) -> None:
        """Register ``state`` in ``S`` (idempotent)."""
        if not state:
            raise FSMError("state name must be non-empty")
        self.states.add(state)

    def add_transition(
        self,
        source: str,
        target: str,
        conditions: Iterable[str],
        actions: Iterable[str] = (NULL_ACTION,),
    ) -> Transition:
        """Create, register and return a transition.

        Duplicate transitions (identical 4-tuples) are collapsed, matching
        Algorithm 1 which appends each observed tuple once per log block but
        whose output FSM is a *set* of transitions.
        """
        transition = Transition(source, target, tuple(conditions), tuple(actions))
        if transition not in self.transitions:
            self.transitions.append(transition)
            self.states.add(source)
            self.states.add(target)
        return transition

    # ------------------------------------------------------------------
    # The 5-tuple views
    # ------------------------------------------------------------------
    @property
    def conditions(self) -> Set[str]:
        """``Sigma``: every condition that appears on some transition."""
        sigma = set(self.extra_conditions)
        for transition in self.transitions:
            sigma.update(transition.conditions)
        return sigma

    @property
    def actions(self) -> Set[str]:
        """``Gamma``: every action that appears on some transition."""
        gamma = set(self.extra_actions)
        for transition in self.transitions:
            gamma.update(transition.actions)
        return gamma

    @property
    def triggers(self) -> Set[str]:
        """The incoming-message alphabet (first condition of each guard)."""
        return {t.trigger for t in self.transitions}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def transitions_from(self, state: str) -> List[Transition]:
        return [t for t in self.transitions if t.source == state]

    def transitions_to(self, state: str) -> List[Transition]:
        return [t for t in self.transitions if t.target == state]

    def transitions_on(self, trigger: str) -> List[Transition]:
        return [t for t in self.transitions if t.trigger == trigger]

    def successors(self, state: str) -> Set[str]:
        return {t.target for t in self.transitions_from(state)}

    def reachable_states(self) -> Set[str]:
        """States reachable from ``s0`` over the transition relation."""
        seen = {self.initial_state}
        frontier = [self.initial_state]
        while frontier:
            state = frontier.pop()
            for nxt in self.successors(state):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def unreachable_states(self) -> Set[str]:
        return self.states - self.reachable_states()

    def is_deterministic(self) -> bool:
        """True when no state has two transitions with the same full guard."""
        seen: Set[Tuple[str, FrozenSet[str]]] = set()
        for transition in self.transitions:
            key = (transition.source, frozenset(transition.conditions))
            if key in seen:
                return False
            seen.add(key)
        return True

    def nondeterministic_pairs(self) -> List[Tuple[Transition, Transition]]:
        """All pairs of same-source transitions with identical guards."""
        pairs = []
        by_key: Dict[Tuple[str, FrozenSet[str]], List[Transition]] = {}
        for transition in self.transitions:
            key = (transition.source, frozenset(transition.conditions))
            by_key.setdefault(key, []).append(transition)
        for group in by_key.values():
            pairs.extend(itertools.combinations(group, 2))
        return pairs

    def paths(self, source: str, target: str,
              max_length: int = 8) -> Iterator[List[Transition]]:
        """Yield simple transition paths from ``source`` to ``target``."""
        def walk(state: str, path: List[Transition], visited: Set[str]):
            if len(path) > max_length:
                return
            if state == target and path:
                yield list(path)
                return
            for transition in self.transitions_from(state):
                if transition.target in visited and transition.target != target:
                    continue
                path.append(transition)
                yield from walk(transition.target,
                                path, visited | {transition.target})
                path.pop()

        yield from walk(source, [], {source})

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def merge(self, other: "FiniteStateMachine") -> None:
        """Union ``other``'s states and transitions into this machine.

        Used when combining the FSM fragments extracted from several
        conformance-log blocks into one machine for the implementation.
        """
        self.states.update(other.states)
        for transition in other.transitions:
            if transition not in self.transitions:
                self.transitions.append(transition)
        self.extra_conditions.update(other.extra_conditions)
        self.extra_actions.update(other.extra_actions)

    def copy(self, name: Optional[str] = None) -> "FiniteStateMachine":
        return FiniteStateMachine(
            name=name or self.name,
            initial_state=self.initial_state,
            states=set(self.states),
            transitions=list(self.transitions),
            extra_conditions=set(self.extra_conditions),
            extra_actions=set(self.extra_actions),
        )

    def fingerprint(self) -> str:
        """Content hash of the machine's behaviour.

        Covers the initial state and the *sorted* transition set —
        independent of the machine's name, of transition insertion order
        and of unreferenced extra vocabulary, so two extractions agree
        iff they observed the same behaviours.  This is the identity the
        consensus extractor compares across chaos seeds.
        """
        digest = hashlib.sha256()
        digest.update(self.initial_state.encode())
        for transition in sorted(self.transitions):
            digest.update(repr((transition.source, transition.target,
                                transition.conditions,
                                transition.actions)).encode())
        return digest.hexdigest()

    def summary(self) -> Dict[str, int]:
        """Size metrics used in the RQ2 model comparison."""
        return {
            "states": len(self.states),
            "transitions": len(self.transitions),
            "conditions": len(self.conditions),
            "actions": len(self.actions),
        }

    def __len__(self) -> int:
        return len(self.transitions)

    def __iter__(self) -> Iterator[Transition]:
        return iter(self.transitions)
