"""Graphviz-like serialisation of protocol FSMs.

The paper's model generator "takes as input the state machine of the protocol
written in Graphviz-like language and outputs a SMV description of the
model".  This module implements that Graphviz-like surface syntax: a strict
subset of DOT where every edge carries a ``label="cond1 & cond2 / act1,
act2"`` attribute and the initial state is marked with a ``shape=doublecircle``
node attribute.

Round-tripping (:func:`to_dot` then :func:`from_dot`) preserves the machine
exactly, which the test suite asserts with hypothesis.
"""

from __future__ import annotations

import re
from typing import Dict, List

from .machine import FiniteStateMachine, FSMError

_EDGE_RE = re.compile(
    r'^\s*"?(?P<src>[\w.$-]+)"?\s*->\s*"?(?P<dst>[\w.$-]+)"?'
    r'\s*\[label="(?P<label>[^"]*)"\]\s*;?\s*$')
_NODE_RE = re.compile(
    r'^\s*"?(?P<node>[\w.$-]+)"?\s*\[(?P<attrs>[^\]]*)\]\s*;?\s*$')
_NAME_RE = re.compile(r'^\s*digraph\s+"?(?P<name>[\w.$-]+)"?\s*\{\s*$')


def _quote(name: str) -> str:
    return f'"{name}"'


def transition_label(conditions, actions) -> str:
    """Render a transition guard/action pair as an edge label."""
    return f"{' & '.join(conditions)} / {', '.join(actions)}"


def parse_label(label: str):
    """Split an edge label back into (conditions, actions)."""
    if "/" not in label:
        raise FSMError(f"edge label missing '/' separator: {label!r}")
    guard, _, acts = label.partition("/")
    conditions = tuple(part.strip() for part in guard.split("&") if part.strip())
    actions = tuple(part.strip() for part in acts.split(",") if part.strip())
    if not conditions or not actions:
        raise FSMError(f"edge label malformed: {label!r}")
    return conditions, actions


def to_dot(fsm: FiniteStateMachine) -> str:
    """Serialise ``fsm`` to the Graphviz-like model-generator language."""
    lines: List[str] = [f"digraph {_quote(fsm.name)} {{"]
    lines.append(f"  {_quote(fsm.initial_state)} [shape=doublecircle];")
    for state in sorted(fsm.states - {fsm.initial_state}):
        lines.append(f"  {_quote(state)} [shape=circle];")
    for transition in sorted(fsm.transitions):
        label = transition_label(transition.conditions, transition.actions)
        lines.append(f"  {_quote(transition.source)} -> "
                     f"{_quote(transition.target)} [label=\"{label}\"];")
    lines.append("}")
    return "\n".join(lines)


def from_dot(text: str) -> FiniteStateMachine:
    """Parse the Graphviz-like language back into a machine."""
    name = "fsm"
    initial = None
    states: List[str] = []
    edges: List[Dict] = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line == "}" or line.startswith(("//", "#")):
            continue
        name_match = _NAME_RE.match(line)
        if name_match:
            name = name_match.group("name")
            continue
        edge_match = _EDGE_RE.match(line)
        if edge_match:
            conditions, actions = parse_label(edge_match.group("label"))
            edges.append({
                "source": edge_match.group("src"),
                "target": edge_match.group("dst"),
                "conditions": conditions,
                "actions": actions,
            })
            continue
        node_match = _NODE_RE.match(line)
        if node_match:
            node = node_match.group("node")
            states.append(node)
            if "doublecircle" in node_match.group("attrs"):
                if initial is not None and initial != node:
                    raise FSMError("multiple initial states in DOT input")
                initial = node
            continue
        raise FSMError(f"unparseable DOT line: {raw_line!r}")
    if initial is None:
        raise FSMError("DOT input does not mark an initial state "
                       "(shape=doublecircle)")
    fsm = FiniteStateMachine(name=name, initial_state=initial)
    for state in states:
        fsm.add_state(state)
    for edge in edges:
        fsm.add_transition(edge["source"], edge["target"],
                           edge["conditions"], edge["actions"])
    return fsm
