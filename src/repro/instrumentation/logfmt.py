"""The information-rich execution log format (Fig. 3(d)).

Both instrumentors — the C-like textual one and the Python runtime tracer
— emit this line-oriented schema, and the model extractor consumes it:

- ``ENTER <function>``          function entrance indication
- ``GLOBAL <name>=<value>``     a global state variable's current value
- ``LOCAL <name>=<value>``      a local variable's last value before exit
- ``EXIT <function>``           function return
- ``TESTCASE <name>``           conformance test-case boundary marker

Values are rendered compactly: ints/bools as decimal, strings verbatim,
bytes as a short hex prefix.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, TextIO, Tuple, Union

ENTER = "ENTER"
EXIT = "EXIT"
GLOBAL = "GLOBAL"
LOCAL = "LOCAL"
TESTCASE = "TESTCASE"

_RECORD_KINDS = (ENTER, EXIT, GLOBAL, LOCAL, TESTCASE)


class LogFormatError(Exception):
    """Raised on unparseable log lines."""


def render_value(value: object) -> str:
    """Render a variable value for the log (stable and compact)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (bytes, bytearray)):
        return "0x" + bytes(value[:8]).hex()
    return str(value)


@dataclass(frozen=True)
class LogRecord:
    """One parsed log line."""

    kind: str
    name: str
    value: Optional[str] = None

    def render(self) -> str:
        if self.kind in (GLOBAL, LOCAL):
            return f"{self.kind} {self.name}={self.value}"
        return f"{self.kind} {self.name}"

    @classmethod
    def parse(cls, line: str) -> Optional["LogRecord"]:
        """Parse a log line; returns ``None`` for non-record lines.

        Real conformance logs interleave unrelated output; anything that
        does not match the schema is ignored, as the extractor only keys
        on signature-bearing lines.
        """
        stripped = line.strip()
        if not stripped:
            return None
        parts = stripped.split(None, 1)
        if parts[0] not in _RECORD_KINDS or len(parts) < 2:
            return None
        kind, rest = parts[0], parts[1]
        if kind in (GLOBAL, LOCAL):
            if "=" not in rest:
                raise LogFormatError(f"malformed {kind} line: {line!r}")
            name, _, value = rest.partition("=")
            return cls(kind, name.strip(), value.strip())
        return cls(kind, rest.strip())


class LogWriter:
    """Streaming writer used by the instrumentors."""

    def __init__(self, stream: Optional[TextIO] = None):
        self.stream = stream if stream is not None else io.StringIO()
        self.lines_written = 0

    def _write(self, record: LogRecord) -> None:
        self.stream.write(record.render() + "\n")
        self.lines_written += 1

    def enter(self, function: str) -> None:
        self._write(LogRecord(ENTER, function))

    def exit(self, function: str) -> None:
        self._write(LogRecord(EXIT, function))

    def global_var(self, name: str, value: object) -> None:
        self._write(LogRecord(GLOBAL, name, render_value(value)))

    def local_var(self, name: str, value: object) -> None:
        self._write(LogRecord(LOCAL, name, render_value(value)))

    def testcase(self, name: str) -> None:
        self._write(LogRecord(TESTCASE, name))

    def getvalue(self) -> str:
        if isinstance(self.stream, io.StringIO):
            return self.stream.getvalue()
        raise LogFormatError("writer is not backed by a StringIO")


def parse_log(text: Union[str, Iterable[str]]) -> List[LogRecord]:
    """Parse a full log into records, skipping non-record lines."""
    lines = text.splitlines() if isinstance(text, str) else text
    records = []
    for line in lines:
        record = LogRecord.parse(line)
        if record is not None:
            records.append(record)
    return records


def iter_testcases(records: Iterable[LogRecord]
                   ) -> Iterator[Tuple[str, List[LogRecord]]]:
    """Split a parsed log at TESTCASE markers."""
    current_name = "(preamble)"
    bucket: List[LogRecord] = []
    for record in records:
        if record.kind == TESTCASE:
            if bucket:
                yield current_name, bucket
            current_name = record.name
            bucket = []
        else:
            bucket.append(record)
    if bucket:
        yield current_name, bucket
