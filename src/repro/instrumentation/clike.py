"""Source-level instrumentor for C-like code (the paper's Fig. 3 tool).

"Our code instrumentation prints only the values of global variables,
local variables and function entrance/entry points in the log for each
function" — using two standard-coding-practice insights: global variables
are declared in separate header (``.h``) files, and local variables are
declared in the first basic block of each function.

:class:`CLikeInstrumenter` implements exactly that over a simplified C
subset sufficient for NAS-layer handler code: it parses function
definitions, global declarations from header text, and first-block local
declarations; it then inserts ``printf`` statements (a) after the opening
brace of every function (ENTER + GLOBAL dumps) and (b) before every
``return`` and before the closing brace (LOCAL + GLOBAL dumps).  The
emitted statements print in the :mod:`repro.instrumentation.logfmt`
schema, so a compiled-and-run instrumented program would produce logs the
extractor consumes directly.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

_FUNC_RE = re.compile(
    r"^(?P<indent>\s*)(?P<ret>[\w*]+)\s+(?P<name>\w+)\s*"
    r"\((?P<args>[^)]*)\)\s*\{\s*$")
_DECL_RE = re.compile(
    r"^\s*(?P<type>(?:unsigned\s+|signed\s+|struct\s+)?[\w]+)\s*"
    r"(?P<ptr>\**)\s*(?P<name>\w+)\s*(=\s*[^;]+)?;\s*$")
_GLOBAL_DECL_RE = re.compile(
    r"^\s*(?:extern\s+)?(?P<type>(?:unsigned\s+|signed\s+|struct\s+)?[\w]+)"
    r"\s*(?P<ptr>\**)\s*(?P<name>\w+)\s*(=\s*[^;]+)?;\s*$")
_RETURN_RE = re.compile(r"^(?P<indent>\s*)return\b")

_C_KEYWORDS = frozenset({
    "if", "else", "while", "for", "return", "switch", "case", "break",
    "typedef", "void",
})

#: C types printed with %d; everything else is printed with %s.
_INT_TYPES = frozenset({
    "int", "bool", "char", "short", "long", "unsigned", "signed",
    "uint8_t", "uint16_t", "uint32_t", "int8_t", "int16_t", "int32_t",
    "size_t",
})


class InstrumentationError(Exception):
    """Raised when the source cannot be parsed for instrumentation."""


@dataclass
class FunctionInfo:
    """One discovered function and its instrumentation points."""

    name: str
    start_line: int           # index of the "type name(...) {" line
    end_line: int             # index of the closing brace line
    locals: List[Tuple[str, str]] = field(default_factory=list)
    return_lines: List[int] = field(default_factory=list)


def parse_globals(header_source: str) -> List[Tuple[str, str]]:
    """Extract global declarations ``(type, name)`` from header text."""
    found = []
    for line in header_source.splitlines():
        stripped = line.strip()
        if (not stripped or stripped.startswith(("/", "#", "*"))
                or "(" in stripped):
            continue
        match = _GLOBAL_DECL_RE.match(line)
        if match and match.group("name") not in _C_KEYWORDS:
            var_type = match.group("type") + match.group("ptr")
            found.append((var_type, match.group("name")))
    return found


def _printf_for(kind: str, var_type: str, name: str, indent: str) -> str:
    base = var_type.split()[0]
    if base in _INT_TYPES and not var_type.endswith("*"):
        return (f'{indent}printf("{kind} {name}=%d\\n", {name});')
    return f'{indent}printf("{kind} {name}=%s\\n", {name});'


class CLikeInstrumenter:
    """Instrument a C-like source file given its globals."""

    def __init__(self, globals_decls: Sequence[Tuple[str, str]] = ()):
        self.globals_decls = list(globals_decls)

    # ------------------------------------------------------------------
    def discover_functions(self, source: str) -> List[FunctionInfo]:
        lines = source.splitlines()
        functions: List[FunctionInfo] = []
        index = 0
        while index < len(lines):
            match = _FUNC_RE.match(lines[index])
            if not match or match.group("name") in _C_KEYWORDS:
                index += 1
                continue
            info = FunctionInfo(name=match.group("name"),
                                start_line=index, end_line=-1)
            depth = 1
            cursor = index + 1
            in_first_block = True
            while cursor < len(lines) and depth > 0:
                line = lines[cursor]
                depth += line.count("{") - line.count("}")
                if depth == 0:
                    info.end_line = cursor
                    break
                if _RETURN_RE.match(line):
                    info.return_lines.append(cursor)
                if in_first_block:
                    decl = _DECL_RE.match(line)
                    if decl and decl.group("type") not in _C_KEYWORDS \
                            and decl.group("name") not in _C_KEYWORDS:
                        local_type = decl.group("type") + decl.group("ptr")
                        info.locals.append((local_type,
                                            decl.group("name")))
                    elif line.strip() and not decl:
                        first_word = line.strip().split("(")[0].split()[0] \
                            if line.strip() else ""
                        if first_word in _C_KEYWORDS or "{" in line:
                            in_first_block = False
                cursor += 1
            if info.end_line < 0:
                raise InstrumentationError(
                    f"unbalanced braces in function {info.name!r}")
            functions.append(info)
            index = info.end_line + 1
        return functions

    # ------------------------------------------------------------------
    def instrument(self, source: str) -> str:
        """Return the source with the print statements inserted."""
        lines = source.splitlines()
        functions = self.discover_functions(source)
        insertions: Dict[int, List[str]] = {}

        def insert_after(line_index: int, new_lines: List[str]) -> None:
            insertions.setdefault(line_index + 1, []).extend(new_lines)

        def insert_before(line_index: int, new_lines: List[str]) -> None:
            insertions.setdefault(line_index, []).extend(new_lines)

        for info in functions:
            indent = "    "
            entry = [f'{indent}printf("ENTER {info.name}\\n");']
            for var_type, name in self.globals_decls:
                entry.append(_printf_for("GLOBAL", var_type, name, indent))
            insert_after(info.start_line, entry)

            exit_dump = []
            for var_type, name in info.locals:
                exit_dump.append(_printf_for("LOCAL", var_type, name,
                                             indent))
            for var_type, name in self.globals_decls:
                exit_dump.append(_printf_for("GLOBAL", var_type, name,
                                             indent))
            exit_dump.append(f'{indent}printf("EXIT {info.name}\\n");')
            for return_line in info.return_lines:
                return_indent = _RETURN_RE.match(
                    lines[return_line]).group("indent")
                insert_before(return_line,
                              [line.replace(indent, return_indent, 1)
                               for line in exit_dump])
            # falls-off-the-end exit point
            if not lines[info.end_line - 1].strip().startswith("return"):
                insert_before(info.end_line, exit_dump)

        output: List[str] = []
        for index, line in enumerate(lines):
            output.extend(insertions.get(index, []))
            output.append(line)
        output.extend(insertions.get(len(lines), []))
        return "\n".join(output) + "\n"

    def instrumented_line_count(self, source: str) -> int:
        """How many print statements instrumentation would add."""
        before = source.count("\n")
        after = self.instrument(source).count("\n")
        return after - before
