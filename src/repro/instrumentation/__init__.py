"""Code instrumentation: information-rich log generation (Section IV-A).

- :mod:`repro.instrumentation.logfmt` — the common log schema;
- :mod:`repro.instrumentation.clike` — the paper's source-level
  instrumentor for C-like code (Fig. 3);
- :mod:`repro.instrumentation.runtime` — the equivalent for our Python
  implementations, via ``sys.settrace`` (no source modification needed).
"""

from .logfmt import (ENTER, EXIT, GLOBAL, LOCAL, TESTCASE, LogFormatError,
                     LogRecord, LogWriter, iter_testcases, parse_log,
                     render_value)
from .clike import (CLikeInstrumenter, FunctionInfo, InstrumentationError,
                    parse_globals)
from .runtime import RuntimeInstrumenter, TraceTargets, trace_run

__all__ = [
    "ENTER", "EXIT", "GLOBAL", "LOCAL", "TESTCASE", "LogFormatError",
    "LogRecord", "LogWriter", "iter_testcases", "parse_log", "render_value",
    "CLikeInstrumenter", "FunctionInfo", "InstrumentationError",
    "parse_globals",
    "RuntimeInstrumenter", "TraceTargets", "trace_run",
]
