"""Runtime instrumentation of the Python NAS implementations.

The paper instruments C/C++ sources with print statements; the faithful
equivalent for a Python implementation is a ``sys.settrace`` hook that —
with *no modification or knowledge of the implementation code* — logs:

- function entrance for every message handler (names matching the
  implementation's ``recv``/``send`` signature prefixes),
- the values of the "global" protocol state variables (the attributes the
  implementation keeps on its NAS object, per the paper's observation
  that state lives in globals) at entry and exit,
- the values of all simple-typed locals right before the function returns.

The output is the :mod:`repro.instrumentation.logfmt` schema, identical to
what the C-like instrumentor produces, so the extractor is agnostic to
which instrumentor generated the log.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Optional, Tuple

from .logfmt import LogWriter

#: Local variable types worth logging (condition flags, causes, counters).
_LOGGABLE_TYPES = (bool, int, str)

#: Locals never worth logging (bindings of the message object itself etc.).
_SKIPPED_LOCALS = frozenset({
    "self", "msg", "fields", "frame", "handler", "namespace", "request",
    "protected", "body", "checks", "ctx", "new_ctx", "verdict", "vector",
})


def _is_loggable(name: str, value: object) -> bool:
    if name.startswith("_") or name in _SKIPPED_LOCALS:
        return False
    return isinstance(value, _LOGGABLE_TYPES)


@dataclass
class TraceTargets:
    """What the tracer should instrument.

    ``prefixes`` are the handler-name signatures (e.g. ``("parse_",
    "send_")`` for srsLTE); ``state_attributes`` are the global state
    variables to dump; ``module_fragment`` restricts tracing to the
    implementation's source tree (the paper likewise instruments only the
    NAS-layer directory).
    """

    prefixes: Tuple[str, ...]
    state_attributes: Tuple[str, ...]
    module_fragment: str = "repro/lte"
    #: Helper frames whose locals belong to the enclosing handler.  In the
    #: C originals the sanity checks are part of the handler body; in our
    #: Python stack they live in ``_recv_*_impl``/``_gate_*`` helpers, so
    #: the tracer logs their locals without an ENTER of their own.
    local_only_prefixes: Tuple[str, ...] = (
        "_recv_", "_gate_", "_check_", "_verify_")
    #: When set, only frames whose ``self`` is an instance of this class
    #: are traced — the moral equivalent of instrumenting only the UE's
    #: source directory and not the core network's.
    instance_class: Optional[type] = None

    @classmethod
    def for_implementation(cls, ue_class) -> "TraceTargets":
        """Derive targets from a UE class's declared signature style."""
        prefixes = (ue_class.RECV_PREFIX, ue_class.SEND_PREFIX,
                    "power_on", "initiate_", "air_msg_handler")
        return cls(prefixes=tuple(prefixes),
                   state_attributes=tuple(ue_class.STATE_VARIABLES),
                   instance_class=ue_class)


class RuntimeInstrumenter:
    """``sys.settrace``-based log generator (context manager).

    Usage::

        writer = LogWriter()
        with RuntimeInstrumenter(writer, TraceTargets.for_implementation(cls)):
            run_conformance_suite(...)
    """

    def __init__(self, writer: LogWriter, targets: TraceTargets):
        self.writer = writer
        self.targets = targets
        self._previous_trace = None
        self.functions_traced = 0

    # ------------------------------------------------------------------
    def __enter__(self) -> "RuntimeInstrumenter":
        self._previous_trace = sys.gettrace()
        sys.settrace(self._global_trace)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        sys.settrace(self._previous_trace)

    # ------------------------------------------------------------------
    def _tier(self, frame) -> Optional[str]:
        """``"full"`` for signature handlers, ``"locals"`` for helpers."""
        code = frame.f_code
        if self.targets.module_fragment not in code.co_filename.replace(
                "\\", "/"):
            return None
        if self.targets.instance_class is not None and not isinstance(
                frame.f_locals.get("self"), self.targets.instance_class):
            return None
        if any(code.co_name.startswith(prefix)
               for prefix in self.targets.prefixes):
            return "full"
        if any(code.co_name.startswith(prefix)
               for prefix in self.targets.local_only_prefixes):
            return "locals"
        return None

    def _dump_state(self, frame) -> None:
        instance = frame.f_locals.get("self")
        if instance is None:
            return
        for attribute in self.targets.state_attributes:
            if hasattr(instance, attribute):
                self.writer.global_var(attribute,
                                       getattr(instance, attribute))

    def _global_trace(self, frame, event, arg):
        if event != "call":
            return None
        tier = self._tier(frame)
        if tier is None:
            return None
        self.functions_traced += 1
        name = frame.f_code.co_name
        if tier == "full":
            self.writer.enter(name)
            self._dump_state(frame)

        def local_trace(inner_frame, inner_event, inner_arg):
            if inner_event == "return":
                for local_name, value in sorted(
                        inner_frame.f_locals.items()):
                    if _is_loggable(local_name, value):
                        self.writer.local_var(local_name, value)
                if tier == "full":
                    self._dump_state(inner_frame)
                    self.writer.exit(name)
            return local_trace

        return local_trace


def trace_run(ue_class, writer: LogWriter):
    """Convenience: an armed instrumenter for one implementation class."""
    return RuntimeInstrumenter(writer,
                               TraceTargets.for_implementation(ue_class))
