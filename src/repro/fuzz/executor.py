"""Lockstep differential execution of fuzz schedules.

The oracle is the one the paper's whole pipeline is built on — "the
extracted FSM *is* the conformance claim" — applied differentially: the
same schedule runs against the target implementation and against the
compliant reference, on two identical, fully deterministic testbeds
(fixed MSIN, fixed crafted RAND, no chaos randomness).  After every step
both harnesses report the instrumented observation vector the extractor
itself logs (EMM state, security-context and GUTI flags, the downlink
COUNT window, and the uplink messages the step elicited).  The first
step where the vectors differ is a *deviation*: the target left the
behaviour its specification-compliant twin exhibits, with zero prior
knowledge of any seeded bug.

Coverage feedback is extracted-FSM transition coverage: the UE's air
handler is wrapped so every delivered downlink yields a
``(state_before, trigger, state_after, actions)`` key, directly
comparable with the target's extracted :class:`Transition` tuples.
Keys outside the extracted machine ("off-model") mark the frontier the
corpus scheduler chases, per CovFUZZ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..conformance.testcase import ConformanceError, TestContext
from ..fsm import NULL_ACTION, FiniteStateMachine
from ..lte import constants as c
from ..lte.channel import corrupt_frame
from ..lte.implementations import IMPLEMENTATION_NAMES, create_ue
from ..lte.messages import MessageError, NasMessage
from ..lte.security import DIR_DOWNLINK
from .schedule import FuzzScheduleError, Step

#: A coverage key: (state_before, trigger, state_after, actions).
CoverageKey = Tuple[str, str, str, Tuple[str, ...]]

#: Observation-vector fields compared between target and reference.
OBSERVATION_FIELDS = ("state", "ctx", "guti", "dl_count", "uplink",
                      "skipped", "error")


def fsm_coverage_universe(fsm: FiniteStateMachine) -> Set[CoverageKey]:
    """The extracted machine's transitions as coverage keys."""
    return {(t.source, t.trigger, t.target, tuple(t.actions))
            for t in fsm.transitions}


class _Harness:
    """One implementation wired to a fresh deterministic testbed."""

    def __init__(self, implementation: str):
        if implementation not in IMPLEMENTATION_NAMES:
            raise FuzzScheduleError(
                f"unknown implementation {implementation!r}; "
                f"choose from {IMPLEMENTATION_NAMES}")
        self.implementation = implementation
        self.ctx = TestContext(
            lambda subscriber, link, clock=None: create_ue(
                implementation, subscriber, link, clock=clock))
        self.coverage: List[CoverageKey] = []
        self._install_tracer()

    # ------------------------------------------------------------------
    def _install_tracer(self) -> None:
        """Wrap the UE air handler to record per-delivery coverage."""
        ue = self.ctx.ue
        link = self.ctx.link
        inner = ue.air_msg_handler

        def traced(frame: bytes) -> None:
            trigger = self._frame_name(frame)
            state_before = ue.emm_state
            mark = len(link.history)
            try:
                inner(frame)
            finally:
                actions = tuple(self._uplink_names(mark))
                self.coverage.append(
                    (state_before, trigger, ue.emm_state,
                     actions or (NULL_ACTION,)))

        link.attach_ue(traced)

    @staticmethod
    def _frame_name(frame: bytes) -> str:
        try:
            return NasMessage.from_wire(frame).name
        except MessageError:
            return "malformed"

    def _uplink_names(self, mark: int) -> List[str]:
        names = []
        for record in self.ctx.link.history[mark:]:
            if record.direction != "uplink":
                continue
            names.append(self._frame_name(record.frame))
        return names

    # ------------------------------------------------------------------
    def run_step(self, step: Step) -> Dict[str, object]:
        mark = len(self.ctx.link.history)
        skipped = False
        error = ""
        try:
            skipped = not self._dispatch(step)
        except ConformanceError:
            # A probe precondition is unmet (e.g. nothing to protect
            # with) — the step is a deterministic no-op, not a verdict.
            skipped = True
        except Exception as exc:  # noqa: BLE001 - implementation crash
            # The implementation (not the harness) blew up: that *is*
            # an observation, compared like any other field.
            error = type(exc).__name__
        ue = self.ctx.ue
        return {
            "state": ue.emm_state,
            "ctx": int(bool(ue.has_security_ctx)),
            "guti": int(ue.current_guti is not None),
            "dl_count": int(ue.dl_count),
            "uplink": self._uplink_names(mark),
            "skipped": skipped,
            "error": error,
        }

    def _dispatch(self, step: Step) -> bool:
        """Execute one step; False means it was skipped (no stimulus)."""
        op = step.get("op")
        if op == "attach":
            self.ctx.attach()
            return True
        if op == "mute":
            self.ctx.mute_mme()
            return True
        if op == "replay":
            return self.ctx.replay_downlink(str(step["name"]),
                                            int(step.get("index", -1)))
        if op == "auth":
            self.ctx.send_auth_request(int(step.get("seq", 1)),
                                       int(step.get("ind", 0)),
                                       bool(step.get("valid_mac", True)))
            return True
        if op == "craft":
            return self._craft(step)
        raise FuzzScheduleError(f"unknown fuzz step op {op!r}")

    # ------------------------------------------------------------------
    def _craft(self, step: Step) -> bool:
        fields = dict(step.get("fields") or {})
        for key, value in list(fields.items()):
            if value == "$imsi":
                fields[key] = str(self.ctx.subscriber.imsi)
            elif value == "$guti":
                fields[key] = str(self.ctx.ue.current_guti or "")
        mutations = list(step.get("mutations") or ())
        for mutation in mutations:
            self._apply_field_mutation(fields, mutation)
        message = NasMessage(name=str(step["name"]), fields=fields)
        if not self._protect(message, str(step.get("protection",
                                                   "plain"))):
            return False
        for mutation in mutations:
            self._apply_envelope_mutation(message, mutation)
        frame = message.to_wire()
        for mutation in mutations:
            frame = self._apply_wire_mutation(frame, mutation)
        self.ctx.link.inject_downlink(frame)
        return True

    def _protect(self, message: NasMessage, protection: str) -> bool:
        if protection == "plain":
            return True
        if protection == "protected":
            ctx_obj = self.ctx.mme.security_ctx
            if ctx_obj is None:
                return False
            _, tag, count = ctx_obj.protect(
                message.payload_bytes(), DIR_DOWNLINK, cipher=False)
            message.sec_header = c.SEC_HDR_INTEGRITY
            message.mac = tag
            message.count = count
            return True
        if protection == "bad_mac":
            message.sec_header = c.SEC_HDR_INTEGRITY
            message.mac = b"\xde\xad\xbe\xef" * 2
            message.count = 99
            return True
        raise FuzzScheduleError(f"unknown protection {protection!r}")

    @staticmethod
    def _apply_field_mutation(fields: Dict[str, object],
                              mutation: Dict[str, object]) -> None:
        kind = mutation.get("kind")
        if kind == "drop_field":
            fields.pop(str(mutation["field"]), None)
        elif kind == "dup_field":
            name = str(mutation["field"])
            if name in fields:
                fields[name + "_dup"] = fields[name]
        elif kind == "set_field":
            fields[str(mutation["field"])] = mutation.get("value")

    @staticmethod
    def _apply_envelope_mutation(message: NasMessage,
                                 mutation: Dict[str, object]) -> None:
        kind = mutation.get("kind")
        if kind == "sec_header":
            message.sec_header = int(mutation["value"])  # type: ignore
        elif kind == "count":
            message.count = int(mutation["value"])  # type: ignore

    @staticmethod
    def _apply_wire_mutation(frame: bytes,
                             mutation: Dict[str, object]) -> bytes:
        if mutation.get("kind") != "bitflip" or not frame:
            return frame
        position = int(mutation["position"]) % len(frame)  # type: ignore
        mask = int(mutation["mask"]) & 0xFF  # type: ignore
        return corrupt_frame(frame, position, mask or 1)


@dataclass
class ExecutionResult:
    """One lockstep run: per-step observation pairs and coverage."""

    schedule: List[Step]
    target: List[Dict[str, object]]
    reference: List[Dict[str, object]]
    coverage: FrozenSet[CoverageKey] = field(default_factory=frozenset)
    divergence_index: Optional[int] = None

    @property
    def diverged(self) -> bool:
        return self.divergence_index is not None

    def divergence_signature(self) -> Optional[Tuple]:
        """A stable identity for *what* differed (not where).

        Hashing the (observed, expected) pair — rather than the step
        index — keeps the signature invariant under the minimiser's
        step removals, which is what makes ddmin sound here.
        """
        if self.divergence_index is None:
            return None
        index = self.divergence_index
        observed, expected = self.target[index], self.reference[index]
        return (tuple((key, _freeze(observed[key]))
                      for key in OBSERVATION_FIELDS),
                tuple((key, _freeze(expected[key]))
                      for key in OBSERVATION_FIELDS))


def _freeze(value):
    return tuple(value) if isinstance(value, list) else value


def run_schedule(implementation: str, steps: Sequence[Step],
                 reference: str = "reference") -> ExecutionResult:
    """Execute one schedule in lockstep on target and reference."""
    target = _Harness(implementation)
    baseline = _Harness(reference)
    observed: List[Dict[str, object]] = []
    expected: List[Dict[str, object]] = []
    divergence: Optional[int] = None
    for index, step in enumerate(steps):
        observed.append(target.run_step(step))
        expected.append(baseline.run_step(step))
        if divergence is None and observed[-1] != expected[-1]:
            divergence = index
    return ExecutionResult(
        schedule=list(steps),
        target=observed,
        reference=expected,
        coverage=frozenset(target.coverage),
        divergence_index=divergence,
    )
