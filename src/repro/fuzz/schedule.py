"""Fuzz schedules: serialisable stimulus programs and their mutations.

A fuzz input is not a byte blob — it is a *schedule*: an ordered list of
JSON-serialisable step dicts the lockstep executor replays against a
fresh UE/MME pair.  Keeping the input symbolic (CovFUZZ mutates decoded
NAS fields for the same reason) means every corpus entry and every
minimised deviation artifact is human-readable, diffable, and replayable
byte-for-byte on any machine.

Step vocabulary (``op`` discriminates):

- ``attach`` — power the UE on and run the full attach exchange;
- ``mute``   — unplug the MME (the harness takes over the network side);
- ``replay`` — re-inject a previously captured downlink frame;
- ``auth``   — craft an ``authentication_request`` with a chosen SQN
  (valid AUTN MAC computed at execution time under the subscriber key);
- ``craft``  — build a downlink message from a field template, protect
  it (``plain``/``protected``/``bad_mac``), apply the step's
  ``mutations`` list, and inject it.

Mutation records are declarative and applied at execution time, so the
minimiser can delta-debug over them: ``drop_field`` / ``dup_field`` /
``set_field`` (boundary values) act on the field dict, ``sec_header`` /
``count`` rewrite the security envelope *after* protection (the classic
header-downgrade tamper), and ``bitflip`` XORs one wire byte through the
chaos channel's :func:`repro.lte.channel.corrupt_frame`.

Everything here is a pure function of the seeded ``random.Random`` the
campaign owns — no global randomness, no wall clock.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Dict, List, Sequence

from ..lte import constants as c

Step = Dict[str, object]

#: Upper bound on schedule length the mutator enforces (a deviation
#: needs few steps; long schedules just burn executor time).
DEFAULT_MAX_STEPS = 8

#: Messages the ``craft`` op knows how to template.  Field values are
#: starting points the mutator perturbs; ``$imsi``/``$guti`` resolve to
#: the live subscriber identity at execution time.
CRAFT_FIELD_TEMPLATES: Dict[str, Dict[str, object]] = {
    c.IDENTITY_REQUEST: {"identity_type": "imsi"},
    c.AUTHENTICATION_REJECT: {},
    c.SECURITY_MODE_COMMAND: {"selected_eia": "eia1"},
    c.ATTACH_ACCEPT: {"guti": "00101-0001-01-00ff"},
    c.ATTACH_REJECT: {"cause": c.CAUSE_PLMN_NOT_ALLOWED},
    c.DETACH_REQUEST: {"reattach": 0},
    c.TAU_REJECT: {"cause": c.CAUSE_EPS_NOT_ALLOWED},
    c.SERVICE_REJECT: {"cause": c.CAUSE_CONGESTION},
    c.GUTI_REALLOCATION_COMMAND: {"guti": "00101-0001-01-0ee1"},
    c.EMM_INFORMATION: {"network_name": "fuzznet"},
    c.DOWNLINK_NAS_TRANSPORT: {"payload": "fz"},
    c.PAGING: {"paging_id": "$imsi"},
    c.CONFIGURATION_UPDATE_COMMAND: {"guti": "00101-0001-01-0cc2"},
}

#: ``set_field`` boundary values (JSON types only — schedules must stay
#: JSON round-trippable for artifacts and the corpus directory).
BOUNDARY_VALUES = (0, 1, -1, 255, 2 ** 31, 2 ** 63 - 1, "", "A" * 64)

#: SQN choices for the ``auth`` op: fresh, stale, equal-after-attach and
#: wraparound edges (the resynchronisation window is where I3 lives).
AUTH_SEQS = (1, 2, 31, 32, 2 ** 28 - 1)
AUTH_INDS = (0, 1, 31)

#: The corpus every campaign germinates from: the clean reference
#: corpus — an honest attach, and an attach with the network muted so
#: injected traffic is the only downlink stimulus.  Nothing here encodes
#: any knowledge of a seeded deviation.
SEED_SCHEDULES: Sequence[Sequence[Step]] = (
    ({"op": "attach"},),
    ({"op": "attach"}, {"op": "mute"}),
)


class FuzzScheduleError(ValueError):
    """Raised for a malformed step or mutation record."""


def clone_schedule(steps: Sequence[Step]) -> List[Step]:
    """Deep-copy a schedule through its canonical JSON form."""
    return json.loads(json.dumps(list(steps)))


def canonical_json(value) -> str:
    """The byte-stable JSON form digests are computed over."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def schedule_digest(steps: Sequence[Step]) -> str:
    """Content address of a schedule (corpus dedup key)."""
    return hashlib.sha256(
        canonical_json(list(steps)).encode()).hexdigest()


def random_step(rng: random.Random) -> Step:
    """Draw one step from the stimulus grammar."""
    roll = rng.random()
    if roll < 0.35:
        name = rng.choice(sorted(CRAFT_FIELD_TEMPLATES))
        protection = rng.choice(
            ("plain", "plain", "protected", "bad_mac"))
        return {"op": "craft", "name": name, "protection": protection,
                "fields": dict(CRAFT_FIELD_TEMPLATES[name]),
                "mutations": []}
    if roll < 0.65:
        return {"op": "replay",
                "name": rng.choice(c.DOWNLINK_MESSAGES),
                "index": rng.choice((-1, 0))}
    if roll < 0.80:
        return {"op": "auth", "seq": rng.choice(AUTH_SEQS),
                "ind": rng.choice(AUTH_INDS),
                "valid_mac": rng.random() < 0.8}
    if roll < 0.90:
        return {"op": "attach"}
    return {"op": "mute"}


def random_mutation(rng: random.Random, step: Step) -> Dict[str, object]:
    """Draw one mutation record applicable to a ``craft`` step."""
    fields = sorted(step.get("fields") or {})
    kinds = ["set_field", "sec_header", "count", "bitflip"]
    if fields:
        kinds += ["drop_field", "dup_field"]
    kind = rng.choice(kinds)
    if kind == "set_field":
        field = (rng.choice(fields) if fields
                 else rng.choice(("cause", "guti", "identity_type")))
        return {"kind": "set_field", "field": field,
                "value": rng.choice(BOUNDARY_VALUES)}
    if kind == "drop_field":
        return {"kind": "drop_field", "field": rng.choice(fields)}
    if kind == "dup_field":
        return {"kind": "dup_field", "field": rng.choice(fields)}
    if kind == "sec_header":
        return {"kind": "sec_header",
                "value": rng.choice((c.SEC_HDR_PLAIN, c.SEC_HDR_INTEGRITY,
                                     c.SEC_HDR_INTEGRITY_CIPHERED,
                                     c.SEC_HDR_INTEGRITY_NEW_CTX))}
    if kind == "count":
        return {"kind": "count", "value": rng.choice((0, 1, 99, 255))}
    return {"kind": "bitflip", "position": rng.randrange(64),
            "mask": rng.randrange(1, 256)}


def mutate_schedule(steps: Sequence[Step], rng: random.Random,
                    max_steps: int = DEFAULT_MAX_STEPS) -> List[Step]:
    """One mutation round over a parent schedule (parent untouched)."""
    mutated = clone_schedule(steps)
    craft_indices = [i for i, step in enumerate(mutated)
                     if step.get("op") == "craft"]
    roll = rng.random()
    if roll < 0.40 and len(mutated) < max_steps:
        mutated.append(random_step(rng))
    elif roll < 0.50 and len(mutated) < max_steps:
        mutated.insert(rng.randrange(len(mutated) + 1), random_step(rng))
    elif roll < 0.60 and len(mutated) > 1:
        mutated.pop(rng.randrange(1, len(mutated)))
    elif roll < 0.70 and len(mutated) < max_steps:
        mutated.append(clone_schedule(
            [mutated[rng.randrange(len(mutated))]])[0])
    elif craft_indices:
        step = mutated[rng.choice(craft_indices)]
        mutations = step.setdefault("mutations", [])
        assert isinstance(mutations, list)
        mutations.append(random_mutation(rng, step))
    elif len(mutated) < max_steps:
        mutated.append(random_step(rng))
    else:
        mutated[-1] = random_step(rng)
    return mutated
