"""``repro.fuzz`` — coverage-guided NAS fuzzing (ROADMAP item 3).

Deviation discovery as a workload: a seeded corpus scheduler mutates
NAS stimulus schedules, a lockstep differential executor runs each one
against the target *and* the compliant reference, extracted-FSM
transition coverage drives corpus retention (CovFUZZ's feedback signal
over "Learn, Check, Test"'s oracle), and every divergence is
delta-debugged into a replayable, content-addressed
:class:`Deviation` artifact.  Campaigns are deterministic and
width-invariant: ``(implementation, seed, budget)`` fixes every digest
regardless of ``--jobs``.

Surfaces: ``repro fuzz`` (CLI, exit code 6 on findings), the ``fuzz``
job type of :mod:`repro.serve`, and ``benchmarks/bench_fuzz.py``.
"""

from .deviation import Deviation, classify, minimize
from .executor import (ExecutionResult, fsm_coverage_universe,
                       run_schedule)
from .fuzzer import (FuzzConfig, FuzzConfigError, FuzzError, FuzzResult,
                     Fuzzer, campaign_digest, run_campaign)
from .schedule import (SEED_SCHEDULES, FuzzScheduleError,
                       mutate_schedule, schedule_digest)

__all__ = [
    "Deviation", "ExecutionResult", "FuzzConfig", "FuzzConfigError",
    "FuzzError", "FuzzResult", "FuzzScheduleError", "Fuzzer",
    "SEED_SCHEDULES", "campaign_digest", "classify",
    "fsm_coverage_universe", "minimize", "mutate_schedule",
    "run_campaign", "run_schedule", "schedule_digest",
]
