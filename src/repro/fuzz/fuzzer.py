"""The coverage-guided campaign loop: corpus scheduler + worker pool.

Determinism contract (the ``mc.*`` width-invariance discipline, applied
to fuzzing): a campaign is a pure function of ``(implementation, seed,
budget_execs, max_steps)``.  Candidate generation happens on the
scheduler thread from one seeded PRNG against the corpus state at batch
start; executions are side-effect-free; results fold back in batch
order.  ``--jobs`` only sets the thread-pool width inside a batch, so
``--jobs 1`` and ``--jobs 4`` produce byte-identical deviation digests,
corpus contents and coverage counters.

Feedback is two-tier, per CovFUZZ adapted to "Learn, Check, Test":

- an input that exercises a *new* coverage key (an extracted-FSM
  transition, or an off-model key — the frontier) joins the corpus;
- an input whose lockstep observations *diverge* from the reference is
  minimised and filed as a :class:`~repro.fuzz.deviation.Deviation`.

``fuzz.*`` obs metrics: ``fuzz.execs``, ``fuzz.corpus_size``,
``fuzz.coverage_transitions``, ``fuzz.coverage_frontier``,
``fuzz.deviations``, ``fuzz.minimize_execs``.
"""

from __future__ import annotations

import hashlib
import json
import random
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .. import obs, schema
from ..lte.implementations import IMPLEMENTATION_NAMES
from .deviation import Deviation, build_deviation
from .executor import (CoverageKey, ExecutionResult, fsm_coverage_universe,
                       run_schedule)
from .schedule import (DEFAULT_MAX_STEPS, SEED_SCHEDULES, Step,
                       canonical_json, clone_schedule, mutate_schedule,
                       schedule_digest)


class FuzzError(Exception):
    """Raised when a campaign cannot run (bad artifact, IO failure)."""


class FuzzConfigError(FuzzError, ValueError):
    """Raised for an invalid campaign configuration payload."""


#: Candidates generated per scheduling round.  Fixed — never derived
#: from ``jobs`` — because batch composition is part of the
#: deterministic schedule; ``jobs`` may only change who executes what.
BATCH_SIZE = 8

#: Per-campaign cap on minimisation work (each deviation costs tens of
#: executions to shrink; a pathological target must not starve the
#: budget-bounded discovery loop).
MAX_MINIMIZATIONS = 32


@dataclass
class FuzzConfig:
    """One campaign: target, seed, budget — the campaign's identity."""

    implementation: str
    seed: int = 0
    budget_execs: int = 400
    max_steps: int = DEFAULT_MAX_STEPS
    jobs: int = 1
    corpus_dir: Optional[str] = None
    reference: str = "reference"

    def __post_init__(self):
        if self.implementation not in IMPLEMENTATION_NAMES:
            raise FuzzConfigError(
                f"unknown implementation {self.implementation!r}; "
                f"choose from {IMPLEMENTATION_NAMES}")
        if self.reference not in IMPLEMENTATION_NAMES:
            raise FuzzConfigError(
                f"unknown reference {self.reference!r}")
        if self.budget_execs < 1:
            raise FuzzConfigError("budget_execs must be >= 1")
        if self.max_steps < 1:
            raise FuzzConfigError("max_steps must be >= 1")
        if self.jobs < 1:
            raise FuzzConfigError("jobs must be >= 1")

    def to_dict(self) -> Dict[str, object]:
        return schema.stamp({
            "type": "fuzz",
            "implementation": self.implementation,
            "seed": self.seed,
            "budget_execs": self.budget_execs,
            "max_steps": self.max_steps,
            "jobs": self.jobs,
            "corpus_dir": self.corpus_dir,
            "reference": self.reference,
        })

    @classmethod
    def from_dict(cls, payload: Dict) -> "FuzzConfig":
        schema.check(payload, kind="fuzz config")
        try:
            return cls(
                implementation=str(payload["implementation"]),
                seed=int(payload.get("seed", 0)),
                budget_execs=int(payload.get("budget_execs", 400)),
                max_steps=int(payload.get("max_steps",
                                          DEFAULT_MAX_STEPS)),
                jobs=int(payload.get("jobs", 1)),
                corpus_dir=payload.get("corpus_dir"),
                reference=str(payload.get("reference", "reference")),
            )
        except KeyError as exc:
            raise FuzzConfigError(
                f"fuzz payload missing {exc.args[0]!r}") from None
        except (TypeError, ValueError) as exc:
            if isinstance(exc, FuzzConfigError):
                raise
            raise FuzzConfigError(f"bad fuzz payload: {exc}") from None


def campaign_digest(config: FuzzConfig) -> str:
    """Content address of a campaign's deterministic identity.

    ``jobs`` and ``corpus_dir`` are excluded: width never changes the
    outcome (the invariance contract) and the corpus directory is a
    persistence location, not an input.
    """
    identity = {
        "kind": "fuzz",
        "implementation": config.implementation,
        "reference": config.reference,
        "seed": config.seed,
        "budget_execs": config.budget_execs,
        "max_steps": config.max_steps,
    }
    return hashlib.sha256(canonical_json(identity).encode()).hexdigest()


@dataclass
class FuzzResult:
    """Everything a finished campaign produced."""

    config: FuzzConfig
    campaign: str
    execs: int
    corpus_size: int
    #: extracted-FSM transitions the campaign exercised
    coverage_transitions: int
    #: size of the extracted-FSM transition universe (the denominator)
    coverage_universe: int
    #: observed coverage keys outside the extracted machine
    coverage_frontier: int
    deviations: List[Deviation] = field(default_factory=list)
    #: per-batch ``{execs, coverage, frontier, corpus_size, deviations}``
    trajectory: List[Dict[str, int]] = field(default_factory=list)
    minimize_execs: int = 0

    @property
    def found_deviations(self) -> bool:
        return bool(self.deviations)

    def summary(self) -> Dict[str, object]:
        """The compact wire form (job records, CLI ``--json``)."""
        return schema.stamp({
            "campaign": self.campaign,
            "implementation": self.config.implementation,
            "reference": self.config.reference,
            "seed": self.config.seed,
            "execs": self.execs,
            "corpus_size": self.corpus_size,
            "coverage_transitions": self.coverage_transitions,
            "coverage_universe": self.coverage_universe,
            "coverage_frontier": self.coverage_frontier,
            "minimize_execs": self.minimize_execs,
            "deviations": [d.to_dict() for d in self.deviations],
            "trajectory": [dict(point) for point in self.trajectory],
        })


class Fuzzer:
    """Run one deterministic coverage-guided campaign."""

    def __init__(self, config: FuzzConfig):
        self.config = config
        self.campaign = campaign_digest(config)
        self._rng = random.Random(
            f"fuzz|{config.seed}|{config.implementation}"
            f"|{config.reference}")

    # ------------------------------------------------------------------
    def run(self) -> FuzzResult:
        config = self.config
        with obs.span("fuzz.campaign",
                      implementation=config.implementation,
                      seed=config.seed, budget=config.budget_execs):
            return self._run()

    def _run(self) -> FuzzResult:
        config = self.config
        universe = self._coverage_universe()
        corpus: List[List[Step]] = []
        corpus_digests: Set[str] = set()
        pending: List[List[Step]] = [
            clone_schedule(steps) for steps in SEED_SCHEDULES]
        pending.extend(self._load_corpus_dir())
        coverage: Set[CoverageKey] = set()
        seen_signatures: Set[Tuple] = set()
        deviations: Dict[str, Deviation] = {}
        trajectory: List[Dict[str, int]] = []
        execs = 0
        minimize_execs = 0

        pool = (ThreadPoolExecutor(max_workers=config.jobs)
                if config.jobs > 1 else None)
        try:
            while execs < config.budget_execs:
                batch = self._next_batch(
                    pending, corpus, config.budget_execs - execs)
                results = self._execute(pool, batch)
                for steps, result in zip(batch, results):
                    execs += 1
                    obs.count("fuzz.execs")
                    novel = result.coverage - coverage
                    if novel or not corpus:
                        coverage |= novel
                        digest = schedule_digest(steps)
                        if digest not in corpus_digests:
                            corpus_digests.add(digest)
                            corpus.append(steps)
                            self._persist_corpus_entry(digest, steps)
                    if result.diverged:
                        spent = self._fold_divergence(
                            steps, result, execs, seen_signatures,
                            deviations)
                        minimize_execs += spent
                trajectory.append({
                    "execs": execs,
                    "coverage": len(coverage & universe),
                    "frontier": len(coverage - universe),
                    "corpus_size": len(corpus),
                    "deviations": len(deviations),
                })
        finally:
            if pool is not None:
                pool.shutdown(wait=True)

        obs.gauge_max("fuzz.corpus_size", len(corpus))
        obs.gauge_max("fuzz.coverage_transitions",
                      len(coverage & universe))
        obs.gauge_max("fuzz.coverage_frontier", len(coverage - universe))
        ordered = sorted(deviations.values(),
                         key=lambda d: (d.found_at_exec, d.digest))
        return FuzzResult(
            config=config,
            campaign=self.campaign,
            execs=execs,
            corpus_size=len(corpus),
            coverage_transitions=len(coverage & universe),
            coverage_universe=len(universe),
            coverage_frontier=len(coverage - universe),
            deviations=ordered,
            trajectory=trajectory,
            minimize_execs=minimize_execs,
        )

    # ------------------------------------------------------------------
    def _coverage_universe(self) -> Set[CoverageKey]:
        from ..core.prochecker import ProChecker

        fsm = ProChecker(self.config.implementation).extract()
        return fsm_coverage_universe(fsm)

    def _next_batch(self, pending: List[List[Step]],
                    corpus: List[List[Step]],
                    remaining: int) -> List[List[Step]]:
        batch: List[List[Step]] = []
        size = min(BATCH_SIZE, remaining)
        while pending and len(batch) < size:
            batch.append(pending.pop(0))
        while len(batch) < size:
            parent = (self._rng.choice(corpus) if corpus
                      else clone_schedule(SEED_SCHEDULES[0]))
            batch.append(mutate_schedule(parent, self._rng,
                                         self.config.max_steps))
        return batch

    def _execute(self, pool: Optional[ThreadPoolExecutor],
                 batch: Sequence[List[Step]]) -> List[ExecutionResult]:
        runner = self._run_one
        if pool is None:
            return [runner(steps) for steps in batch]
        return list(pool.map(runner, batch))

    def _run_one(self, steps: Sequence[Step]) -> ExecutionResult:
        return run_schedule(self.config.implementation, steps,
                            reference=self.config.reference)

    def _fold_divergence(self, steps: List[Step],
                         result: ExecutionResult, execs: int,
                         seen_signatures: Set[Tuple],
                         deviations: Dict[str, Deviation]) -> int:
        signature = result.divergence_signature()
        if signature in seen_signatures:
            return 0
        seen_signatures.add(signature)
        if len(seen_signatures) > MAX_MINIMIZATIONS:
            obs.count("fuzz.minimizations_skipped")
            return 0
        deviation = build_deviation(
            self.config.implementation, self.config.reference,
            steps, signature, found_at_exec=execs,
            runner=self._run_one)
        if deviation is None:
            return 0
        obs.count("fuzz.minimize_execs", deviation.minimize_execs)
        if deviation.digest not in deviations:
            deviations[deviation.digest] = deviation
            obs.count("fuzz.deviations")
            self._persist_deviation(deviation)
        return deviation.minimize_execs

    # ------------------------------------------------------------------
    # Corpus-directory persistence
    # ------------------------------------------------------------------
    def _corpus_root(self) -> Optional[Path]:
        if self.config.corpus_dir is None:
            return None
        return Path(self.config.corpus_dir)

    def _load_corpus_dir(self) -> List[List[Step]]:
        """Replay previously persisted corpus entries (sorted order)."""
        root = self._corpus_root()
        if root is None or not (root / "corpus").is_dir():
            return []
        loaded: List[List[Step]] = []
        for path in sorted((root / "corpus").glob("*.json")):
            try:
                payload = json.loads(path.read_text())
                schema.check(payload, kind="fuzz corpus entry")
                steps = clone_schedule(payload["steps"])
            except (OSError, ValueError, KeyError) as exc:
                raise FuzzError(
                    f"corrupt corpus entry {path}: {exc}") from exc
            loaded.append(steps)
        obs.count("fuzz.corpus_loaded", len(loaded))
        return loaded

    def _persist_corpus_entry(self, digest: str,
                              steps: Sequence[Step]) -> None:
        root = self._corpus_root()
        if root is None:
            return
        directory = root / "corpus"
        directory.mkdir(parents=True, exist_ok=True)
        payload = schema.stamp({"digest": digest,
                                "steps": clone_schedule(steps)})
        (directory / f"{digest}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")

    def _persist_deviation(self, deviation: Deviation) -> None:
        root = self._corpus_root()
        if root is None:
            return
        directory = root / "deviations"
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"{deviation.digest}.json").write_text(
            json.dumps(deviation.to_dict(), indent=2, sort_keys=True)
            + "\n")


def run_campaign(config: FuzzConfig) -> FuzzResult:
    """Convenience wrapper: configure, run, return the result."""
    return Fuzzer(config).run()
