"""Deviation artifacts: minimised, replayable, content-addressed.

A deviation is a schedule that drives the target implementation off the
behaviour of its specification-compliant twin.  Before it is filed, the
raw schedule goes through greedy delta debugging (:func:`minimize`):
drop whole steps, then individual mutations and template fields, as
long as the divergence *signature* — the (observed, expected)
observation pair, not its position — survives.  The result is the
smallest stimulus program this reduction finds, stable under re-runs.

The artifact digest is a sha256 over the canonical JSON of everything
that determines the deviation (implementations, minimised schedule,
observed/expected vectors), so identical campaigns — at any ``--jobs``
width — file byte-identical artifacts, the same content-address
discipline :func:`repro.store.job_digest` uses for analysis reports.

:func:`classify` maps a deviation onto the paper's Table I issue ids
*post hoc* — it is labelling for reports and CI assertions; discovery
itself never consults it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import schema
from ..lte import constants as c
from .executor import (OBSERVATION_FIELDS, ExecutionResult, _freeze,
                       run_schedule)
from .schedule import Step, canonical_json, clone_schedule


@dataclass
class Deviation:
    """One confirmed divergence between target and reference."""

    implementation: str
    reference: str
    #: the minimised schedule (replayable via ``repro fuzz --replay``)
    schedule: List[Step]
    #: index of the first diverging step in the minimised schedule
    step_index: int
    #: target / reference observation vectors at the diverging step
    observed: Dict[str, object]
    expected: Dict[str, object]
    #: Table I issue id (``"I1"``..``"I6"``) or "" for a novel deviation
    classification: str = ""
    #: campaign exec counter when the raw input was found
    found_at_exec: int = 0
    #: schedule length before minimisation (reduction evidence)
    raw_steps: int = 0
    minimize_execs: int = 0

    @property
    def digest(self) -> str:
        """Content address over everything that defines the deviation."""
        identity = {
            "implementation": self.implementation,
            "reference": self.reference,
            "schedule": self.schedule,
            "step_index": self.step_index,
            "observed": self.observed,
            "expected": self.expected,
        }
        return hashlib.sha256(
            canonical_json(identity).encode()).hexdigest()

    def signature(self) -> Tuple:
        """The (observed, expected) signature, in the executor's frozen
        form — replays compare against exactly this."""
        return (tuple((key, _freeze(self.observed[key]))
                      for key in OBSERVATION_FIELDS),
                tuple((key, _freeze(self.expected[key]))
                      for key in OBSERVATION_FIELDS))

    def to_dict(self) -> Dict[str, object]:
        return schema.stamp({
            "digest": self.digest,
            "implementation": self.implementation,
            "reference": self.reference,
            "schedule": clone_schedule(self.schedule),
            "step_index": self.step_index,
            "observed": dict(self.observed),
            "expected": dict(self.expected),
            "classification": self.classification,
            "found_at_exec": self.found_at_exec,
            "raw_steps": self.raw_steps,
            "minimize_execs": self.minimize_execs,
        })

    @classmethod
    def from_dict(cls, payload: Dict) -> "Deviation":
        schema.check(payload, kind="deviation")
        return cls(
            implementation=str(payload["implementation"]),
            reference=str(payload.get("reference", "reference")),
            schedule=clone_schedule(payload["schedule"]),
            step_index=int(payload["step_index"]),
            observed=dict(payload["observed"]),
            expected=dict(payload["expected"]),
            classification=str(payload.get("classification", "")),
            found_at_exec=int(payload.get("found_at_exec", 0)),
            raw_steps=int(payload.get("raw_steps", 0)),
            minimize_execs=int(payload.get("minimize_execs", 0)),
        )


# ---------------------------------------------------------------------------
# Minimisation (greedy ddmin over steps, then mutations, then fields)
# ---------------------------------------------------------------------------
Runner = Callable[[Sequence[Step]], ExecutionResult]


def minimize(steps: Sequence[Step], signature: Tuple,
             runner: Runner) -> Tuple[List[Step], int]:
    """Shrink a diverging schedule while its signature is preserved.

    Returns ``(minimised steps, executions spent)``.  Greedy single
    removals to a fixpoint — quadratic worst case, but schedules are
    capped at a handful of steps so the bound is tens of executions.
    """
    current = clone_schedule(steps)
    execs = 0

    def survives(candidate: Sequence[Step]) -> bool:
        nonlocal execs
        execs += 1
        result = runner(candidate)
        return (result.diverged
                and result.divergence_signature() == signature)

    changed = True
    while changed:
        changed = False
        for index in range(len(current) - 1, -1, -1):
            if len(current) == 1:
                break
            candidate = current[:index] + current[index + 1:]
            if survives(candidate):
                current = candidate
                changed = True
    for index, step in enumerate(current):
        for list_key in ("mutations",):
            entries = list(step.get(list_key) or ())
            for entry in list(entries):
                trimmed = [e for e in entries if e is not entry]
                candidate = clone_schedule(current)
                candidate[index][list_key] = clone_schedule(trimmed)
                if survives(candidate):
                    current = candidate
                    entries = trimmed
        fields = dict(current[index].get("fields") or {})
        for name in sorted(fields):
            candidate = clone_schedule(current)
            remaining = dict(candidate[index].get("fields") or {})
            remaining.pop(name, None)
            candidate[index]["fields"] = remaining
            if survives(candidate):
                current = candidate
    return current, execs


def build_deviation(implementation: str, reference: str,
                    raw_steps: Sequence[Step], signature: Tuple,
                    found_at_exec: int,
                    runner: Optional[Runner] = None) -> Optional[Deviation]:
    """Minimise a diverging schedule and file it as an artifact.

    Returns ``None`` if the divergence does not reproduce (it always
    should — executions are deterministic — but a non-reproducing input
    must never be filed as evidence).
    """
    runner = runner or (lambda steps: run_schedule(
        implementation, steps, reference=reference))
    minimised, execs = minimize(raw_steps, signature, runner)
    final = runner(minimised)
    execs += 1
    if not final.diverged or final.divergence_signature() != signature:
        return None
    index = final.divergence_index
    assert index is not None
    deviation = Deviation(
        implementation=implementation,
        reference=reference,
        schedule=minimised,
        step_index=index,
        observed=dict(final.target[index]),
        expected=dict(final.reference[index]),
        found_at_exec=found_at_exec,
        raw_steps=len(raw_steps),
        minimize_execs=execs,
    )
    deviation.classification = classify(deviation) or ""
    return deviation


# ---------------------------------------------------------------------------
# Post-hoc Table I labelling
# ---------------------------------------------------------------------------
def classify(deviation: Deviation) -> Optional[str]:
    """Map a deviation onto a Table I issue id, or ``None`` if novel.

    Pure pattern matching on the *evidence* (which stimulus, which
    responses) — the fuzzer never reads this during discovery, so a
    re-found Table I bug really was re-discovered, not replayed.
    """
    step = deviation.schedule[deviation.step_index]
    op = step.get("op")
    name = str(step.get("name", ""))
    observed_uplink = tuple(deviation.observed.get("uplink") or ())
    expected_uplink = tuple(deviation.expected.get("uplink") or ())
    responded = [up for up in observed_uplink if up not in expected_uplink]

    if op == "replay":
        if name == c.AUTHENTICATION_REQUEST:
            # Divergent handling of a replayed AKA challenge is the
            # SQN-acceptance family, whatever the responses were.
            return "I3"
        if (name == c.SECURITY_MODE_COMMAND
                and c.SECURITY_MODE_COMPLETE in responded):
            return "I6"
        if name in c.PROTECTED_DOWNLINK:
            return "I1"
        return None
    if op == "auth" and c.AUTHENTICATION_RESPONSE in responded:
        return "I3"
    if op == "craft":
        mutations = list(step.get("mutations") or ())
        downgraded = any(m.get("kind") == "sec_header"
                         and m.get("value") == c.SEC_HDR_PLAIN
                         for m in mutations)
        plain = step.get("protection", "plain") == "plain" or downgraded
        if name == c.IDENTITY_REQUEST \
                and c.IDENTITY_RESPONSE in responded:
            # Answering an identity probe the reference ignores leaks
            # the IMSI on demand, whatever the probe's protection was.
            return "I5"
        if plain and name in c.PROTECTED_DOWNLINK:
            return "I2"
        return None
    if op == "attach":
        if (c.AUTHENTICATION_RESPONSE in expected_uplink
                and c.AUTHENTICATION_RESPONSE not in observed_uplink):
            return "I4"
    return None
