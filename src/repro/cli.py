"""Command-line interface: ``python -m repro <command>``.

Commands mirror the pipeline stages so each is scriptable on its own:

- ``analyze <impl>``  — full pipeline, per-property report + attack list;
- ``extract <impl>``  — conformance run + extraction; prints the FSM (or
  writes the Graphviz-like model with ``--dot``);
- ``verify <impl> <property-id>`` — one property through the CEGAR loop,
  with the counterexample trace on violation;
- ``attack <attack-id> <impl>`` — one testbed attack script end-to-end;
- ``gaps <impl>``     — missing-stimulus report (candidate test cases the
  suite does not exercise — the paper's "detecting missing test cases");
- ``lint``            — static spec/model/implementation analysis
  (``PCL0xx`` findings; exit 5 on gating findings);
- ``fuzz <impl>``     — coverage-guided lockstep fuzzing against the
  reference implementation; minimised deviations exit 6 and replay
  via ``--replay FILE``;
- ``serve``           — long-running service mode: analysis jobs over the
  ``/v1`` HTTP JSON API, a worker fleet, and a persistent
  content-addressed result store.

Every subcommand that emits a result supports ``--json``; every JSON
payload is stamped with the wire-format ``schema_version``
(:mod:`repro.schema`).  The exit-code table is generated into
``docs/CLI.md`` by ``python -m repro.docgen``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from . import faults, obs, schema
from .core import AnalysisConfig, ProChecker, Verdict
from .fsm import missing_stimuli, to_dot
from .lte import constants as c
from .lte.channel import ChaosConfig, ChaosConfigError
from .lte.implementations import IMPLEMENTATION_NAMES
from .properties import ALL_PROPERTIES, property_by_id
from .testbed import registry, run_attack

TRACE_COLUMNS = ("turn", "ue_state", "chan_dl", "chan_ul", "dl_sqn_rel",
                 "dl_count_rel", "dl_mac_valid", "dl_plain", "dl_replayed",
                 "dl_injected")

#: Single source of truth for verdict → process exit code.
EXIT_CODES = {
    Verdict.VERIFIED: 0,
    Verdict.VIOLATED: 1,
    Verdict.NOT_APPLICABLE: 3,
    Verdict.ERROR: 4,
}

#: ``repro lint`` exit code when gating (warning/error) findings remain.
#: Distinct from the verdict codes above so CI can tell a lint failure
#: from a property violation.
LINT_FINDINGS_EXIT_CODE = 5
assert LINT_FINDINGS_EXIT_CODE not in EXIT_CODES.values()
EXIT_CODES["lint_findings"] = LINT_FINDINGS_EXIT_CODE

#: ``repro fuzz`` exit code when a campaign found (or ``--replay``
#: reproduced) at least one deviation.  Distinct from code 1: a fuzz
#: deviation is an *implementation-vs-reference* divergence, not a
#: verified property violation.
FUZZ_DEVIATIONS_EXIT_CODE = 6
assert FUZZ_DEVIATIONS_EXIT_CODE not in EXIT_CODES.values()
EXIT_CODES["fuzz_deviations"] = FUZZ_DEVIATIONS_EXIT_CODE

#: One-line meaning per exit code — the single source the generated
#: ``docs/CLI.md`` table (``python -m repro.docgen``) renders from.
#: Exit code 2 is argparse/usage failure by Unix convention.
EXIT_CODE_MEANINGS = {
    0: ("success", "analysis completed; no violation, gating finding "
                   "or checker error to signal"),
    1: ("violated", "a property was violated / an attack succeeded / "
                    "an unstable consensus extraction"),
    2: ("usage", "bad arguments: unknown property or attack id, "
                 "malformed --chaos/--inject-fault spec"),
    3: ("not-applicable", "the verified property does not apply to "
                          "this implementation"),
    4: ("checker-error", "the report is complete but contains "
                         "Verdict.ERROR rows (crash isolation)"),
    5: ("lint-findings", "repro lint found gating (warning/error) "
                         "findings beyond the baseline"),
    6: ("deviations-found", "repro fuzz found at least one deviation "
                            "from the reference (or --replay "
                            "reproduced one)"),
}


def _emit_json(payload) -> None:
    """Print a machine-readable result, stamped with the wire version.

    Every JSON payload a subcommand emits crosses a process boundary,
    so it carries ``schema_version`` exactly like the HTTP API's
    responses do; payloads whose ``to_dict`` already stamped themselves
    pass through unchanged.
    """
    if isinstance(payload, dict) and schema.SCHEMA_KEY not in payload:
        payload = schema.stamp(dict(payload))
    print(json.dumps(payload, indent=2, sort_keys=True, default=str))


def _add_chaos_options(parser: argparse.ArgumentParser) -> None:
    """The shared ``--chaos*`` flags of ``analyze`` and ``extract``."""
    parser.add_argument("--chaos", nargs="?", const="default", default=None,
                        metavar="SPEC",
                        help="impair the radio link deterministically, "
                             "e.g. --chaos drop=0.05,dup=0.02 or bare "
                             "--chaos for the default profile "
                             "(downlink drop 0.05); dl./ul. prefixes "
                             "scope a rate to one direction")
    parser.add_argument("--chaos-seed", type=int, default=0, metavar="S",
                        help="chaos PRNG seed (default 0); same seed + "
                             "same spec = identical impairment schedule")
    parser.add_argument("--chaos-runs", type=int, default=1, metavar="N",
                        help="with N >= 2, extract a consensus FSM over "
                             "N runs under seeds S..S+N-1 and report "
                             "run-to-run stability")


def _parse_chaos(args: argparse.Namespace) -> Optional[ChaosConfig]:
    """Resolve the ``--chaos*`` flags; raises ChaosConfigError."""
    if args.chaos is None:
        if args.chaos_runs != 1:
            raise ChaosConfigError("--chaos-runs needs --chaos")
        return None
    if args.chaos_runs < 1:
        raise ChaosConfigError("--chaos-runs must be >= 1")
    return ChaosConfig.parse(args.chaos, seed=args.chaos_seed)


def _emit_observability(args: argparse.Namespace, report) -> None:
    """Honour ``--trace-out`` / ``--profile`` after a pipeline run."""
    if getattr(args, "trace_out", None):
        written = obs.write_trace(args.trace_out, obs.drain_spans(),
                                  report.stats)
        print(f"wrote {written} trace records to {args.trace_out}",
              file=sys.stderr)
    if getattr(args, "profile", False) and report.stats is not None:
        # JSON mode keeps stdout machine-readable; the table goes to
        # stderr there.
        stream = sys.stderr if getattr(args, "json", False) else sys.stdout
        print(report.stats.format_table(), file=stream)


def _cmd_analyze(args: argparse.Namespace) -> int:
    plan = None
    if args.inject_fault:
        try:
            plan = faults.FaultPlan.parse(args.inject_fault)
        except faults.FaultSpecError as exc:
            print(f"bad --inject-fault: {exc}", file=sys.stderr)
            return 2
        print(f"fault plan installed: {plan.describe()}", file=sys.stderr)
    try:
        chaos = _parse_chaos(args)
    except ChaosConfigError as exc:
        print(f"bad --chaos: {exc}", file=sys.stderr)
        return 2
    if chaos is not None:
        print(f"chaos channel enabled: {chaos.describe()}",
              file=sys.stderr)
    config = AnalysisConfig(args.implementation, jobs=args.jobs,
                            group_timeout_seconds=args.group_timeout,
                            fault_plan=plan,
                            chaos=chaos, chaos_runs=args.chaos_runs,
                            mc_cache_dir=args.mc_cache)
    try:
        report = ProChecker.from_config(config).analyze()
    finally:
        if plan is not None:
            faults.clear()
    # A report containing checker errors is still complete (that is the
    # crash-isolation contract) but the exit code must say so.
    status = EXIT_CODES[Verdict.ERROR] if report.errors() else 0
    if args.json:
        _emit_json(report.to_dict())
        _emit_observability(args, report)
        return status
    print(report.format_table())
    print("\nDetected attacks:")
    for attack in sorted(report.detected_attacks()):
        print(f"  {attack}")
    print(f"\n{report.jobs} worker(s), "
          f"{report.verification_seconds:.2f}s verification")
    _emit_observability(args, report)
    return status


def _cmd_extract(args: argparse.Namespace) -> int:
    try:
        chaos = _parse_chaos(args)
    except ChaosConfigError as exc:
        print(f"bad --chaos: {exc}", file=sys.stderr)
        return 2
    config = AnalysisConfig(args.implementation, chaos=chaos,
                            chaos_runs=args.chaos_runs)
    checker = ProChecker.from_config(config)
    fsm = checker.extract()
    stability = checker.stability
    # An unstable consensus (quarantined transitions, or a clean model
    # that no longer embeds) is the CI-gating outcome of this command.
    status = 0 if stability is None or stability.stable else 1
    if args.stability_out:
        if stability is None:
            print("--stability-out needs --chaos with --chaos-runs >= 2",
                  file=sys.stderr)
            return 2
        with open(args.stability_out, "w") as handle:
            json.dump(stability.to_dict(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote stability report to {args.stability_out}",
              file=sys.stderr)
    if args.dot:
        with open(args.dot, "w") as handle:
            handle.write(to_dot(fsm))
        print(f"wrote {len(fsm.transitions)}-transition model to "
              f"{args.dot}")
        return status
    if args.json:
        payload = {
            "implementation": args.implementation,
            "fsm_summary": fsm.summary(),
            "fingerprint": fsm.fingerprint(),
            "transitions": [t.describe() for t in sorted(fsm.transitions)],
            "stability": (stability.to_dict()
                          if stability is not None else None),
        }
        _emit_json(payload)
        return status
    print(f"{fsm.name}: {len(fsm.states)} states, "
          f"{len(fsm.transitions)} transitions")
    for transition in sorted(fsm.transitions):
        print(f"  {transition.describe()}")
    if stability is not None:
        flag = "stable" if stability.stable else "UNSTABLE"
        print(f"consensus over {stability.runs} chaos runs: {flag} "
              f"({len(stability.quarantined)} quarantined, "
              f"{len(stability.flaky)} flaky, fingerprint agreement "
              f"{stability.fingerprint_agreement:.2f})")
    return status


def _cmd_verify(args: argparse.Namespace) -> int:
    try:
        prop = property_by_id(args.property_id)
    except KeyError:
        print(f"unknown property {args.property_id!r}; known ids:",
              file=sys.stderr)
        for known in ALL_PROPERTIES:
            print(f"  {known.identifier}: {known.description[:60]}",
                  file=sys.stderr)
        return 2
    checker = ProChecker(args.implementation)
    result = checker.verify_property(prop)
    if args.json:
        _emit_json(result.to_dict())
    else:
        print(f"{prop.identifier} ({prop.category}): {prop.description}")
        print(f"verdict: {result.outcome.value} "
              f"({result.iterations} CEGAR iterations, "
              f"{result.elapsed_seconds:.2f}s)")
        if result.evidence:
            print(f"evidence: {result.evidence}")
        if result.counterexample is not None and not args.quiet:
            print("\ncounterexample:")
            print(result.counterexample.format(TRACE_COLUMNS))
    return EXIT_CODES[result.outcome]


def _cmd_attack(args: argparse.Namespace) -> int:
    if args.attack_id not in registry():
        print(f"unknown attack {args.attack_id!r}; known:",
              file=sys.stderr)
        for known in sorted(registry()):
            print(f"  {known}", file=sys.stderr)
        return 2
    result = run_attack(args.attack_id, args.implementation)
    if args.json:
        _emit_json(result.to_dict())
        return 1 if result.succeeded else 0
    status = "SUCCEEDED" if result.succeeded else "failed"
    print(f"{args.attack_id} on {args.implementation}: {status}")
    print(f"evidence: {result.evidence}")
    for key, value in result.details.items():
        print(f"  {key}: {value}")
    return 1 if result.succeeded else 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Full analysis rendered as a disclosure-style findings document."""
    from .core import build_dossier, render_markdown

    config = AnalysisConfig(args.implementation, jobs=args.jobs)
    report = ProChecker.from_config(config).analyze()
    _emit_observability(args, report)
    dossier = build_dossier(report,
                            validate_on_testbed=not args.no_testbed)
    if args.json:
        _emit_json(dossier.to_dict())
        return 0
    text = render_markdown(dossier)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote findings for {len(dossier.findings)} attacks to "
              f"{args.output}")
    else:
        print(text)
    return 0


def _cmd_smv(args: argparse.Namespace) -> int:
    """Export the threat-instrumented model (+ property) as NuXmv input."""
    from .baselines import lteinspector_mme
    from .mc import CheckRequest, ModelChecker
    from .properties import EXTRACTED_VOCAB
    from .threat import ThreatInstrumentor

    try:
        prop = property_by_id(args.property_id)
    except KeyError:
        print(f"unknown property {args.property_id!r}", file=sys.stderr)
        return 2
    if prop.kind != "ltl":
        print(f"{prop.identifier} is a testbed/CPV property; only LTL "
              f"properties export to SMV", file=sys.stderr)
        return 2
    ue_model = ProChecker(args.implementation).extract()
    model = ThreatInstrumentor(ue_model, lteinspector_mme(),
                               prop.threat).build(prop.identifier)
    text = ModelChecker().export_smv(model, CheckRequest(
        formula=prop.formula_for(EXTRACTED_VOCAB), name=prop.identifier))
    if args.json:
        _emit_json({
            "implementation": args.implementation,
            "property": prop.identifier,
            "smv": text,
        })
        return 0
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {len(text.splitlines())} lines to {args.output}")
    else:
        print(text)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Static analysis over the catalog, the source, and the FSMs."""
    from .lint import LintError, run_lint
    from .lint.baseline import Baseline
    from .lint.findings import RULES
    from .lint.runner import default_baseline_path

    if args.rules:
        if args.json:
            _emit_json({"rules": [
                {"id": rule.identifier, "family": rule.family,
                 "severity": rule.severity.value, "summary": rule.summary}
                for rule in RULES.values()]})
        else:
            for rule in RULES.values():
                print(f"{rule.identifier} [{rule.family}/"
                      f"{rule.severity.value}] {rule.summary}")
        return 0

    baseline_path = (None if args.no_baseline
                     else args.baseline or default_baseline_path())
    try:
        report = run_lint(
            implementations=args.impl or None,
            run_xcheck=not args.no_xcheck,
            baseline_path=None if args.write_baseline else baseline_path,
            catalog_module=args.catalog,
            run_taint=args.taint,
            taint_modules=args.taint_impl,
        )
    except LintError as exc:
        print(f"lint failed: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        # Only gating findings need suppressing; info findings (e.g. the
        # expected Table I deviations) stay visible in every run.
        target = args.baseline or default_baseline_path()
        count = Baseline.write(target, report.gating)
        print(f"wrote {count} suppression(s) to {target}")
        return 0
    if args.json:
        _emit_json(report.to_dict())
    else:
        print(report.format_text())
    return LINT_FINDINGS_EXIT_CODE if report.gating else 0


def _cmd_gaps(args: argparse.Namespace) -> int:
    fsm = ProChecker(args.implementation).extract()
    gaps = missing_stimuli(fsm, alphabet=set(c.DOWNLINK_MESSAGES))
    if args.json:
        _emit_json({
            "implementation": args.implementation,
            "total": len(gaps),
            "gaps": [{"state": gap.state, "trigger": gap.trigger,
                      "suggested_test_case": gap.suggested_test_case()}
                     for gap in gaps[:args.limit]],
        })
        return 0
    print(f"{len(gaps)} (state, stimulus) pairs with no observed "
          f"behaviour — candidate missing test cases:")
    for gap in gaps[:args.limit]:
        print(f"  {gap.suggested_test_case()}")
    if len(gaps) > args.limit:
        print(f"  ... and {len(gaps) - args.limit} more "
              f"(raise --limit to see them)")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """Coverage-guided lockstep fuzzing (or deviation replay)."""
    from .fuzz import FuzzConfig, FuzzConfigError, FuzzError, Fuzzer
    from .testbed.experiments import replay_deviation

    if args.replay is not None:
        try:
            payload = json.loads(Path(args.replay).read_text())
        except (OSError, ValueError) as exc:
            print(f"cannot load deviation {args.replay}: {exc}",
                  file=sys.stderr)
            return 2
        try:
            outcome = replay_deviation(payload)
        except (KeyError, TypeError, ValueError,
                schema.SchemaVersionError) as exc:
            print(f"malformed deviation artifact: {exc}", file=sys.stderr)
            return 2
        if args.json:
            _emit_json(outcome.to_dict())
        else:
            verdict = ("REPRODUCED" if outcome.succeeded
                       else "did not reproduce")
            print(f"{outcome.attack_id} on {outcome.implementation}: "
                  f"{verdict} ({outcome.evidence})")
        return FUZZ_DEVIATIONS_EXIT_CODE if outcome.succeeded else 0

    try:
        config = FuzzConfig(
            implementation=args.implementation,
            seed=args.seed,
            budget_execs=args.budget_execs,
            max_steps=args.max_steps,
            jobs=args.jobs,
            corpus_dir=args.corpus_dir,
        )
    except FuzzConfigError as exc:
        print(f"bad fuzz configuration: {exc}", file=sys.stderr)
        return 2
    try:
        result = Fuzzer(config).run()
    except FuzzError as exc:
        print(f"fuzz campaign failed: {exc}", file=sys.stderr)
        return 2
    if args.json:
        _emit_json(result.summary())
    else:
        print(f"campaign {result.campaign[:12]} on "
              f"{config.implementation}: {result.execs} execs, "
              f"coverage {result.coverage_transitions}"
              f"/{result.coverage_universe} transitions "
              f"(+{result.coverage_frontier} beyond the extracted FSM), "
              f"corpus {result.corpus_size}")
        for deviation in result.deviations:
            label = deviation.classification or "novel"
            print(f"  deviation {deviation.digest[:12]} [{label}] "
                  f"at exec {deviation.found_at_exec}: "
                  f"{len(deviation.schedule)} step(s) "
                  f"(raw {deviation.raw_steps})")
        if not result.deviations:
            print("  no deviations from the reference")
        elif config.corpus_dir:
            print(f"  artifacts under {config.corpus_dir}/deviations/")
    return FUZZ_DEVIATIONS_EXIT_CODE if result.found_deviations else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Long-running service mode: HTTP /v1 API + worker fleet + store."""
    import signal
    import threading

    from .serve import AnalysisService, JobJournal, create_server
    from .store import ResultStore

    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    if args.max_queue is not None and args.max_queue < 1:
        print("--max-queue must be >= 1", file=sys.stderr)
        return 2
    if args.deadline is not None and args.deadline <= 0:
        print("--deadline must be > 0", file=sys.stderr)
        return 2
    plan = None
    if args.inject_fault:
        try:
            plan = faults.FaultPlan.parse(args.inject_fault)
        except faults.FaultSpecError as exc:
            print(f"bad --inject-fault: {exc}", file=sys.stderr)
            return 2
        # Serve workers are threads in this process, so the plan is
        # installed here rather than shipped through a job config
        # (fault-plan submissions are rejected by the service).
        faults.install(plan)
        print(f"fault plan installed: {plan.describe()}", file=sys.stderr)
    store = ResultStore(args.store_dir)
    journal = JobJournal(args.journal) if args.journal else None
    service = AnalysisService(store, workers=args.workers,
                              default_engine_jobs=args.jobs,
                              journal=journal,
                              max_queue=args.max_queue,
                              default_deadline_seconds=args.deadline)
    try:
        service.start()
    finally:
        if plan is not None and not service.started:
            faults.clear()
    server = create_server(args.host, args.port, service,
                           quiet=not args.verbose)
    durability = (f", journal at {journal.root}" if journal else "")
    print(f"repro serve: listening on http://{args.host}:{server.port} "
          f"({args.workers} worker(s), store at {store.root}"
          f"{durability})",
          file=sys.stderr)

    # Graceful lifecycle: SIGTERM/SIGINT flips the event; the main
    # thread then drains (finish in-flight, leave the rest journaled)
    # before tearing the server down.
    shutdown = threading.Event()

    def _request_shutdown(signum, frame):
        shutdown.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, _request_shutdown)
    server_thread = threading.Thread(target=server.serve_forever,
                                     name="serve-http", daemon=True)
    server_thread.start()
    try:
        while not shutdown.wait(0.2):
            pass
    except KeyboardInterrupt:
        # A raw Ctrl-C that beat the installed SIGINT handler is still
        # a shutdown request: fall through to the drain below.
        obs.count("serve.keyboard_interrupts")
    print("repro serve: draining (in-flight jobs finish; queued jobs "
          "stay journaled for the next start)", file=sys.stderr)
    idle = service.drain(wait=True, timeout=args.drain_grace)
    if not idle:
        print(f"repro serve: drain grace ({args.drain_grace:.0f}s) "
              f"expired with jobs still running", file=sys.stderr)
    server.shutdown()
    server.server_close()
    service.stop()
    if plan is not None:
        faults.clear()
    print("repro serve: stopped", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ProChecker: security and privacy analysis of 4G LTE "
                    "protocol implementations (ICDCS 2021 reproduction)")
    commands = parser.add_subparsers(dest="command", required=True)

    analyze = commands.add_parser(
        "analyze", help="run the full 62-property pipeline")
    analyze.add_argument("implementation", choices=IMPLEMENTATION_NAMES)
    analyze.add_argument("--jobs", "-j", type=int, default=None,
                         metavar="N",
                         help="parallel verification workers "
                              "(default: all cores)")
    analyze.add_argument("--json", action="store_true",
                         help="emit the report as JSON")
    analyze.add_argument("--trace-out", metavar="FILE", default=None,
                         help="write the span trace (JSONL) to FILE")
    analyze.add_argument("--profile", action="store_true",
                         help="print the PipelineStats summary table")
    analyze.add_argument("--group-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="wall-clock budget per pooled property "
                              "group (timed-out groups are retried, then "
                              "completed serially)")
    analyze.add_argument("--inject-fault", action="append", default=[],
                         metavar="SITE[@KEY]:KIND[:NTH[:SCOPE]]",
                         help="debug: install a deterministic fault, e.g. "
                              "engine.verify_group@SEC-01:exit:1 "
                              "(kinds: raise, hang, exit; repeatable)")
    analyze.add_argument("--mc-cache", metavar="DIR", default=None,
                         help="persistent model-checking verdict cache; "
                              "re-analysing an unchanged implementation "
                              "skips exploration entirely (verdicts are "
                              "identical either way)")
    _add_chaos_options(analyze)
    analyze.set_defaults(handler=_cmd_analyze)

    extract = commands.add_parser(
        "extract", help="extract the implementation FSM (Algorithm 1)")
    extract.add_argument("implementation", choices=IMPLEMENTATION_NAMES)
    extract.add_argument("--dot", metavar="FILE",
                         help="write the Graphviz-like model to FILE")
    extract.add_argument("--json", action="store_true",
                         help="emit the FSM (and any stability report) "
                              "as JSON")
    extract.add_argument("--stability-out", metavar="FILE", default=None,
                         help="write the consensus stability report "
                              "(JSON) to FILE; needs --chaos-runs >= 2")
    _add_chaos_options(extract)
    extract.set_defaults(handler=_cmd_extract)

    verify = commands.add_parser(
        "verify", help="verify one property through the CEGAR loop")
    verify.add_argument("implementation", choices=IMPLEMENTATION_NAMES)
    verify.add_argument("property_id", metavar="PROPERTY",
                        help="e.g. SEC-01 or PRIV-08")
    verify.add_argument("--quiet", action="store_true",
                        help="suppress the counterexample trace")
    verify.add_argument("--json", action="store_true",
                        help="emit the property result as JSON")
    verify.set_defaults(handler=_cmd_verify)

    attack = commands.add_parser(
        "attack", help="run one testbed attack script")
    attack.add_argument("attack_id", metavar="ATTACK",
                        help="e.g. P1, I3 or PRIOR-numb")
    attack.add_argument("implementation", choices=IMPLEMENTATION_NAMES)
    attack.add_argument("--json", action="store_true",
                        help="emit the attack outcome as JSON")
    attack.set_defaults(handler=_cmd_attack)

    report = commands.add_parser(
        "report", help="write a findings dossier (markdown)")
    report.add_argument("implementation", choices=IMPLEMENTATION_NAMES)
    report.add_argument("-o", "--output", metavar="FILE")
    report.add_argument("--no-testbed", action="store_true",
                        help="skip end-to-end testbed validation")
    report.add_argument("--jobs", "-j", type=int, default=None,
                        metavar="N",
                        help="parallel verification workers "
                             "(default: all cores)")
    report.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write the span trace (JSONL) to FILE")
    report.add_argument("--profile", action="store_true",
                        help="print the PipelineStats summary table")
    report.add_argument("--json", action="store_true",
                        help="emit the dossier as JSON")
    report.set_defaults(handler=_cmd_report)

    smv = commands.add_parser(
        "smv", help="export the threat model as NuXmv input")
    smv.add_argument("implementation", choices=IMPLEMENTATION_NAMES)
    smv.add_argument("property_id", metavar="PROPERTY")
    smv.add_argument("-o", "--output", metavar="FILE")
    smv.add_argument("--json", action="store_true",
                     help="emit the SMV module as JSON")
    smv.set_defaults(handler=_cmd_smv)

    lint = commands.add_parser(
        "lint", help="static spec/model/implementation analysis")
    lint.add_argument("--json", action="store_true",
                      help="emit the findings report as JSON")
    lint.add_argument("--impl", action="append", default=[],
                      choices=IMPLEMENTATION_NAMES, metavar="IMPL",
                      help="cross-check only these implementations "
                           "(repeatable; default: reference, srsue, oai)")
    lint.add_argument("--no-xcheck", action="store_true",
                      help="skip the static/dynamic cross-check family "
                           "(no extraction run)")
    lint.add_argument("--taint", action=argparse.BooleanOptionalAction,
                      default=True,
                      help="run the identity/key-material taint family "
                           "(PCL04x; default on)")
    lint.add_argument("--taint-impl", action="append", default=[],
                      metavar="MODULE",
                      help="also taint-audit an external UE persona "
                           "module (importable path defining a UeNas "
                           "subclass; repeatable)")
    lint.add_argument("--rules", action="store_true",
                      help="print the PCL0xx rule table and exit")
    lint.add_argument("--baseline", metavar="FILE", type=Path,
                      default=None,
                      help="baseline suppression file "
                           "(default: lint-baseline.json at the repo "
                           "root)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore any baseline file")
    lint.add_argument("--write-baseline", action="store_true",
                      help="accept all current findings into the "
                           "baseline file and exit 0")
    lint.add_argument("--catalog", metavar="MODULE", default=None,
                      help="lint an alternate property-catalog module "
                           "(must expose ALL_PROPERTIES or PROPERTIES)")
    lint.set_defaults(handler=_cmd_lint)

    gaps = commands.add_parser(
        "gaps", help="suggest missing conformance test cases")
    gaps.add_argument("implementation", choices=IMPLEMENTATION_NAMES)
    gaps.add_argument("--limit", type=int, default=15)
    gaps.add_argument("--json", action="store_true",
                      help="emit the gap report as JSON")
    gaps.set_defaults(handler=_cmd_gaps)

    fuzz = commands.add_parser(
        "fuzz", help="coverage-guided fuzzing against the reference")
    fuzz.add_argument("implementation", choices=IMPLEMENTATION_NAMES)
    fuzz.add_argument("--budget-execs", type=int, default=400,
                      metavar="N",
                      help="lockstep executions to spend (default 400)")
    fuzz.add_argument("--seed", type=int, default=0, metavar="S",
                      help="campaign PRNG seed (default 0); same seed = "
                           "byte-identical campaign at any --jobs width")
    fuzz.add_argument("--max-steps", type=int, default=8, metavar="N",
                      help="schedule length cap (default 8)")
    fuzz.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                      help="parallel executor threads (default 1); "
                           "results are independent of this width")
    fuzz.add_argument("--corpus-dir", metavar="DIR", default=None,
                      help="persist the corpus and minimised deviation "
                           "artifacts under DIR (reloaded as seeds on "
                           "the next campaign)")
    fuzz.add_argument("--replay", metavar="FILE", default=None,
                      help="re-run a deviation artifact instead of "
                           "fuzzing; exit 6 if it still reproduces")
    fuzz.add_argument("--json", action="store_true",
                      help="emit the campaign summary (or replay "
                           "outcome) as JSON")
    fuzz.set_defaults(handler=_cmd_fuzz)

    serve = commands.add_parser(
        "serve", help="run the analysis service (HTTP /v1 JSON API)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8373, metavar="N",
                       help="TCP port; 0 picks an ephemeral port "
                            "(default 8373)")
    serve.add_argument("--workers", "-w", type=int, default=2, metavar="K",
                       help="analysis worker threads (default 2)")
    serve.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                       help="engine process-pool width per job when the "
                            "job does not specify one (default 1)")
    serve.add_argument("--store-dir", metavar="DIR", default=".repro-store",
                       help="content-addressed result store directory "
                            "(default .repro-store)")
    serve.add_argument("--journal", metavar="DIR", default=None,
                       help="write-ahead job journal directory; a "
                            "restarted serve replays every unfinished "
                            "job from it (default: no journal, jobs "
                            "are lost on restart)")
    serve.add_argument("--max-queue", type=int, default=None, metavar="N",
                       help="admission control: reject submissions with "
                            "HTTP 429 + Retry-After once N jobs are "
                            "queued (default: unbounded)")
    serve.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="default per-job wall-clock deadline; the "
                            "watchdog marks over-deadline jobs TIMEOUT "
                            "and respawns their workers (jobs may carry "
                            "their own deadline_seconds)")
    serve.add_argument("--drain-grace", type=float, default=30.0,
                       metavar="SECONDS",
                       help="on SIGTERM/SIGINT, wait this long for "
                            "in-flight jobs before stopping "
                            "(default 30)")
    serve.add_argument("--inject-fault", action="append", default=[],
                       metavar="SITE[@KEY]:KIND[:NTH[:SCOPE]]",
                       help="debug: install a deterministic fault in "
                            "the service process, e.g. "
                            "journal.append@start:raise:1:all "
                            "(repeatable)")
    serve.add_argument("--verbose", action="store_true",
                       help="log each HTTP request to stderr")
    serve.set_defaults(handler=_cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
