"""The versioned wire contract for every payload crossing a boundary.

Every ``to_dict()`` payload that leaves the process — CLI ``--json``
output, the ``/v1`` HTTP API of :mod:`repro.serve`, entries in the
content-addressed result store (:mod:`repro.store`) — carries a
``schema_version`` field, and every ``from_dict()`` checks it before
touching the rest of the payload.

Versioning policy (documented for consumers in ``docs/api.md``):

- the version is ``"<major>.<minor>"``;
- **major** bumps are breaking: a reader raises
  :class:`SchemaVersionError` on a major it does not know, instead of
  misparsing the payload silently;
- **minor** bumps are additive (new optional fields): a reader accepts
  any minor within a known major and ignores fields it does not know;
- payloads with *no* ``schema_version`` are grandfathered as the
  pre-versioning wire format (the PR 1 ``to_dict`` shapes) and parsed
  with the legacy defaults — old dumps stay loadable forever.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: The current wire-format version, stamped into every payload.
#: 1.1 (additive): fuzz-campaign payloads (``FuzzConfig``/``FuzzResult``
#: summaries, ``Deviation`` artifacts) and the ``kind``/``result``
#: fields on serve job records.
#: 1.2 (additive): service resilience — the ``timeout`` job status and
#: ``deadline_seconds`` on job records, journal entries
#: (:mod:`repro.serve.journal`), and the ``live``/``ready``/
#: ``draining``/``queue_full``/``leaked_threads``/``journal`` fields
#: in the ``/v1/health`` body.
SCHEMA_VERSION = "1.2"

#: The field name carrying the version in every payload.
SCHEMA_KEY = "schema_version"


class SchemaVersionError(ValueError):
    """A payload declared a wire-format major this reader cannot parse."""


def parse_version(text: str) -> Tuple[int, int]:
    """``"1.0"`` → ``(1, 0)``; raises :class:`SchemaVersionError`."""
    major, _, minor = str(text).partition(".")
    try:
        return int(major), int(minor or 0)
    except ValueError:
        raise SchemaVersionError(
            f"malformed schema_version {text!r}; expected "
            f"'<major>.<minor>'") from None


#: The major this reader understands, derived from the current version.
CURRENT_MAJOR = parse_version(SCHEMA_VERSION)[0]


def stamp(payload: Dict) -> Dict:
    """Stamp the current version into ``payload`` (returned for chaining)."""
    payload[SCHEMA_KEY] = SCHEMA_VERSION
    return payload


def check(payload: Dict, kind: str = "payload") -> Optional[Tuple[int, int]]:
    """Validate a payload's declared version before parsing it.

    Returns the parsed ``(major, minor)`` — or ``None`` for a legacy
    payload that predates versioning — and raises
    :class:`SchemaVersionError` for a malformed version or an unknown
    major.  ``kind`` names the payload type in the error message.
    """
    declared = payload.get(SCHEMA_KEY)
    if declared is None:
        return None
    version = parse_version(declared)
    if version[0] != CURRENT_MAJOR:
        raise SchemaVersionError(
            f"{kind} payload declares schema_version {declared!r} "
            f"(major {version[0]}); this reader understands major "
            f"{CURRENT_MAJOR} ({SCHEMA_VERSION})")
    return version
