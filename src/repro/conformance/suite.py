"""The conformance test suite (3GPP-style functional cases).

The closed-source suite in the paper has 7087 cases spanning every NAS
procedure; this module provides the behavioural core of such a suite —
one-or-more positive and negative cases per procedure of Fig. 1 — plus
the "additional test cases" the paper wrote for the open-source stacks
(9 for srsLTE, 7 for OAI: replay, stale-SQN, plaintext-injection and
post-reject probes that stock suites lack).  A parameterised generator
(:func:`generated_suite`) expands the core into a larger population for
the extraction-time scaling benchmark.

Every case drives a fresh UE over a real MME/HSS and records behaviour;
cases never assert compliance — the verdicts come from the verification
stage.  Their job is coverage: make the implementation traverse states
and checks so the instrumented log is information-rich.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..lte import constants as c
from .testcase import TestCase, TestContext

SuiteFn = Callable[[TestContext], None]


# ---------------------------------------------------------------------------
# Attach / identity / authentication
# ---------------------------------------------------------------------------
def tc_attach_basic(ctx: TestContext) -> None:
    """Full attach: auth -> SMC -> accept -> complete."""
    ctx.attach()


def tc_attach_identity_exchange(ctx: TestContext) -> None:
    """Identity request during attach (pre-context) is answered."""
    ctx.mute_mme()
    ctx.ue.power_on()
    ctx.send_plain(c.IDENTITY_REQUEST, {"identity_type": "imsi"})


def tc_auth_bad_mac(ctx: TestContext) -> None:
    """Authentication request with an invalid AUTN MAC -> mac failure."""
    ctx.mute_mme()
    ctx.ue.power_on()
    ctx.send_auth_request(seq=5, ind=1, valid_mac=False)


def tc_auth_sync_failure(ctx: TestContext) -> None:
    """Stale SEQ in the same IND slot -> synchronisation failure."""
    ctx.attach()
    ctx.mute_mme()
    ctx.send_auth_request(seq=1, ind=1)   # slot 1 already holds seq 1
    ctx.send_auth_request(seq=0, ind=1)


def tc_auth_out_of_order_sqn(ctx: TestContext) -> None:
    """Smaller SEQ in a *different* IND slot — the Annex C window probe."""
    ctx.attach()
    ctx.mute_mme()
    # The attach consumed SQN (seq=1, ind=1).  Deliver seq=3/ind=3 then
    # the out-of-order seq=2/ind=2: an array implementation accepts both.
    ctx.send_auth_request(seq=3, ind=3)
    ctx.send_auth_request(seq=2, ind=2)


def tc_auth_equal_sqn_replay(ctx: TestContext) -> None:
    """Byte-exact replay of a captured authentication_request (I3 probe)."""
    ctx.attach()
    ctx.mute_mme()
    ctx.replay_downlink(c.AUTHENTICATION_REQUEST)


def tc_auth_reject(ctx: TestContext) -> None:
    """Plaintext authentication_reject mid-attach is obeyed."""
    ctx.mute_mme()
    ctx.ue.power_on()
    ctx.send_plain(c.AUTHENTICATION_REJECT, {})


# ---------------------------------------------------------------------------
# Security mode control
# ---------------------------------------------------------------------------
def tc_smc_bad_mac(ctx: TestContext) -> None:
    """SMC with garbage MAC must be discarded silently."""
    ctx.attach()
    ctx.send_badly_protected(c.SECURITY_MODE_COMMAND,
                             {"selected_eia": "eia1"})


def tc_smc_replay(ctx: TestContext) -> None:
    """Replay the session's SMC after attach (I1/I6 probe)."""
    ctx.attach()
    ctx.mute_mme()
    ctx.replay_downlink(c.SECURITY_MODE_COMMAND)


def tc_protected_plain_header(ctx: TestContext) -> None:
    """Protected-type message with plain header after context (I2 probe)."""
    ctx.attach()
    ctx.mute_mme()
    ctx.send_plain(c.GUTI_REALLOCATION_COMMAND,
                   {"guti": "00101-0001-01-deadbeef"})


def tc_identity_request_post_ctx(ctx: TestContext) -> None:
    """Plaintext identity_request after the context exists (I5 probe)."""
    ctx.attach()
    ctx.mute_mme()
    ctx.send_plain(c.IDENTITY_REQUEST, {"identity_type": "imsi"})


# ---------------------------------------------------------------------------
# Attach accept / reject handling
# ---------------------------------------------------------------------------
def tc_attach_accept_replay(ctx: TestContext) -> None:
    """Replay the session's attach_accept (I1 probe)."""
    ctx.attach()
    ctx.mute_mme()
    ctx.replay_downlink(c.ATTACH_ACCEPT)


def tc_attach_accept_plain_preauth(ctx: TestContext) -> None:
    """Plaintext attach_accept before authentication must be ignored."""
    ctx.mute_mme()
    ctx.ue.power_on()
    ctx.send_plain(c.ATTACH_ACCEPT, {"guti": "00101-0001-01-0000beef"})


def tc_attach_reject(ctx: TestContext) -> None:
    """Plaintext attach_reject mid-attach."""
    ctx.mute_mme()
    ctx.ue.power_on()
    ctx.send_plain(c.ATTACH_REJECT, {"cause": c.CAUSE_EPS_NOT_ALLOWED})


def tc_attach_after_reject(ctx: TestContext) -> None:
    """Re-attach after a reject; replay old attach_accept (I4 probe).

    A compliant UE deleted its context at the reject and must discard the
    replayed accept; srsUE kept the context and registers without auth.
    """
    ctx.attach()
    ctx.mute_mme()
    ctx.send_plain(c.ATTACH_REJECT, {"cause": c.CAUSE_EPS_NOT_ALLOWED})
    ctx.ue.power_on()
    ctx.replay_downlink(c.ATTACH_ACCEPT)


# ---------------------------------------------------------------------------
# GUTI reallocation / TAU / paging / service / detach
# ---------------------------------------------------------------------------
def tc_guti_realloc(ctx: TestContext) -> None:
    ctx.attach()
    ctx.mme.initiate_guti_reallocation()


def tc_guti_realloc_timeout(ctx: TestContext) -> None:
    """All five T3450 expiries: the MME aborts (P3's drop budget)."""
    ctx.attach()
    ctx.link.detach_ue()          # nothing reaches the UE (dropped)
    ctx.mme.initiate_guti_reallocation()
    for _ in range(6):
        ctx.advance(10.0)


def tc_guti_realloc_replay(ctx: TestContext) -> None:
    ctx.attach()
    ctx.mme.initiate_guti_reallocation()
    ctx.mute_mme()
    ctx.replay_downlink(c.GUTI_REALLOCATION_COMMAND)


def tc_tau_basic(ctx: TestContext) -> None:
    ctx.attach()
    ctx.ue.initiate_tau()


def tc_tau_reject(ctx: TestContext) -> None:
    ctx.attach()
    ctx.mute_mme()
    ctx.ue.initiate_tau()
    ctx.send_plain(c.TAU_REJECT, {"cause": c.CAUSE_TA_NOT_ALLOWED})


def tc_paging_service_request(ctx: TestContext) -> None:
    ctx.attach()
    ctx.mme.initiate_paging()


def tc_paging_wrong_identity(ctx: TestContext) -> None:
    ctx.attach()
    ctx.mute_mme()
    ctx.send_plain(c.PAGING, {"paging_id": "00101-9999-01-00000000"})


def tc_service_reject(ctx: TestContext) -> None:
    ctx.attach()
    ctx.mute_mme()
    ctx.send_plain(c.PAGING,
                   {"paging_id": str(ctx.ue.current_guti or "")})
    ctx.send_plain(c.SERVICE_REJECT, {"cause": c.CAUSE_CONGESTION})


def tc_detach_ue_initiated(ctx: TestContext) -> None:
    ctx.attach()
    ctx.ue.initiate_detach()


def tc_detach_network_initiated(ctx: TestContext) -> None:
    ctx.attach()
    ctx.mme.initiate_detach()


def tc_detach_network_reattach(ctx: TestContext) -> None:
    ctx.attach()
    ctx.mme.initiate_detach(reattach=True)


def tc_detach_plain_preauth(ctx: TestContext) -> None:
    """Plain detach_request during attach (TS 24.301 4.4.4.2 exception)."""
    ctx.mute_mme()
    ctx.ue.power_on()
    ctx.send_plain(c.DETACH_REQUEST, {"reattach": 0})


def tc_detach_plain_postauth(ctx: TestContext) -> None:
    """Plain detach_request after the context exists must be rejected."""
    ctx.attach()
    ctx.mute_mme()
    ctx.send_plain(c.DETACH_REQUEST, {"reattach": 0})


def tc_emm_information(ctx: TestContext) -> None:
    ctx.attach()
    ctx.send_protected(c.EMM_INFORMATION, {"network_name": "TestNet"})


def tc_emm_information_replay(ctx: TestContext) -> None:
    ctx.attach()
    ctx.send_protected(c.EMM_INFORMATION, {"network_name": "TestNet"})
    ctx.mute_mme()
    ctx.replay_downlink(c.EMM_INFORMATION)


def tc_config_update(ctx: TestContext) -> None:
    """5G Configuration Update completes (TS 24.501)."""
    ctx.attach()
    ctx.mme.initiate_configuration_update()


def tc_config_update_timeout(ctx: TestContext) -> None:
    """All five T3555 expiries: the procedure aborts (P3's 5G variant)."""
    ctx.attach()
    ctx.link.detach_ue()
    ctx.mme.initiate_configuration_update()
    for _ in range(6):
        ctx.advance(10.0)


def tc_emm_information_ciphered(ctx: TestContext) -> None:
    """EMM information delivered ciphered (EEA) and deciphered."""
    ctx.attach()
    ctx.mme.send_information("TestNet", ciphered=True)


def tc_nas_transport(ctx: TestContext) -> None:
    ctx.attach()
    ctx.send_protected(c.DOWNLINK_NAS_TRANSPORT, {"payload": "sms"})
    ctx.ue.send_nas_payload("sms-reply")


def tc_smc_null_integrity(ctx: TestContext) -> None:
    """SMC selecting the null integrity algorithm -> SECURITY MODE REJECT."""
    ctx.attach()
    ctx.send_protected(c.SECURITY_MODE_COMMAND,
                       {"selected_eia": "eia0", "selected_eea": "eea0"})


def tc_old_protected_replay(ctx: TestContext) -> None:
    """Replay the most recent and an *older* protected message.

    Distinguishes srsUE's accept-anything from OAI's accept-last-only
    flavour of I1: the last-message replay succeeds on both, the older
    one only on srsUE.
    """
    ctx.attach()
    ctx.send_protected(c.EMM_INFORMATION, {"network_name": "A"})
    ctx.send_protected(c.EMM_INFORMATION, {"network_name": "B"})
    ctx.mute_mme()
    ctx.replay_downlink(c.EMM_INFORMATION, index=-1)
    ctx.replay_downlink(c.EMM_INFORMATION, index=0)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
def standard_suite() -> List[TestCase]:
    """The stock functional cases every conformance suite has."""
    entries = [
        ("TC_ATTACH_1", "attach", "complete attach procedure",
         tc_attach_basic),
        ("TC_ATTACH_2", "identity", "identity exchange during attach",
         tc_attach_identity_exchange),
        ("TC_AUTH_1", "authentication", "invalid AUTN MAC",
         tc_auth_bad_mac),
        ("TC_AUTH_2", "authentication", "stale SEQ, same IND slot",
         tc_auth_sync_failure),
        ("TC_AUTH_3", "authentication", "authentication_reject handling",
         tc_auth_reject),
        ("TC_SMC_1", "security-mode", "SMC with invalid MAC",
         tc_smc_bad_mac),
        ("TC_SMC_2", "security-mode", "SMC selecting null integrity",
         tc_smc_null_integrity),
        ("TC_ATTACH_3", "attach", "plaintext attach_accept pre-auth",
         tc_attach_accept_plain_preauth),
        ("TC_ATTACH_4", "attach", "attach_reject handling",
         tc_attach_reject),
        ("TC_GUTI_1", "guti-reallocation", "GUTI reallocation completes",
         tc_guti_realloc),
        ("TC_GUTI_2", "guti-reallocation", "T3450 exhaustion aborts",
         tc_guti_realloc_timeout),
        ("TC_TAU_1", "tracking-area-update", "TAU accept/complete",
         tc_tau_basic),
        ("TC_TAU_2", "tracking-area-update", "TAU reject handling",
         tc_tau_reject),
        ("TC_PAGE_1", "paging", "paging triggers service request",
         tc_paging_service_request),
        ("TC_PAGE_2", "paging", "paging with foreign identity ignored",
         tc_paging_wrong_identity),
        ("TC_SERV_1", "service", "service reject handling",
         tc_service_reject),
        ("TC_DETACH_1", "detach", "UE-initiated detach",
         tc_detach_ue_initiated),
        ("TC_DETACH_2", "detach", "network-initiated detach",
         tc_detach_network_initiated),
        ("TC_DETACH_3", "detach", "network detach with re-attach",
         tc_detach_network_reattach),
        ("TC_DETACH_4", "detach", "plain detach before security context",
         tc_detach_plain_preauth),
        ("TC_DETACH_5", "detach", "plain detach after security context",
         tc_detach_plain_postauth),
        ("TC_INFO_1", "emm-information", "EMM information accepted",
         tc_emm_information),
        ("TC_INFO_2", "emm-information", "ciphered EMM information",
         tc_emm_information_ciphered),
        ("TC_NAS_1", "transport", "downlink NAS transport",
         tc_nas_transport),
        ("TC_5G_1", "configuration-update", "5G configuration update",
         tc_config_update),
        ("TC_5G_2", "configuration-update", "T3555 exhaustion aborts",
         tc_config_update_timeout),
    ]
    return [TestCase(identifier, procedure, description, fn)
            for identifier, procedure, description, fn in entries]


def additional_cases() -> List[TestCase]:
    """The probes the paper added to the open-source stacks.

    Nine are tagged for srsLTE and seven for OAI (a case may serve both).
    """
    entries = [
        # nine tagged for srsLTE, seven for OAI (Section VI)
        ("TC_X_SQN_1", "authentication", "out-of-order SQN window probe",
         tc_auth_out_of_order_sqn, ("srsue", "oai")),
        ("TC_X_SQN_2", "authentication", "byte-exact auth request replay",
         tc_auth_equal_sqn_replay, ("srsue", "oai")),
        ("TC_X_RPL_1", "security-mode", "SMC replay probe",
         tc_smc_replay, ("srsue", "oai")),
        ("TC_X_RPL_2", "attach", "attach_accept replay probe",
         tc_attach_accept_replay, ("srsue", "oai")),
        ("TC_X_RPL_3", "emm-information", "last/older protected replay",
         tc_old_protected_replay, ("srsue", "oai")),
        ("TC_X_PLAIN_1", "security", "plain header after context",
         tc_protected_plain_header, ("srsue", "oai")),
        ("TC_X_ID_1", "identity", "identity request after context",
         tc_identity_request_post_ctx, ("oai",)),
        ("TC_X_REJ_1", "attach", "re-attach after reject, replayed accept",
         tc_attach_after_reject, ("srsue",)),
        ("TC_X_GUTI_1", "guti-reallocation", "GUTI realloc replay",
         tc_guti_realloc_replay, ("srsue",)),
        ("TC_X_INFO_1", "emm-information", "protected message replay",
         tc_emm_information_replay, ("srsue",)),
    ]
    return [TestCase(identifier, procedure, description, fn, added)
            for identifier, procedure, description, fn, added in entries]


def full_suite(implementation: Optional[str] = None) -> List[TestCase]:
    """Standard suite plus the additional cases (optionally filtered).

    With ``implementation`` given, only the additional cases tagged for it
    are included — reproducing "we add 9 test cases to srsLTE ... and 7
    test cases to OAI".
    """
    cases = standard_suite()
    for case in additional_cases():
        if implementation is None or implementation == "reference" \
                or implementation in case.added_for:
            cases.append(case)
    return cases


def generated_suite(multiplier: int = 10) -> List[TestCase]:
    """Expand the suite into a larger population (subscriber sweeps).

    Used by the extraction-time benchmark: the closed-source codebase runs
    7087 cases; scaling the suite shows extraction stays linear in log
    size.
    """
    cases: List[TestCase] = []
    base = full_suite()
    for round_index in range(multiplier):
        for case in base:
            msin = str(round_index + 1).zfill(9)

            def run(ctx: TestContext, fn: SuiteFn = case.run) -> None:
                fn(ctx)

            cases.append(TestCase(
                identifier=f"{case.identifier}_R{round_index}",
                procedure=case.procedure,
                description=case.description,
                run=run,
            ))
    return cases
