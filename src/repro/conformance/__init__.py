"""Functional conformance testing framework (the extraction workload).

- :mod:`repro.conformance.testcase` — the test-case DSL and execution
  context with network-side probe powers;
- :mod:`repro.conformance.suite` — the standard suite, the paper's
  additional open-source cases, and the scaling generator;
- :mod:`repro.conformance.runner` — instrumented suite execution;
- :mod:`repro.conformance.coverage` — NAS handler coverage measurement.
"""

from .testcase import ConformanceError, TestCase, TestContext
from .suite import (additional_cases, full_suite, generated_suite,
                    standard_suite)
from .runner import (CaseOutcome, ConformanceRunner, SuiteResult,
                     run_conformance)
from .coverage import (CoverageReport, coverage_gain, handler_universe,
                       measure_coverage)

__all__ = [
    "ConformanceError", "TestCase", "TestContext",
    "additional_cases", "full_suite", "generated_suite", "standard_suite",
    "CaseOutcome", "ConformanceRunner", "SuiteResult", "run_conformance",
    "CoverageReport", "coverage_gain", "handler_universe",
    "measure_coverage",
]
