"""Conformance suite runner with optional instrumentation.

Executes each test case against a fresh :class:`TestContext` for the
chosen implementation.  With ``instrument=True`` (the ProChecker mode) the
whole run happens under the runtime instrumentor, producing one
information-rich log for the model extractor; each case is bracketed with
a TESTCASE marker for coverage accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .. import obs
from ..instrumentation.logfmt import LogWriter
from ..instrumentation.runtime import RuntimeInstrumenter, TraceTargets
from ..lte.channel import ChaosConfig
from ..lte.implementations import REGISTRY
from .testcase import TestCase, TestContext


@dataclass
class CaseOutcome:
    """Execution record for one test case."""

    identifier: str
    procedure: str
    ok: bool
    error: str = ""
    notes: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0


@dataclass
class SuiteResult:
    """Result of one full conformance run."""

    implementation: str
    outcomes: List[CaseOutcome] = field(default_factory=list)
    log_text: str = ""
    elapsed_seconds: float = 0.0

    @property
    def executed(self) -> int:
        return len(self.outcomes)

    @property
    def failures(self) -> List[CaseOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    def log_lines(self) -> int:
        return self.log_text.count("\n")


class ConformanceRunner:
    """Runs a suite of test cases against one implementation."""

    def __init__(self, implementation: str,
                 chaos: Optional[ChaosConfig] = None):
        if implementation not in REGISTRY:
            raise ValueError(f"unknown implementation {implementation!r}")
        self.implementation = implementation
        self.ue_class = REGISTRY[implementation]
        self.chaos = chaos

    def _make_context(self, index: int, case: TestCase) -> TestContext:
        msin = str(index + 1).zfill(9)
        # The chaos stream is keyed by case identifier, not index, so a
        # case keeps its impairment schedule if the catalog is reordered.
        return TestContext(self.ue_class, msin=msin, chaos=self.chaos,
                           chaos_stream=case.identifier)

    def run(self, cases: Sequence[TestCase],
            instrument: bool = True) -> SuiteResult:
        """Execute ``cases``; returns outcomes plus the combined log."""
        result = SuiteResult(self.implementation)
        writer = LogWriter()
        targets = TraceTargets.for_implementation(self.ue_class)

        def execute_all() -> None:
            for index, case in enumerate(cases):
                if instrument:
                    writer.testcase(case.identifier)
                context = self._make_context(index, case)
                outcome = CaseOutcome(case.identifier, case.procedure,
                                      ok=True)
                with obs.span("conformance.case",
                              case=case.identifier) as case_span:
                    try:
                        case.run(context)
                    except Exception as exc:  # noqa: BLE001 - a verdict
                        outcome.ok = False
                        outcome.error = f"{type(exc).__name__}: {exc}"
                outcome.notes = list(context.notes)
                outcome.elapsed_seconds = case_span.duration
                result.outcomes.append(outcome)

        with obs.span("conformance.run",
                      implementation=self.implementation,
                      cases=len(cases), instrumented=instrument,
                      chaos=(self.chaos.describe() if self.chaos
                             else "")) as span:
            if instrument:
                with RuntimeInstrumenter(writer, targets):
                    execute_all()
            else:
                execute_all()
            obs.inc("conformance.cases", len(cases))

        result.log_text = writer.getvalue()
        result.elapsed_seconds = span.duration
        return result


def run_conformance(implementation: str, cases: Sequence[TestCase],
                    instrument: bool = True,
                    chaos: Optional[ChaosConfig] = None) -> SuiteResult:
    """Convenience wrapper used by the pipeline and the benchmarks."""
    return ConformanceRunner(implementation, chaos=chaos).run(cases,
                                                              instrument)
