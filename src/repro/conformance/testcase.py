"""Conformance test-case abstraction and execution context.

A test case is "a protocol level functional test case, testing a separate
protocol interaction" (Section VI).  Each case is a Python callable over a
:class:`TestContext`, which wires a fresh UE implementation to a real
MME/HSS over a radio link and offers the network-side probe operations the
3GPP test harness has: observing uplink traffic, injecting or replaying
downlink frames, crafting (in)correctly protected messages, and driving
the clock.

Negative cases (bad MAC, stale SQN, replay, plaintext injection) use the
same probe powers an in-lab tester — or an attacker — has; they both
exercise the implementation's failure handling for the extractor and act
as the paper's "additional test cases" for the open-source stacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .. import obs
from ..lte import constants as c
from ..lte.channel import ChaosConfig, RadioLink
from ..lte.hss import Hss
from ..lte.identifiers import Subscriber, make_subscriber
from ..lte.messages import NasMessage
from ..lte.mme import MmeNas
from ..lte.security import DIR_DOWNLINK
from ..lte.timers import SimClock


class ConformanceError(Exception):
    """Raised when a test case cannot run (harness error, not a verdict)."""


@dataclass
class TestCase:
    """Registry entry for one conformance test case."""

    identifier: str
    procedure: str
    description: str
    run: Callable[["TestContext"], None]
    #: which open-source implementation needed this case added (the paper
    #: added 9 to srsLTE and 7 to OAI beyond their stock suites)
    added_for: tuple = ()


class TestContext:
    """Everything one test-case execution needs."""

    #: Cap on retransmission-timer firings the chaos settle loop will
    #: drive per attach — far above the worst case (five supervised
    #: messages x five sends each) but finite, so a wedged procedure
    #: terminates the case instead of spinning.
    SETTLE_LIMIT = 64

    def __init__(self, ue_factory: Callable[..., object],
                 msin: str = "000000001",
                 chaos: Optional[ChaosConfig] = None,
                 chaos_stream: str = ""):
        self.clock = SimClock()
        self.link = RadioLink(chaos=chaos,
                              chaos_stream=chaos_stream or msin)
        self.subscriber: Subscriber = make_subscriber(msin)
        self.hss = Hss()
        self.hss.provision(self.subscriber)
        self.mme = MmeNas(self.hss, self.link, clock=self.clock)
        self.ue = ue_factory(self.subscriber, self.link, clock=self.clock)
        self.notes: List[str] = []

    # ------------------------------------------------------------------
    # Drive
    # ------------------------------------------------------------------
    #: UE states in which the attach procedure is still in flight and a
    #: pending retransmission timer is the only way it can progress.
    _ATTACH_TRANSIENT_STATES = (
        c.EMM_REGISTERED_INITIATED,
        c.EMM_REGISTERED_INITIATED_AUTHENTICATED,
        c.EMM_REGISTERED_INITIATED_SECURE,
    )

    def attach(self) -> None:
        """Run the full attach procedure (Fig. 1, happy path).

        Under chaos, a dropped supervised message leaves the procedure
        waiting on a retransmission timer: fire pending expiries until
        the attach settles (the absorption loop).  On a perfect link
        (no chaos) the loop never runs — clean-run behaviour and logs
        are bit-for-bit unchanged.
        """
        self.ue.power_on()
        if self.link.chaos is not None:
            self._settle_attach()
        if self.ue.emm_state != c.EMM_REGISTERED:
            self.notes.append(
                f"attach ended in {self.ue.emm_state}")

    def _settle_attach(self) -> None:
        rounds = 0
        while (self.ue.emm_state in self._ATTACH_TRANSIENT_STATES
               and self.clock.pending()
               and rounds < self.SETTLE_LIMIT):
            self.clock.fire_next()
            rounds += 1

    def advance(self, seconds: float) -> int:
        return self.clock.advance(seconds)

    # ------------------------------------------------------------------
    # Observe
    # ------------------------------------------------------------------
    def uplink_messages(self) -> List[NasMessage]:
        return self.link.captured_messages("uplink")

    def downlink_messages(self) -> List[NasMessage]:
        return self.link.captured_messages("downlink")

    def last_uplink(self) -> Optional[NasMessage]:
        messages = self.uplink_messages()
        return messages[-1] if messages else None

    def uplink_names(self) -> List[str]:
        return [message.name for message in self.uplink_messages()]

    def captured_downlink_frame(self, name: str,
                                index: int = -1) -> Optional[bytes]:
        """The raw bytes of a previously transmitted downlink message."""
        matches = []
        for record in self.link.history:
            if record.direction != "downlink":
                continue
            try:
                message = NasMessage.from_wire(record.frame)
            except Exception:  # noqa: BLE001
                obs.count("channel.malformed_frames")
                continue
            if message.name == name:
                matches.append(record.frame)
        if not matches:
            return None
        return matches[index]

    # ------------------------------------------------------------------
    # Probe (network-side powers)
    # ------------------------------------------------------------------
    def mute_mme(self) -> None:
        """Take over the network side: MME stops reacting to uplink."""
        self.link.detach_mme()

    def send_plain(self, name: str, fields: Optional[Dict] = None) -> None:
        """Inject a plaintext downlink message."""
        message = NasMessage(name=name, fields=dict(fields or {}))
        self.link.inject_downlink(message.to_wire())

    def send_protected(self, name: str, fields: Optional[Dict] = None,
                       new_ctx: bool = False) -> None:
        """Inject a message correctly protected with the session context."""
        if self.mme.security_ctx is None:
            raise ConformanceError("no session security context to protect "
                                   "with; run attach first")
        message = NasMessage(name=name, fields=dict(fields or {}))
        body = message.payload_bytes()
        _, tag, count = self.mme.security_ctx.protect(
            body, DIR_DOWNLINK, cipher=False)
        message.sec_header = (c.SEC_HDR_INTEGRITY_NEW_CTX if new_ctx
                              else c.SEC_HDR_INTEGRITY)
        message.mac = tag
        message.count = count
        self.link.inject_downlink(message.to_wire())

    def send_badly_protected(self, name: str,
                             fields: Optional[Dict] = None) -> None:
        """Inject a message with a garbage MAC (integrity-failure probe)."""
        message = NasMessage(name=name, fields=dict(fields or {}))
        message.sec_header = c.SEC_HDR_INTEGRITY
        message.mac = b"\xde\xad\xbe\xef\xde\xad\xbe\xef"
        message.count = 99
        self.link.inject_downlink(message.to_wire())

    def replay_downlink(self, name: str, index: int = -1) -> bool:
        """Replay a previously captured downlink frame byte-for-byte."""
        frame = self.captured_downlink_frame(name, index)
        if frame is None:
            return False
        self.link.inject_downlink(frame)
        return True

    def send_auth_request(self, seq: int, ind: int,
                          valid_mac: bool = True) -> None:
        """Craft an authentication_request with a chosen SQN."""
        from ..lte.security import f1_mac
        from ..lte.sqn import Sqn

        sqn = Sqn(seq, ind)
        rand = b"\x01" * 16
        mac = (f1_mac(self.subscriber.permanent_key, rand, sqn)
               if valid_mac else b"\x00" * 8)
        self.send_plain(c.AUTHENTICATION_REQUEST, {
            "rand": rand, "sqn_seq": seq, "sqn_ind": ind, "autn_mac": mac,
        })

    def note(self, text: str) -> None:
        self.notes.append(text)
