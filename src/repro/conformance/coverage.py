"""NAS-layer coverage measurement from instrumented logs.

The paper reports reaching "84% coverage for the NAS layer" on srsLTE
after adding nine test cases.  Coverage here is handler coverage: the
fraction of the implementation's message handlers (incoming and outgoing)
whose function entrance appears in the log.  The module also reports
per-procedure and per-test-case breakdowns, and the (state, message)
stimulus matrix that the FSM analysis uses to suggest missing test cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from ..instrumentation.logfmt import (ENTER, GLOBAL, iter_testcases,
                                      parse_log)


@dataclass
class CoverageReport:
    """Handler-coverage summary for one conformance run."""

    implementation: str
    covered_handlers: Set[str] = field(default_factory=set)
    all_handlers: Set[str] = field(default_factory=set)
    per_testcase: Dict[str, Set[str]] = field(default_factory=dict)
    stimulus_pairs: Set[Tuple[str, str]] = field(default_factory=set)

    @property
    def fraction(self) -> float:
        if not self.all_handlers:
            return 0.0
        return len(self.covered_handlers & self.all_handlers) \
            / len(self.all_handlers)

    @property
    def percent(self) -> float:
        return round(100.0 * self.fraction, 1)

    def uncovered(self) -> Set[str]:
        return self.all_handlers - self.covered_handlers

    def testcases_covering(self, handler: str) -> List[str]:
        return sorted(name for name, handlers in self.per_testcase.items()
                      if handler in handlers)


def handler_universe(ue_class) -> Set[str]:
    """Every message handler the implementation defines."""
    universe = set()
    for name in dir(ue_class):
        if name.startswith((ue_class.RECV_PREFIX, ue_class.SEND_PREFIX)) \
                and callable(getattr(ue_class, name)):
            universe.add(name)
    return universe


def measure_coverage(ue_class, log_text: str,
                     implementation: str = "") -> CoverageReport:
    """Compute handler coverage of a conformance log."""
    report = CoverageReport(
        implementation=implementation or ue_class.__name__,
        all_handlers=handler_universe(ue_class),
    )
    records = parse_log(log_text)
    current_state = None
    for case_name, case_records in iter_testcases(records):
        case_handlers: Set[str] = set()
        for record in case_records:
            if record.kind == GLOBAL and record.name == "emm_state":
                current_state = record.value
            if record.kind != ENTER:
                continue
            if record.name in report.all_handlers:
                case_handlers.add(record.name)
                report.covered_handlers.add(record.name)
                if record.name.startswith(ue_class.RECV_PREFIX) \
                        and current_state is not None:
                    message = record.name[len(ue_class.RECV_PREFIX):]
                    report.stimulus_pairs.add((current_state, message))
        report.per_testcase[case_name] = case_handlers
    return report


def coverage_gain(base: CoverageReport,
                  extended: CoverageReport) -> Dict[str, object]:
    """What the additional test cases bought (paper Section VI)."""
    gained = extended.covered_handlers - base.covered_handlers
    return {
        "base_percent": base.percent,
        "extended_percent": extended.percent,
        "handlers_gained": sorted(gained),
    }
