"""Spec lint (PCL01x): static analysis of the property catalog.

A property whose formula mentions an undeclared atom, compares a variable
against a misspelled enum literal, or carries an unsatisfiable antecedent
is a *silent no-op*: the checker still runs, the verdict still says
VERIFIED, and nothing downstream notices.  This family parses every
catalog formula under both vocabularies and resolves each atom against
the threat model's declared variables and enum domains, exactly as the
verification pipeline would (``parse_ltl`` + the instrumentor's variable
table), so a formula that lints clean is guaranteed to bind to real model
state.
"""

from __future__ import annotations

import itertools
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..baselines.lteinspector import lteinspector_mme, lteinspector_ue
from ..extraction.signatures import INTERNAL_TRIGGERS
from ..lte import constants as c
from ..mc.buchi import normalised_key
from ..mc.expr import Compare, Expr, ExprError, Not, _NaryExpr, parse_expr
from ..mc.ltl import LTLError, parse_ltl
from ..properties.spec import (EXTRACTED_VOCAB, KIND_LTL, KIND_TESTBED,
                               LTEINSPECTOR_VOCAB, Property)
from ..threat.instrumentor import (COUNT_RELATIONS, NONE_MSG, SQN_RELATIONS,
                                   TURN_ADV_DL, TURN_ADV_UL, TURN_MME,
                                   TURN_UE)
from .findings import Finding

#: Keep brute-force satisfiability bounded; antecedents in the catalog
#: mention <= 6 small-domain variables, far below this.
SAT_ENUMERATION_CAP = 250_000

_VOCABULARIES: Tuple[Tuple[str, Dict[str, str]], ...] = (
    ("extracted", EXTRACTED_VOCAB),
    ("lteinspector", LTEINSPECTOR_VOCAB),
)


def _vocabulary_domains(vocabulary_name: str) -> Dict[str, Tuple]:
    """The declared variable/domain table of the instrumented model.

    Mirrors :meth:`repro.threat.ThreatInstrumentor._build`, but over the
    *full standards alphabet* rather than one extraction's subset: spec
    lint must be runnable without a conformance run, and a property is
    well-formed iff it binds to some standards-defined state or message.
    """
    if vocabulary_name == "lteinspector":
        ue_states = tuple(sorted(lteinspector_ue().states))
    else:
        ue_states = tuple(sorted(c.UE_STATES))
    return {
        "turn": (TURN_MME, TURN_ADV_DL, TURN_UE, TURN_ADV_UL),
        "ue_state": ue_states,
        "mme_state": tuple(sorted(lteinspector_mme().states)),
        "chan_dl": (NONE_MSG,) + tuple(c.DOWNLINK_MESSAGES),
        "chan_ul": (NONE_MSG,) + tuple(c.UPLINK_MESSAGES),
        "dl_mac_valid": (0, 1),
        "dl_plain": (0, 1),
        "dl_replayed": (0, 1),
        "dl_injected": (0, 1),
        "ul_injected": (0, 1),
        "dl_paging_match": (0, 1),
        "dl_sqn_rel": tuple(SQN_RELATIONS),
        "dl_count_rel": tuple(COUNT_RELATIONS),
    }


def _domains_for(prop: Property, vocabulary_name: str) -> Dict[str, Tuple]:
    domains = dict(_vocabulary_domains(vocabulary_name))
    for message in prop.threat.replay_dl:
        domains[f"sent_{message}"] = (0, 1)
    return domains


def _walk_expr(expr: Expr) -> Iterable[Expr]:
    yield expr
    if isinstance(expr, Not):
        yield from _walk_expr(expr.operand)
    elif isinstance(expr, _NaryExpr):
        for operand in expr.operands:
            yield from _walk_expr(operand)


def _enum_typos(expr: Expr, domains: Dict[str, Tuple]) -> List[str]:
    """Comparisons whose RHS literal lies outside the LHS domain."""
    problems = []
    for node in _walk_expr(expr):
        if not isinstance(node, Compare) or node.right_is_var:
            continue
        domain = domains.get(node.left)
        if domain is None:
            continue  # undefined atom: PCL011's business
        if node.right not in domain:
            problems.append(
                f"{node.left} {node.op} {node.right!r} can never hold: "
                f"{node.right!r} is outside the declared domain "
                f"{tuple(domain)!r}")
    return problems


_TEMPORAL_TOKEN = re.compile(r"(?<![\w.])[GFXUR](?![\w.])")


def _antecedents(text: str) -> List[str]:
    """The textual left operand of each ``->`` in ``text``.

    The scan walks back from each ``->`` to the opening parenthesis of
    its group (or the start of the formula), so the slice is always
    parenthesis-balanced.  Antecedents containing temporal operators are
    dropped — satisfiability is only decidable here for propositional
    antecedents, which is all the catalog uses.
    """
    spans: List[str] = []
    index = 0
    while True:
        index = text.find("->", index)
        if index < 0:
            break
        if index > 0 and text[index - 1] == "<":   # part of "<->"
            index += 2
            continue
        depth = 0
        start = 0
        for position in range(index - 1, -1, -1):
            char = text[position]
            if char == ")":
                depth += 1
            elif char == "(":
                if depth == 0:
                    start = position + 1
                    break
                depth -= 1
        candidate = text[start:index].strip()
        if candidate and not _TEMPORAL_TOKEN.search(candidate):
            spans.append(candidate)
        index += 2
    return spans


def _try_parse(text: str, domains: Dict[str, Tuple]) -> Optional[Expr]:
    """Parse a propositional slice, or ``None`` if it does not stand
    alone (PCL010/PCL011 report real parse problems on the full
    formula)."""
    try:
        return parse_expr(text, domains)
    except ExprError:
        return None


def _satisfiable(expr: Expr, domains: Dict[str, Tuple]) -> Optional[bool]:
    """Brute-force satisfiability over the declared domains.

    Returns ``None`` when undecidable here: unknown variables (PCL011
    already fires) or a state space above :data:`SAT_ENUMERATION_CAP`.
    """
    names = sorted(expr.variables())
    sizes = 1
    for name in names:
        if name not in domains:
            return None
        sizes *= len(domains[name])
        if sizes > SAT_ENUMERATION_CAP:
            return None
    for values in itertools.product(*(domains[name] for name in names)):
        state = dict(zip(names, values))
        try:
            if expr.evaluate(state):
                return True
        except ExprError:
            return None
    return False


def _lint_formula(prop: Property, vocabulary_name: str,
                  vocabulary: Dict[str, str],
                  origin: str) -> List[Finding]:
    location = f"{origin}::{prop.identifier}"
    findings: List[Finding] = []
    try:
        text = prop.formula_for(vocabulary)
    except (KeyError, ValueError) as exc:
        return [Finding(
            "PCL010", location,
            f"formula template does not instantiate under the "
            f"{vocabulary_name} vocabulary: {exc}")]

    domains = _domains_for(prop, vocabulary_name)
    try:
        formula = parse_ltl(text, domains)
    except (LTLError, ExprError) as exc:
        return [Finding(
            "PCL010", location,
            f"formula does not parse under the {vocabulary_name} "
            f"vocabulary: {exc}")]

    for atom_expr in sorted(formula.atoms(), key=str):
        unknown = sorted(atom_expr.variables() - set(domains))
        for name in unknown:
            findings.append(Finding(
                "PCL011", location,
                f"atom {atom_expr} references undefined variable "
                f"{name!r} ({vocabulary_name} vocabulary)"))
        for problem in _enum_typos(atom_expr, domains):
            findings.append(Finding(
                "PCL012", location,
                f"{problem} ({vocabulary_name} vocabulary)"))

    # Vacuity only makes sense once the formula binds cleanly.
    if not findings:
        for antecedent_text in _antecedents(text):
            antecedent = _try_parse(antecedent_text, domains)
            if antecedent is None:
                continue
            if _satisfiable(antecedent, domains) is False:
                findings.append(Finding(
                    "PCL014", location,
                    f"antecedent {antecedent_text!r} is unsatisfiable "
                    f"over the declared domains ({vocabulary_name} "
                    f"vocabulary): the implication is vacuously true"))
    return findings


def _lint_threat(prop: Property, origin: str) -> List[Finding]:
    location = f"{origin}::{prop.identifier}"
    findings: List[Finding] = []
    known_internal = set(INTERNAL_TRIGGERS.values())
    checks = (
        ("replay_dl", prop.threat.replay_dl, set(c.DOWNLINK_MESSAGES)),
        ("inject_dl", prop.threat.inject_dl, set(c.DOWNLINK_MESSAGES)),
        ("inject_ul", prop.threat.inject_ul, set(c.UPLINK_MESSAGES)),
        ("internal_triggers", prop.threat.internal_triggers,
         known_internal),
    )
    for key, values, universe in checks:
        for value in values:
            if value not in universe:
                findings.append(Finding(
                    "PCL015", location,
                    f"threat config {key} names {value!r}, which is not "
                    f"a known {'internal trigger' if key == 'internal_triggers' else 'message'}"))
    return findings


def _testbed_registry() -> Dict[str, object]:
    # Imported lazily: the testbed package registers its attack scripts
    # at import time and spec lint should not pay for that unless a
    # testbed property actually needs resolving.
    from ..testbed import registry
    return registry()


def _lint_duplicates(properties: Sequence[Property],
                     origin: str) -> List[Finding]:
    from ..core.cegar import threat_config_key

    def _normalized(prop: Property) -> Optional[str]:
        # normalised_key digests the alpha-renamed operator shape *and*
        # the concrete atom spellings, so two properties collide exactly
        # when they ask the same question of the same variables —
        # alpha-shape alone would flag e.g. SEC formulas over different
        # counters as duplicates.
        try:
            text = prop.formula_for(EXTRACTED_VOCAB)
            return normalised_key(
                parse_ltl(text, _domains_for(prop, "extracted")))
        except (KeyError, ValueError, LTLError, ExprError):
            return None  # PCL010 already fires for this property

    findings: List[Finding] = []
    seen: Dict[Tuple, str] = {}
    for prop in properties:
        if prop.kind != KIND_LTL:
            continue
        normalized = _normalized(prop)
        if normalized is None:
            continue
        key = (normalized, threat_config_key(prop.threat))
        if key in seen:
            findings.append(Finding(
                "PCL013", f"{origin}::{prop.identifier}",
                f"property duplicates {seen[key]}: identical normalized "
                f"formula and threat configuration"))
        else:
            seen[key] = prop.identifier
    return findings


def lint_catalog(properties: Optional[Sequence[Property]] = None,
                 origin: str = "repro.properties.catalog"
                 ) -> List[Finding]:
    """Run the full spec-lint family over ``properties``."""
    if properties is None:
        from ..properties import ALL_PROPERTIES
        properties = ALL_PROPERTIES

    findings: List[Finding] = []
    registry: Optional[Dict[str, object]] = None
    for prop in properties:
        if prop.kind == KIND_LTL:
            for vocabulary_name, vocabulary in _VOCABULARIES:
                findings.extend(_lint_formula(prop, vocabulary_name,
                                              vocabulary, origin))
            findings.extend(_lint_threat(prop, origin))
        elif prop.kind == KIND_TESTBED:
            if registry is None:
                registry = _testbed_registry()
            if prop.testbed_attack not in registry:
                findings.append(Finding(
                    "PCL016", f"{origin}::{prop.identifier}",
                    f"testbed experiment {prop.testbed_attack!r} is not "
                    f"implemented by any registered attack"))
    findings.extend(_lint_duplicates(properties, origin))
    return findings
