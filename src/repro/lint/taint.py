"""Identity/key-material taint analysis (PCL04x): the dataflow leg.

The spec family checks what the properties *say*, the cross-check family
checks what the implementations *do* control-flow-wise; this module
checks where the privacy-relevant *data* goes.  It is an
interprocedural, AST-level taint engine over the NAS implementation
source (:mod:`repro.lte.ue`, :mod:`repro.lte.mme`, :mod:`repro.lte.hss`
and the ``implementations/*`` personas), in the spirit of
Aizatulin-style model extraction from implementation code:

- a **source catalog** labels the privacy-bearing values: the IMSI and
  permanent key on the :class:`~repro.lte.identifiers.Subscriber`, the
  pending/established K_ASME and NAS keys, SQN material from the USIM
  array and HSS vectors, and the current GUTI;
- a **sink catalog** covers plaintext NAS frame fields
  (``self._send(name, fields, protected=False)``), log/evidence strings
  (``self._note``, ``print``, the logging verbs) and the
  identity-retention pattern (a seeded policy branch that skips the
  mandated deletion of the security context and identifiers);
- a **sanitizer catalog** recognises the integrity/ciphering and
  key-derivation primitives (``f1_mac``/``f2_res``/``nas_mac``/
  ``nas_cipher``), hashing, :func:`repro.lte.identifiers.redact`, and
  GUTI allocation (``allocate`` consumes an IMSI, emits a temporary
  identity).

Per-method summaries are computed over assignments, calls,
message-field construction (dict literals plus incremental
``fields["k"] = v`` writes) and returns; self-call summaries are
instantiated at call sites with symbolic ``@arg:`` labels substituted,
so a dict built in ``power_on`` and transmitted from the nested T3410
retransmission closure still resolves to per-field flows.

Severity resolution per implementation mirrors the PCL02x contract:

- a flow guarded by a *seeded deviant* policy flag is expected Table I
  behaviour → PCL043 (info), naming the flag and the attack id;
- standards-sanctioned flows (IMSI in the initial ``attach_request``,
  the pre-context ``identity_response``, the paging fallback, SQN in
  the authentication exchange) are clean;
- anything else gates: PCL040/PCL041 (errors) and PCL042 (warning).

Finally, :func:`cross_examine` compares the static verdicts against the
paper's dynamic detection matrix
(:data:`repro.properties.expected.NEW_ATTACKS`) and the PCL022
extracted-FSM deviations: a statically visible leak the dynamic side
marks undetected — or a dynamically detected privacy deviation with no
static flow — surfaces as a PCL045 blind-spot warning.
"""

from __future__ import annotations

import ast
import inspect
from dataclasses import dataclass, field
from typing import (Dict, FrozenSet, List, Mapping, Optional, Sequence,
                    Set, Tuple, Union)

from ..lte import hss as hss_module
from ..lte import identifiers as identifiers_module
from ..lte import mme as mme_module
from ..lte import ue as ue_module
from ..lte.implementations import REGISTRY
from .findings import Finding, LintError
from .staticfsm import _class_node, _deviant_flags, _MethodFacts

# ---------------------------------------------------------------------------
# Label vocabulary
# ---------------------------------------------------------------------------
LABEL_IMSI = "imsi"
LABEL_GUTI = "guti"
LABEL_PERMANENT_KEY = "permanent_key"
LABEL_KASME = "kasme"
LABEL_NAS_KEY = "nas_key"
LABEL_SQN = "sqn"

#: labels that are secret key material (never on wire or in logs)
KEY_LABELS = frozenset({LABEL_PERMANENT_KEY, LABEL_KASME, LABEL_NAS_KEY})
#: labels that identify the subscriber permanently
IDENTITY_LABELS = frozenset({LABEL_IMSI})

_ARG_PREFIX = "@arg:"

# ---------------------------------------------------------------------------
# Source catalog: dotted attribute paths on ``self`` → labels
# ---------------------------------------------------------------------------
SELF_ATTR_SOURCES: Dict[str, FrozenSet[str]] = {
    "subscriber.imsi": frozenset({LABEL_IMSI}),
    "subscriber.permanent_key": frozenset({LABEL_PERMANENT_KEY}),
    "pending_kasme": frozenset({LABEL_KASME}),
    "current_guti": frozenset({LABEL_GUTI}),
    "session_imsi": frozenset({LABEL_IMSI}),
    "security_ctx.kasme": frozenset({LABEL_KASME}),
    "security_ctx.k_nas_int": frozenset({LABEL_NAS_KEY}),
    "security_ctx.k_nas_enc": frozenset({LABEL_NAS_KEY}),
    "pending_vector.kasme": frozenset({LABEL_KASME}),
    "pending_vector.autn_sqn": frozenset({LABEL_SQN}),
    "usim.slots": frozenset({LABEL_SQN}),
}

#: method calls whose *result* carries labels, keyed by the called
#: attribute name; a per-key map describes attribute-sensitive results
#: (``vector.kasme`` is key material, ``vector.rand`` is public).
CALL_RESULT_SOURCES: Dict[str, "TaintVal"] = {}

#: function/method names whose result is clean regardless of arguments
#: (one-way derivations and protection primitives), or re-labelled.
SANITIZERS: Dict[str, FrozenSet[str]] = {
    "f1_mac": frozenset(),
    "f2_res": frozenset(),
    "nas_mac": frozenset(),
    "nas_cipher": frozenset(),
    "redact": frozenset(),
    "sha256": frozenset(),
    "hexdigest": frozenset(),
    "digest": frozenset(),
    "derive_kasme": frozenset({LABEL_KASME}),
    "derive_nas_keys": frozenset({LABEL_NAS_KEY}),
    "generate_auth_vector": frozenset(),   # per-key map below
    "allocate": frozenset({LABEL_GUTI}),
    "Guti": frozenset({LABEL_GUTI}),
    "Sqn": frozenset({LABEL_SQN}),
}

# ---------------------------------------------------------------------------
# Sink catalog
# ---------------------------------------------------------------------------
SINK_WIRE = "wire"
SINK_LOG = "log"
SINK_RETENTION = "retention"

#: self-method names that transmit a NAS message: (message_arg, fields_arg)
_WIRE_SINKS = {"_send": (0, 1), "_send_impl": (0, 1), "_transmit": (0, 1)}
#: self-method names that record to the event log: (kind_arg, detail_arg)
_LOG_SINKS = {"_note": (0, 1)}
#: bare-name / logging-verb calls that are log sinks (every positional
#: argument is inspected)
_LOG_CALL_NAMES = {"print"}
_LOG_VERBS = {"debug", "info", "warning", "warn", "error", "exception",
              "critical", "log"}

#: ``self.X`` attributes whose conditional non-deletion is the identity
#: retention pattern (I4: context and identifiers survive a reject)
RETENTION_ATTRS: Dict[str, FrozenSet[str]] = {
    "security_ctx": frozenset({LABEL_KASME, LABEL_NAS_KEY}),
    "pending_kasme": frozenset({LABEL_KASME}),
    "current_guti": frozenset({LABEL_GUTI}),
    "guti_assigned": frozenset(),
    "has_security_ctx": frozenset(),
}

# ---------------------------------------------------------------------------
# Sanctioned standards flows: (message, field) pairs where identity/SQN
# material on a plaintext frame is mandated behaviour (TS 24.301/33.102)
# ---------------------------------------------------------------------------
SANCTIONED_WIRE_FLOWS: FrozenSet[Tuple[str, str]] = frozenset({
    ("attach_request", "imsi"),        # initial attach without a GUTI
    ("attach_request", "guti"),
    ("identity_response", "imsi"),     # pre-context identification
    ("identity_response", "guti"),
    ("paging", "paging_id"),           # IMSI-paging fallback
    ("authentication_request", "sqn_seq"),
    ("authentication_request", "sqn_ind"),
    ("auth_sync_failure", "resync_seq"),
})

#: labels the sanctioned-contract table may excuse (never key material)
_SANCTIONABLE = frozenset({LABEL_IMSI, LABEL_GUTI, LABEL_SQN})

# ---------------------------------------------------------------------------
# Policy flag ↔ Table I attack mapping (the cross-examination contract)
# ---------------------------------------------------------------------------
FLAG_TO_ATTACK: Dict[str, str] = {
    "respond_identity_always": "I5",
    "accept_equal_sqn": "I3",
    "require_auth_after_reject": "I4",
    "enforce_dl_count": "I1",
    "replay_accept_last_only": "I1",
    "accept_plain_after_ctx": "I2",
}

#: flags whose deviation manifests as an identity/key *dataflow* — the
#: subset the taint pass can re-find.  I1/I2 are pure control-flow
#: (replay/plain-header acceptance) and belong to the PCL02x family.
TAINT_VISIBLE_FLAGS: FrozenSet[str] = frozenset({
    "respond_identity_always",
    "accept_equal_sqn",
    "require_auth_after_reject",
})


# ---------------------------------------------------------------------------
# Taint values
# ---------------------------------------------------------------------------
class TaintVal:
    """A label set for a value, optionally with per-key sub-labels.

    ``labels`` taints the whole value; ``keys`` refines dicts and
    attribute-sensitive objects (an ``AuthVector`` is clean as a whole,
    but its ``kasme`` attribute is key material).
    """

    __slots__ = ("labels", "keys")

    def __init__(self, labels: FrozenSet[str] = frozenset(),
                 keys: Optional[Mapping[str, FrozenSet[str]]] = None):
        self.labels = frozenset(labels)
        self.keys: Dict[str, FrozenSet[str]] = dict(keys or {})

    @classmethod
    def clean(cls) -> "TaintVal":
        return cls()

    def is_clean(self) -> bool:
        return not self.labels and not any(self.keys.values())

    def all_labels(self) -> FrozenSet[str]:
        merged = set(self.labels)
        for labels in self.keys.values():
            merged |= labels
        return frozenset(merged)

    def key(self, name: str) -> "TaintVal":
        """Taint of one key/attribute of this value."""
        if name in self.keys:
            return TaintVal(self.keys[name] | self.labels)
        return TaintVal(self.labels)

    def union(self, other: "TaintVal") -> "TaintVal":
        keys = dict(self.keys)
        for name, labels in other.keys.items():
            keys[name] = keys.get(name, frozenset()) | labels
        return TaintVal(self.labels | other.labels, keys)


CALL_RESULT_SOURCES["get_auth_vector"] = TaintVal(keys={
    "kasme": frozenset({LABEL_KASME}),
    "autn_sqn": frozenset({LABEL_SQN}),
})
CALL_RESULT_SOURCES["generate_auth_vector"] = \
    CALL_RESULT_SOURCES["get_auth_vector"]
CALL_RESULT_SOURCES["peek"] = TaintVal(keys={
    "resync_seq": frozenset({LABEL_SQN}),
})
CALL_RESULT_SOURCES["permanent_key"] = TaintVal(
    frozenset({LABEL_PERMANENT_KEY}))


# ---------------------------------------------------------------------------
# Flows
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TaintFlow:
    """One source→sink dataflow fact, fully concrete after instantiation."""

    sink: str                 # SINK_WIRE | SINK_LOG | SINK_RETENTION
    message: str              # NAS message / log kind / method anchor
    field: str                # frame field, "detail", or retained attrs
    labels: FrozenSet[str]
    protected: bool           # wire sinks: integrity-protected frame?
    module: str
    class_name: str
    method: str               # the root (entry-point) method
    line: int
    flags: FrozenSet[str]     # policy flags read along the call chain

    @property
    def location(self) -> str:
        return f"{self.module}::{self.class_name}.{self.method}"

    def describe(self) -> str:
        route = (f"{self.sink}[{self.message}.{self.field}]"
                 if self.sink != SINK_RETENTION
                 else f"retention[{self.field}]")
        shield = ("" if self.sink != SINK_WIRE
                  else " (protected)" if self.protected else " (plaintext)")
        return f"{'/'.join(sorted(self.labels))} -> {route}{shield}"


@dataclass
class TaintModel:
    """The taint-analysis result for one implementation class."""

    implementation: str
    class_name: str
    flows: List[TaintFlow] = field(default_factory=list)
    deviant_flags: Tuple[str, ...] = ()


# Summary-level (possibly symbolic) records -------------------------------
@dataclass(frozen=True)
class _SummaryFlow:
    sink: str
    # message: resolved string, or ("@arg", name) for a parameter
    message: Union[str, Tuple[str, str]]
    # field: concrete key, ("@argdict", name) for a whole dict parameter,
    # or "*" for an unresolvable fields expression
    field: Union[str, Tuple[str, str]]
    labels: FrozenSet[str]            # may contain "@arg:NAME"
    protected: Union[bool, Tuple[str, str]]
    line: int
    keyed: Tuple[Tuple[str, FrozenSet[str]], ...] = ()


@dataclass
class _MethodSummary:
    name: str
    line: int
    flows: List[_SummaryFlow] = field(default_factory=list)
    #: self-calls: (callee, per-param TaintVal binding)
    calls: List[Tuple[str, Dict[str, TaintVal]]] = field(
        default_factory=list)
    returns: TaintVal = field(default_factory=TaintVal)
    policy_flags: FrozenSet[str] = frozenset()


def _attr_path(node: ast.AST) -> Optional[List[str]]:
    """``self.a.b.c`` → ["a", "b", "c"]; None when not rooted at a Name."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


class _MethodAnalyzer:
    """Single-method abstract interpreter producing a summary."""

    def __init__(self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
                 method_names: Set[str]):
        self.node = node
        self.method_names = method_names
        self.env: Dict[str, TaintVal] = {}
        self.summary = _MethodSummary(name=node.name, line=node.lineno)
        policy_flags: Set[str] = set()
        self._policy_flags = policy_flags
        self._param_defaults: Dict[str, ast.expr] = {}
        args = node.args
        params = [a.arg for a in args.posonlyargs + args.args
                  if a.arg != "self"]
        for arg, default in zip(
                params[len(params) - len(args.defaults):]
                if args.defaults else [], args.defaults):
            self._param_defaults[arg] = default
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                self._param_defaults[arg.arg] = default
        self.params = params + [a.arg for a in args.kwonlyargs]
        for name in self.params:
            self.env[name] = TaintVal(frozenset({_ARG_PREFIX + name}))

    # -- expression evaluation ------------------------------------------
    def eval(self, node: Optional[ast.expr]) -> TaintVal:
        if node is None:
            return TaintVal.clean()
        if isinstance(node, ast.Name):
            return self.env.get(node.id, TaintVal.clean())
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Dict):
            keys: Dict[str, FrozenSet[str]] = {}
            whole: Set[str] = set()
            for key, value in zip(node.keys, node.values):
                labels = self.eval(value).all_labels()
                if (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)):
                    keys[key.value] = keys.get(key.value,
                                               frozenset()) | labels
                else:
                    whole |= labels
            return TaintVal(frozenset(whole), keys)
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value)
            index = node.slice
            if (isinstance(index, ast.Constant)
                    and isinstance(index.value, str)):
                return base.key(index.value)
            return TaintVal(base.all_labels())
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            merged = TaintVal.clean()
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    merged = merged.union(TaintVal(
                        self.eval(child).all_labels()))
            return merged
        if isinstance(node, (ast.BinOp, ast.BoolOp, ast.IfExp,
                             ast.Tuple, ast.List, ast.Set, ast.Starred,
                             ast.Await, ast.NamedExpr)):
            merged = TaintVal.clean()
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    merged = merged.union(self.eval(child))
            return TaintVal(merged.all_labels())
        # Compare / Constant / comprehension / lambda: booleans and
        # literals carry no identity; comprehensions are out of scope.
        return TaintVal.clean()

    def _eval_attribute(self, node: ast.Attribute) -> TaintVal:
        path = _attr_path(node)
        if path and path[0] == "self":
            dotted = ".".join(path[1:])
            if dotted in SELF_ATTR_SOURCES:
                return TaintVal(SELF_ATTR_SOURCES[dotted])
            # a strict prefix of catalogued sources: expose them as keys
            prefix = dotted + "."
            keys = {source[len(prefix):]: labels
                    for source, labels in SELF_ATTR_SOURCES.items()
                    if source.startswith(prefix)
                    and "." not in source[len(prefix):]}
            if keys:
                return TaintVal(keys=keys)
            if path[1:2] == ["policy"] and len(path) == 3:
                self._policy_flags.add(path[2])
            return TaintVal.clean()
        return self.eval(node.value).key(node.attr)

    def _eval_call(self, node: ast.Call) -> TaintVal:
        name = _call_name(node)
        arg_taints = [self.eval(arg) for arg in node.args]
        arg_taints += [self.eval(kw.value) for kw in node.keywords]
        if name is not None and name in SANITIZERS:
            return TaintVal(SANITIZERS[name])
        if name is not None and name in CALL_RESULT_SOURCES:
            result = CALL_RESULT_SOURCES[name]
            return TaintVal(result.labels, result.keys)
        # self-method call: record for interprocedural instantiation
        if (name is not None
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
                and name in self.method_names):
            self.summary.calls.append(
                (name, self._bind_call_args(name, node)))
            return TaintVal.clean()
        # default: propagate the union of argument taints (str(), dict(),
        # max(), helper functions like _imsi_from_string)
        merged = TaintVal.clean()
        for taint in arg_taints:
            merged = merged.union(taint)
        return TaintVal(merged.all_labels())

    def _bind_call_args(self, callee: str,
                        node: ast.Call) -> Dict[str, TaintVal]:
        """Evaluate call arguments into a per-value binding.

        Parameter names are resolved later (against the callee summary);
        here positional args are recorded as ``@pos:N``.
        """
        binding: Dict[str, TaintVal] = {}
        for index, arg in enumerate(node.args):
            binding[f"@pos:{index}"] = self.eval(arg)
        for keyword in node.keywords:
            if keyword.arg is not None:
                binding[keyword.arg] = self.eval(keyword.value)
        return binding

    # -- statement interpretation ---------------------------------------
    def run(self) -> _MethodSummary:
        self._exec_body(self.node.body)
        self.summary.policy_flags = frozenset(self._policy_flags)
        return self.summary

    def _exec_body(self, body: Sequence[ast.stmt]) -> None:
        for statement in body:
            self._exec(statement)

    def _exec(self, statement: ast.stmt) -> None:
        if isinstance(statement, ast.Assign):
            value = self.eval(statement.value)
            for target in statement.targets:
                self._assign(target, value)
        elif isinstance(statement, ast.AnnAssign):
            if statement.value is not None:
                self._assign(statement.target, self.eval(statement.value))
        elif isinstance(statement, ast.AugAssign):
            addition = self.eval(statement.value)
            if isinstance(statement.target, ast.Name):
                current = self.env.get(statement.target.id,
                                       TaintVal.clean())
                self.env[statement.target.id] = current.union(addition)
        elif isinstance(statement, ast.Expr):
            if isinstance(statement.value, ast.Call):
                self._exec_call_stmt(statement.value)
            else:
                self.eval(statement.value)
        elif isinstance(statement, ast.Return):
            self.summary.returns = self.summary.returns.union(
                self.eval(statement.value))
        elif isinstance(statement, ast.If):
            self._exec_if(statement)
        elif isinstance(statement, (ast.For, ast.While)):
            if isinstance(statement, ast.For):
                iter_taint = TaintVal(self.eval(statement.iter)
                                      .all_labels())
                self._assign(statement.target, iter_taint)
            else:
                self.eval(statement.test)
            self._exec_body(statement.body)
            self._exec_body(statement.orelse)
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            self._exec_body(statement.body)
        elif isinstance(statement, ast.Try):
            self._exec_body(statement.body)
            for handler in statement.handlers:
                self._exec_body(handler.body)
            self._exec_body(statement.orelse)
            self._exec_body(statement.finalbody)
        elif isinstance(statement, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
            # Nested closures (timer-expiry callbacks) capture the
            # enclosing frame: interpret the body in the current env.
            self._exec_body(statement.body)

    def _assign(self, target: ast.expr, value: TaintVal) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, ast.Subscript):
            base = target.value
            index = target.slice
            if (isinstance(base, ast.Name)
                    and isinstance(index, ast.Constant)
                    and isinstance(index.value, str)):
                current = self.env.get(base.id, TaintVal.clean())
                keys = dict(current.keys)
                keys[index.value] = value.all_labels()
                self.env[base.id] = TaintVal(current.labels, keys)
        elif isinstance(target, (ast.Tuple, ast.List)):
            spread = TaintVal(value.all_labels())
            for element in target.elts:
                self._assign(element, spread)
        # self.X = ... : sources are catalogued declaratively; no update

    def _exec_if(self, statement: ast.If) -> None:
        self.eval(statement.test)
        self._check_retention(statement)
        self._exec_body(statement.body)
        self._exec_body(statement.orelse)

    def _check_retention(self, statement: ast.If) -> None:
        """``if self.policy.FLAG:`` guarding identifier deletion (I4)."""
        path = _attr_path(statement.test)
        if not (path and path[:2] == ["self", "policy"] and len(path) == 3):
            return
        flag = path[2]
        cleared: List[str] = []
        labels: Set[str] = set()
        for inner in statement.body:
            if not isinstance(inner, ast.Assign):
                continue
            for target in inner.targets:
                target_path = _attr_path(target)
                if (target_path and len(target_path) == 2
                        and target_path[0] == "self"
                        and target_path[1] in RETENTION_ATTRS
                        and isinstance(inner.value, ast.Constant)
                        and inner.value.value in (None, 0)):
                    cleared.append(target_path[1])
                    labels |= RETENTION_ATTRS[target_path[1]]
        if len(cleared) >= 2:
            self.summary.flows.append(_SummaryFlow(
                sink=SINK_RETENTION, message=self.node.name,
                field=",".join(sorted(set(cleared))),
                labels=frozenset(labels | {LABEL_IMSI}),
                protected=False, line=statement.lineno))
            self._policy_flags.add(flag)

    def _exec_call_stmt(self, node: ast.Call) -> None:
        name = _call_name(node)
        if (name is not None and name in _WIRE_SINKS
                and self._is_self_call(node)):
            self._record_wire(node, name)
            return
        if (name is not None and name in _LOG_SINKS
                and self._is_self_call(node)):
            kind_arg, detail_arg = _LOG_SINKS[name]
            kind = _MethodFacts._constant_values(
                node.args[kind_arg]) if len(node.args) > kind_arg else []
            detail = (self.eval(node.args[detail_arg])
                      if len(node.args) > detail_arg else TaintVal.clean())
            self._record_log(kind[0] if kind else "*", detail, node.lineno)
            return
        if (name in _LOG_CALL_NAMES
                or (isinstance(node.func, ast.Attribute)
                    and node.func.attr in _LOG_VERBS
                    and not self._is_self_call(node))):
            merged = TaintVal.clean()
            for arg in node.args:
                merged = merged.union(self.eval(arg))
            self._record_log(name or "*", merged, node.lineno)
            return
        self.eval(node)

    @staticmethod
    def _is_self_call(node: ast.Call) -> bool:
        return (isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self")

    def _record_log(self, kind: str, detail: TaintVal,
                    line: int) -> None:
        labels = detail.all_labels()
        if labels:
            self.summary.flows.append(_SummaryFlow(
                sink=SINK_LOG, message=kind, field="detail",
                labels=labels, protected=False, line=line))

    def _record_wire(self, node: ast.Call, sink_name: str) -> None:
        message_arg, fields_arg = _WIRE_SINKS[sink_name]
        message: Union[str, Tuple[str, str]] = "*"
        if len(node.args) > message_arg:
            message_node = node.args[message_arg]
            constants = _MethodFacts._constant_values(message_node)
            if constants:
                message = constants[0]
            elif isinstance(message_node, ast.Name):
                message = ("@arg", message_node.id)
        protected = self._resolve_protected(node)
        fields_node = (node.args[fields_arg]
                       if len(node.args) > fields_arg else None)
        if fields_node is None:
            return
        if isinstance(fields_node, ast.Name) \
                and fields_node.id in self.params:
            # a whole parameter dict flows to the frame: defer per-field
            # resolution to instantiation
            self.summary.flows.append(_SummaryFlow(
                sink=SINK_WIRE, message=message,
                field=("@argdict", fields_node.id),
                labels=frozenset(), protected=protected,
                line=node.lineno))
            return
        fields = self.eval(fields_node)
        for key in sorted(fields.keys):
            labels = fields.key(key).all_labels()
            if labels:
                self.summary.flows.append(_SummaryFlow(
                    sink=SINK_WIRE, message=message, field=key,
                    labels=labels, protected=protected,
                    line=node.lineno))
        if fields.labels:
            self.summary.flows.append(_SummaryFlow(
                sink=SINK_WIRE, message=message, field="*",
                labels=fields.labels, protected=protected,
                line=node.lineno))

    def _resolve_protected(self, node: ast.Call
                           ) -> Union[bool, Tuple[str, str]]:
        candidates: List[ast.expr] = []
        if len(node.args) > 2:
            candidates.append(node.args[2])
        for keyword in node.keywords:
            if keyword.arg in ("protected", "ciphered"):
                candidates.append(keyword.value)
        verdict: Union[bool, Tuple[str, str]] = False
        for candidate in candidates:
            if isinstance(candidate, ast.Constant):
                if bool(candidate.value):
                    return True
            elif (isinstance(candidate, ast.Name)
                  and candidate.id in self.params):
                verdict = ("@arg", candidate.id)
            elif isinstance(candidate, ast.UnaryOp):
                continue   # `protected=not preauth_plain`: conservative
        return verdict


# ---------------------------------------------------------------------------
# Class-level analysis: summaries + interprocedural instantiation
# ---------------------------------------------------------------------------
def _method_nodes(module, class_name: str
                  ) -> Dict[str, Union[ast.FunctionDef,
                                       ast.AsyncFunctionDef]]:
    class_node = _class_node(module, class_name)
    return {node.name: node for node in class_node.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))}


class _ClassTaint:
    """Summaries for one class, with interprocedural flow instantiation."""

    def __init__(self, module, class_name: str,
                 base_module=None, base_class: Optional[str] = None):
        self.module_name = module.__name__
        self.class_name = class_name
        nodes: Dict[str, Union[ast.FunctionDef, ast.AsyncFunctionDef]] = {}
        if base_module is not None and base_class is not None:
            nodes.update(_method_nodes(base_module, base_class))
        overrides = _method_nodes(module, class_name)
        nodes.update(overrides)
        self.nodes = nodes
        self.summaries: Dict[str, _MethodSummary] = {}
        self.params: Dict[str, List[str]] = {}
        method_names = set(nodes)
        for name, node in nodes.items():
            analyzer = _MethodAnalyzer(node, method_names)
            self.summaries[name] = analyzer.run()
            self.params[name] = analyzer.params
        self.called: Set[str] = set()
        for summary in self.summaries.values():
            for callee, _ in summary.calls:
                self.called.add(callee)

    # -- transitive policy flags (staticfsm-style closure) --------------
    def _transitive_flags(self, method: str) -> FrozenSet[str]:
        merged: Set[str] = set()
        frontier = [method]
        seen: Set[str] = set()
        while frontier:
            name = frontier.pop()
            if name in seen or name not in self.summaries:
                continue
            seen.add(name)
            summary = self.summaries[name]
            merged |= summary.policy_flags
            frontier.extend(callee for callee, _ in summary.calls)
        return frozenset(merged)

    def roots(self) -> List[str]:
        """Entry points: methods no other method statically calls.

        Handlers are dispatched through synthesised wrappers and public
        procedures are driven externally, so both surface here.
        """
        skip = set(_WIRE_SINKS) | {"__init__"}
        return sorted(name for name in self.summaries
                      if name not in self.called and name not in skip)

    def flows(self) -> List[TaintFlow]:
        collected: Dict[Tuple, TaintFlow] = {}
        for root in self.roots():
            flags = self._transitive_flags(root)
            binding = {param: TaintVal.clean()
                       for param in self.params.get(root, [])}
            for flow in self._instantiate(root, binding, ()):
                key = (flow.sink, flow.message, flow.field, flow.labels,
                       flow.protected, flow.line)
                previous = collected.get(key)
                merged_flags = flags | flow.flags
                if previous is not None:
                    merged_flags |= previous.flags
                collected[key] = TaintFlow(
                    sink=flow.sink, message=flow.message,
                    field=flow.field, labels=flow.labels,
                    protected=flow.protected, module=self.module_name,
                    class_name=self.class_name, method=root,
                    line=flow.line, flags=merged_flags)
        return sorted(collected.values(),
                      key=lambda f: (f.method, f.line, f.sink,
                                     f.message, f.field,
                                     tuple(sorted(f.labels))))

    def _instantiate(self, method: str, binding: Dict[str, TaintVal],
                     stack: Tuple[str, ...]) -> List[TaintFlow]:
        if method in stack or method not in self.summaries:
            return []
        summary = self.summaries[method]
        results: List[TaintFlow] = []
        for flow in summary.flows:
            results.extend(self._concretize(method, flow, binding))
        for callee, call_binding in summary.calls:
            callee_summary = self.summaries.get(callee)
            if callee_summary is None:
                continue
            resolved: Dict[str, TaintVal] = {}
            callee_params = self.params.get(callee, [])
            for key, value in call_binding.items():
                substituted = self._substitute(value, binding)
                if key.startswith("@pos:"):
                    index = int(key[len("@pos:"):])
                    if index < len(callee_params):
                        resolved[callee_params[index]] = substituted
                else:
                    resolved[key] = substituted
            for param in callee_params:
                if param not in resolved:
                    default = self._default_binding(callee, param)
                    resolved[param] = default
            results.extend(self._instantiate(
                callee, resolved, stack + (method,)))
        return results

    def _default_binding(self, method: str, param: str) -> TaintVal:
        node = self.nodes.get(method)
        if node is None:
            return TaintVal.clean()
        args = node.args
        params = [a.arg for a in args.posonlyargs + args.args
                  if a.arg != "self"]
        offset = len(params) - len(args.defaults)
        for index, name in enumerate(params):
            if name == param and index >= offset:
                default = args.defaults[index - offset]
                constants = _MethodFacts._constant_values(default)
                if constants:
                    return TaintVal(frozenset({"@const:" + constants[0]}))
                if isinstance(default, ast.Constant):
                    return TaintVal(
                        frozenset({"@const-bool:%d"
                                   % bool(default.value)}))
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if arg.arg == param and default is not None:
                constants = _MethodFacts._constant_values(default)
                if constants:
                    return TaintVal(frozenset({"@const:" + constants[0]}))
        return TaintVal.clean()

    @staticmethod
    def _substitute(value: TaintVal,
                    binding: Dict[str, TaintVal]) -> TaintVal:
        concrete: Set[str] = set()
        keys: Dict[str, FrozenSet[str]] = dict(value.keys)
        for label in value.labels:
            if label.startswith(_ARG_PREFIX):
                bound = binding.get(label[len(_ARG_PREFIX):])
                if bound is not None:
                    concrete |= bound.labels
                    for name, sub in bound.keys.items():
                        keys[name] = keys.get(name, frozenset()) | sub
            else:
                concrete.add(label)
        return TaintVal(frozenset(concrete), keys)

    def _concretize(self, method: str, flow: _SummaryFlow,
                    binding: Dict[str, TaintVal]) -> List[TaintFlow]:
        message = flow.message
        if isinstance(message, tuple):
            bound = binding.get(message[1], TaintVal.clean())
            message = next(
                (label[len("@const:"):] for label in bound.labels
                 if label.startswith("@const:")), "*")
        protected = flow.protected
        if isinstance(protected, tuple):
            bound = binding.get(protected[1], TaintVal.clean())
            protected = "@const-bool:1" in bound.labels
        made: List[TaintFlow] = []

        def emit(field: str, labels: FrozenSet[str]) -> None:
            labels = frozenset(label for label in labels
                               if not label.startswith("@"))
            if labels:
                made.append(TaintFlow(
                    sink=flow.sink, message=str(message), field=field,
                    labels=labels, protected=bool(protected),
                    module=self.module_name, class_name=self.class_name,
                    method=method, line=flow.line, flags=frozenset()))

        if isinstance(flow.field, tuple):
            bound = binding.get(flow.field[1], TaintVal.clean())
            for key in sorted(bound.keys):
                emit(key, bound.key(key).all_labels())
            emit("*", bound.labels)
        else:
            labels = self._substitute(
                TaintVal(flow.labels), binding).all_labels()
            emit(flow.field, labels)
        return made


# ---------------------------------------------------------------------------
# Public analysis entry points
# ---------------------------------------------------------------------------
def taint_ue_model(implementation: str) -> TaintModel:
    """Taint flows for one registered UE implementation."""
    ue_class = REGISTRY[implementation]
    return taint_ue_class(ue_class, implementation=implementation)


def taint_ue_class(ue_class, implementation: Optional[str] = None,
                   deviant_flags: Optional[Sequence[str]] = None
                   ) -> TaintModel:
    """Taint flows for an arbitrary :class:`~repro.lte.ue.UeNas` subclass.

    Base-class handler bodies are merged with subclass-module overrides,
    exactly like the static FSM extraction; ``deviant_flags`` defaults
    to the flags the class's module sets away from the
    :class:`~repro.lte.ue.UePolicy` compliant defaults.
    """
    module = inspect.getmodule(ue_class)
    name = implementation or ue_class.__name__
    if deviant_flags is None:
        if implementation is not None and implementation in REGISTRY:
            deviant_flags = _deviant_flags(implementation)
        else:
            deviant_flags = _module_deviant_flags(module)
    if module is None or module is ue_module:
        analysis = _ClassTaint(ue_module, "UeNas")
    else:
        analysis = _ClassTaint(module, ue_class.__name__,
                               base_module=ue_module, base_class="UeNas")
    return TaintModel(
        implementation=name,
        class_name=ue_class.__name__,
        flows=analysis.flows(),
        deviant_flags=tuple(sorted(deviant_flags)),
    )


def _module_deviant_flags(module) -> Tuple[str, ...]:
    """Deviant UePolicy kwargs set anywhere in an external module."""
    from .staticfsm import _policy_defaults
    if module is None:
        return ()
    defaults = _policy_defaults()
    deviant: Set[str] = set()
    try:
        tree = ast.parse(inspect.getsource(module))
    except (OSError, TypeError):
        return ()
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "UePolicy"):
            continue
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            if not isinstance(keyword.value, ast.Constant):
                deviant.add(keyword.arg)
            elif defaults.get(keyword.arg) != keyword.value.value:
                deviant.add(keyword.arg)
    return tuple(sorted(deviant))


def taint_mme_flows() -> List[TaintFlow]:
    """Taint flows for the testbed MME (no policy layer → no PCL043)."""
    return _ClassTaint(mme_module, "MmeNas").flows()


def taint_hss_flows() -> List[TaintFlow]:
    """Taint flows for the HSS (subscriber database; no wire sinks)."""
    return _ClassTaint(hss_module, "Hss").flows()


# ---------------------------------------------------------------------------
# GUTI allocator contract (PCL044)
# ---------------------------------------------------------------------------
def allocator_findings(module=None) -> List[Finding]:
    """Check ``GutiAllocator.allocate``'s derivation preimage.

    The fixed contract: a preimage/key material may reference the IMSI
    only alongside allocator-secret salt (``self._secret``) — otherwise
    an observer who guesses the low-entropy counter can link M-TMSIs to
    subscribers offline.  ``module`` defaults to the real
    :mod:`repro.lte.identifiers`; tests pass broken variants.
    """
    if module is None:
        module = identifiers_module
    findings: List[Finding] = []
    class_node = _class_node(module, "GutiAllocator")
    location = f"{module.__name__}::GutiAllocator.allocate"
    for node in class_node.body:
        if not (isinstance(node, ast.FunctionDef)
                and node.name == "allocate"):
            continue
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            name = _call_name(call)
            if name not in ("sha256", "sha1", "md5", "new", "blake2b"):
                continue
            text = ast.unparse(call)
            if "imsi" in text and "_secret" not in text:
                findings.append(Finding(
                    "PCL044", location,
                    "GUTI derivation hashes the raw IMSI without "
                    "allocator-secret salt; an observer who guesses the "
                    "allocation counter can link M-TMSIs to subscribers "
                    "offline", line=call.lineno))
    return findings


# ---------------------------------------------------------------------------
# Severity resolution per implementation
# ---------------------------------------------------------------------------
def resolve_findings(flows: Sequence[TaintFlow],
                     deviant_flags: Sequence[str],
                     implementation: str) -> List[Finding]:
    """Map raw flows to PCL040-PCL043 findings for one implementation."""
    findings: List[Finding] = []
    deviant = set(deviant_flags)
    for flow in flows:
        finding = _resolve_one(flow, deviant, implementation)
        if finding is not None:
            findings.append(finding)
    return findings


def _resolve_one(flow: TaintFlow, deviant: Set[str],
                 implementation: str) -> Optional[Finding]:
    labels = flow.labels
    if not labels:
        return None
    # The GUTI exists to be used on the wire and in logs: flows carrying
    # only the temporary identity are the privacy *mechanism* working.
    if labels <= {LABEL_GUTI}:
        return None
    involved = sorted(deviant & flow.flags & TAINT_VISIBLE_FLAGS)
    if involved:
        attacks = sorted({FLAG_TO_ATTACK[flag] for flag in involved})
        return Finding(
            "PCL043", f"{implementation}::{flow.location}",
            f"taint flow {flow.describe()} is reachable via seeded "
            f"policy flag(s) {', '.join(involved)} "
            f"(expected Table I {'/'.join(attacks)} behaviour)",
            line=flow.line,
            details={"flags": ",".join(involved),
                     "attacks": ",".join(attacks),
                     "sink": flow.sink})
    if flow.sink == SINK_RETENTION:
        # With the flag at its compliant default the deletion runs.
        return None
    key_labels = sorted(labels & KEY_LABELS)
    if key_labels:
        return Finding(
            "PCL041", f"{implementation}::{flow.location}",
            f"key material ({', '.join(key_labels)}) reaches "
            f"{flow.sink} sink {flow.message!r} field {flow.field!r} "
            f"unsanitized", line=flow.line,
            details={"labels": ",".join(key_labels), "sink": flow.sink})
    if flow.sink == SINK_LOG:
        if LABEL_IMSI in labels:
            return Finding(
                "PCL042", f"{implementation}::{flow.location}",
                f"permanent identity (imsi) reaches the event log "
                f"({flow.message!r}) unredacted; pass it through "
                f"identifiers.redact()", line=flow.line,
                details={"labels": ",".join(sorted(labels)),
                         "sink": flow.sink})
        return None
    if flow.sink == SINK_WIRE and not flow.protected:
        if (labels <= _SANCTIONABLE
                and (flow.message, flow.field) in SANCTIONED_WIRE_FLOWS):
            return None
        return Finding(
            "PCL040", f"{implementation}::{flow.location}",
            f"{'/'.join(sorted(labels))} reaches plaintext NAS field "
            f"{flow.field!r} of {flow.message!r} outside the "
            f"standards-sanctioned flows", line=flow.line,
            details={"labels": ",".join(sorted(labels)),
                     "message": flow.message, "field": flow.field})
    return None


# ---------------------------------------------------------------------------
# Static vs. dynamic cross-examination (PCL045)
# ---------------------------------------------------------------------------
def cross_examine(implementation: str,
                  taint_findings: Sequence[Finding],
                  deviant_flags: Sequence[str],
                  expected: Optional[Mapping[str, Mapping[str, bool]]]
                  = None,
                  xcheck_findings: Sequence[Finding] = ()
                  ) -> List[Finding]:
    """Compare static leak findings against the dynamic privacy matrix.

    Two blind-spot directions:

    - **instrumentation blind spot**: the taint pass re-finds a seeded
      deviation (PCL043 naming flag F), but the dynamic detection matrix
      marks F's Table I attack *undetected* on this implementation — the
      runtime harness would ship the leak;
    - **static blind spot**: the dynamic side detects a privacy attack
      (or the PCL022 FSM cross-check attributes a deviation to a
      taint-visible flag), but no static flow names that flag — the
      taint catalogs have a gap.
    """
    if expected is None:
        from ..properties.expected import NEW_ATTACKS
        expected = NEW_ATTACKS
    findings: List[Finding] = []
    statically_found: Set[str] = set()
    for finding in taint_findings:
        if finding.rule != "PCL043":
            continue
        statically_found.update(
            flag for flag in finding.details.get("flags", "").split(",")
            if flag)

    for flag in sorted(statically_found):
        attack = FLAG_TO_ATTACK.get(flag)
        if attack is None or attack not in expected:
            continue
        if not expected[attack].get(implementation, False):
            findings.append(Finding(
                "PCL045", f"{implementation}::{flag}",
                f"static taint finds an identity flow via seeded flag "
                f"{flag!r} ({attack}), but the dynamic detection matrix "
                f"marks {attack} undetected on {implementation!r} — "
                f"instrumentation blind spot",
                details={"flag": flag, "attack": attack,
                         "direction": "static-only"}))

    dynamic_flags: Set[str] = set(deviant_flags)
    for finding in xcheck_findings:
        if finding.rule == "PCL022":
            dynamic_flags.update(
                flag for flag
                in finding.details.get("flags", "").split(",") if flag)
    for flag in sorted(dynamic_flags & TAINT_VISIBLE_FLAGS):
        attack = FLAG_TO_ATTACK.get(flag)
        if attack is None or attack not in expected:
            continue
        if (expected[attack].get(implementation, False)
                and flag not in statically_found):
            findings.append(Finding(
                "PCL045", f"{implementation}::{flag}",
                f"dynamic analysis detects {attack} via seeded flag "
                f"{flag!r} on {implementation!r}, but the taint pass "
                f"found no corresponding identity flow — static "
                f"analysis blind spot",
                details={"flag": flag, "attack": attack,
                         "direction": "dynamic-only"}))
    return findings


# ---------------------------------------------------------------------------
# Family entry point
# ---------------------------------------------------------------------------
def lint_taint(implementations: Sequence[str],
               taint_modules: Sequence[str] = (),
               xcheck_findings: Sequence[Finding] = ()
               ) -> List[Finding]:
    """Run the full taint family: UE personas, MME/HSS, allocator, x-exam.

    ``taint_modules`` names external persona modules (importable paths);
    each must define exactly one :class:`~repro.lte.ue.UeNas` subclass.
    """
    findings: List[Finding] = []
    for implementation in implementations:
        if implementation not in REGISTRY:
            raise LintError(
                f"unknown implementation {implementation!r} for the "
                f"taint family")
        model = taint_ue_model(implementation)
        resolved = resolve_findings(model.flows, model.deviant_flags,
                                    implementation)
        findings.extend(resolved)
        findings.extend(cross_examine(
            implementation, resolved, model.deviant_flags,
            xcheck_findings=[f for f in xcheck_findings
                             if f.location.startswith(
                                 implementation + "::")]))
    for module_name in taint_modules:
        findings.extend(lint_external_module(module_name))
    mme_flows = taint_mme_flows() + taint_hss_flows()
    findings.extend(resolve_findings(mme_flows, (), "testbed"))
    findings.extend(allocator_findings())
    return findings


def lint_external_module(module_name: str) -> List[Finding]:
    """Audit an external UE persona module before it ever runs."""
    import importlib
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise LintError(
            f"cannot import taint target module {module_name!r}: "
            f"{exc}") from exc
    classes = [obj for obj in vars(module).values()
               if isinstance(obj, type)
               and issubclass(obj, ue_module.UeNas)
               and obj is not ue_module.UeNas
               and obj.__module__ == module.__name__]
    if not classes:
        raise LintError(
            f"taint target module {module_name!r} defines no UeNas "
            f"subclass")
    findings: List[Finding] = []
    for ue_class in sorted(classes, key=lambda cls: cls.__name__):
        model = taint_ue_class(ue_class)
        resolved = resolve_findings(model.flows, model.deviant_flags,
                                    model.implementation)
        findings.extend(resolved)
        findings.extend(cross_examine(
            model.implementation, resolved, model.deviant_flags,
            expected={}))
    return findings
