"""Findings model for ``repro.lint``: stable rule IDs, severities, reports.

Every lint rule has a stable ``PCL0xx`` identifier (ProChecker Lint) so
baselines, CI gates and issue trackers can reference findings across
refactors.  Rules are grouped into three families:

- ``PCL01x`` — **spec lint**: the property catalog and its threat
  vocabulary (undefined atoms, enum typos, duplicates, vacuous
  implications, unknown threat capabilities);
- ``PCL02x`` — **cross-check**: static transition extraction from the
  implementation source against the dynamically extracted FSM;
- ``PCL03x`` — **hygiene**: repo-specific source hazards;
- ``PCL04x`` — **taint**: identity/key-material dataflow from the
  implementation source (sources → sinks modulo sanitizers), plus the
  static-vs-dynamic privacy cross-examination.

A finding's *fingerprint* deliberately excludes line numbers so baseline
entries survive unrelated edits to the same file.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Severity(enum.Enum):
    """How bad a finding is; orderable via :attr:`rank`."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "info": 0}[self.value]

    #: severities that make ``repro lint`` exit non-zero
    def gates(self) -> bool:
        return self.rank >= Severity.WARNING.rank


@dataclass(frozen=True)
class Rule:
    """One lint rule: stable identifier, family, default severity."""

    identifier: str
    family: str
    severity: Severity
    summary: str


#: The rule catalog.  Identifiers are append-only: never renumber.
RULES: Dict[str, Rule] = {}


def _rule(identifier: str, family: str, severity: Severity,
          summary: str) -> Rule:
    rule = Rule(identifier, family, severity, summary)
    if identifier in RULES:
        raise ValueError(f"duplicate rule id {identifier}")
    RULES[identifier] = rule
    return rule


FAMILY_SPEC = "spec"
FAMILY_XCHECK = "xcheck"
FAMILY_HYGIENE = "hygiene"
FAMILY_TAINT = "taint"

# -- PCL01x: spec lint ------------------------------------------------------
PCL010 = _rule("PCL010", FAMILY_SPEC, Severity.ERROR,
               "property formula fails to parse or to instantiate under a "
               "vocabulary")
PCL011 = _rule("PCL011", FAMILY_SPEC, Severity.ERROR,
               "formula references an atom not declared in the threat "
               "model")
PCL012 = _rule("PCL012", FAMILY_SPEC, Severity.ERROR,
               "comparison against an enum literal outside the variable's "
               "declared domain")
PCL013 = _rule("PCL013", FAMILY_SPEC, Severity.WARNING,
               "duplicate property: identical normalized formula and "
               "threat configuration")
PCL014 = _rule("PCL014", FAMILY_SPEC, Severity.ERROR,
               "vacuous implication: antecedent unsatisfiable over the "
               "declared domains")
PCL015 = _rule("PCL015", FAMILY_SPEC, Severity.ERROR,
               "threat configuration references an unknown message or "
               "internal trigger")
PCL016 = _rule("PCL016", FAMILY_SPEC, Severity.ERROR,
               "testbed property names an experiment no registered attack "
               "implements")

# -- PCL02x: static/dynamic cross-check -------------------------------------
PCL020 = _rule("PCL020", FAMILY_XCHECK, Severity.WARNING,
               "statically declared handler never exercised by the "
               "conformance suite")
PCL021 = _rule("PCL021", FAMILY_XCHECK, Severity.ERROR,
               "dynamically extracted transition with no static origin in "
               "the implementation source")
PCL022 = _rule("PCL022", FAMILY_XCHECK, Severity.INFO,
               "dynamic transition arises from a seeded policy deviation "
               "(expected Table I behaviour)")
PCL023 = _rule("PCL023", FAMILY_XCHECK, Severity.ERROR,
               "extracted guard predicate has no semantic mapping "
               "(threat.predicates cannot compile it)")
PCL024 = _rule("PCL024", FAMILY_XCHECK, Severity.ERROR,
               "handler name has no signature-table mapping, so the "
               "extractor can never observe it")

# -- PCL03x: code hygiene ----------------------------------------------------
PCL030 = _rule("PCL030", FAMILY_HYGIENE, Severity.WARNING,
               "mutable default argument")
PCL031 = _rule("PCL031", FAMILY_HYGIENE, Severity.WARNING,
               "None default on a non-Optional annotation")
PCL032 = _rule("PCL032", FAMILY_HYGIENE, Severity.WARNING,
               "swallowed except without an obs.count (silent failure)")

# -- PCL04x: identity/key-material taint -------------------------------------
PCL040 = _rule("PCL040", FAMILY_TAINT, Severity.ERROR,
               "permanent identity or SQN material reaches a plaintext "
               "NAS field outside the standards-sanctioned flows")
PCL041 = _rule("PCL041", FAMILY_TAINT, Severity.ERROR,
               "key material (permanent key, K_ASME, NAS keys) reaches a "
               "wire or log sink unsanitized")
PCL042 = _rule("PCL042", FAMILY_TAINT, Severity.WARNING,
               "permanent identity reaches a log/event sink unredacted")
PCL043 = _rule("PCL043", FAMILY_TAINT, Severity.INFO,
               "identity taint flow explained by a seeded policy "
               "deviation (expected Table I behaviour)")
PCL044 = _rule("PCL044", FAMILY_TAINT, Severity.WARNING,
               "GUTI allocation preimage embeds the raw IMSI without "
               "allocator-secret salt (guessable temporary identity)")
PCL045 = _rule("PCL045", FAMILY_TAINT, Severity.WARNING,
               "static taint and dynamic privacy verdicts disagree "
               "(instrumentation or analysis blind spot)")


class LintError(Exception):
    """Raised for unusable lint inputs (bad catalog module, bad baseline)."""


@dataclass(frozen=True)
class Finding:
    """One concrete lint finding.

    ``location`` is a stable logical anchor (``file`` or
    ``file::object``); ``line`` is advisory and excluded from the
    fingerprint so baselines survive unrelated edits.
    """

    rule: str
    location: str
    message: str
    line: Optional[int] = None
    details: Dict[str, str] = field(default_factory=dict, hash=False)

    def __post_init__(self):
        if self.rule not in RULES:
            raise LintError(f"unknown rule id {self.rule!r}")

    @property
    def severity(self) -> Severity:
        return RULES[self.rule].severity

    @property
    def family(self) -> str:
        return RULES[self.rule].family

    def fingerprint(self) -> str:
        """Stable identity used by the baseline suppression file."""
        digest = hashlib.sha256(
            f"{self.rule}\x00{self.location}\x00{self.message}"
            .encode()).hexdigest()[:16]
        return f"{self.rule}:{self.location}:{digest}"

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "rule": self.rule,
            "severity": self.severity.value,
            "location": self.location,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }
        if self.line is not None:
            payload["line"] = self.line
        if self.details:
            payload["details"] = dict(self.details)
        return payload

    def format(self) -> str:
        place = self.location
        if self.line is not None:
            place = f"{place}:{self.line}"
        return (f"{self.rule} [{self.severity.value}] {place}: "
                f"{self.message}")


def sort_findings(findings: List[Finding]) -> List[Finding]:
    """Severity-major, then rule id, then location — a stable order."""
    return sorted(findings,
                  key=lambda f: (-f.severity.rank, f.rule, f.location,
                                 f.message))


@dataclass
class LintReport:
    """The outcome of one ``repro lint`` run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    #: which rule families actually ran (xcheck is skippable)
    families: List[str] = field(default_factory=list)
    implementations: List[str] = field(default_factory=list)

    @property
    def gating(self) -> List[Finding]:
        """Findings that make the run fail (warning or error)."""
        return [f for f in self.findings if f.severity.gates()]

    def counts(self) -> Dict[str, int]:
        counts = {"error": 0, "warning": 0, "info": 0}
        for finding in self.findings:
            counts[finding.severity.value] += 1
        counts["suppressed"] = len(self.suppressed)
        return counts

    def to_dict(self) -> Dict[str, object]:
        return {
            "findings": [f.to_dict() for f in sort_findings(self.findings)],
            "suppressed": [f.fingerprint() for f in self.suppressed],
            "counts": self.counts(),
            "families": list(self.families),
            "implementations": list(self.implementations),
            "clean": not self.gating,
        }

    def format_text(self) -> str:
        lines: List[str] = []
        for finding in sort_findings(self.findings):
            lines.append(finding.format())
        counts = self.counts()
        lines.append(
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info finding(s)"
            + (f", {counts['suppressed']} baseline-suppressed"
               if counts["suppressed"] else ""))
        return "\n".join(lines)
