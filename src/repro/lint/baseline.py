"""Baseline suppression file for ``repro lint``.

A baseline records the fingerprints of findings that are *known and
accepted* — typically pre-existing debt adopted when the linter was
introduced.  Runs subtract baselined findings before gating, so the
check only fails on regressions.  Fingerprints exclude line numbers
(see :meth:`repro.lint.findings.Finding.fingerprint`), so entries
survive unrelated edits.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Sequence, Set, Tuple

from .findings import Finding, LintError

#: Default location, repo-root relative.
DEFAULT_BASELINE_NAME = "lint-baseline.json"
_FORMAT_VERSION = 1


class Baseline:
    """An immutable set of suppressed finding fingerprints."""

    def __init__(self, fingerprints: Optional[Sequence[str]] = None):
        self.fingerprints: Set[str] = set(fingerprints or ())

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint() in self.fingerprints

    def __len__(self) -> int:
        return len(self.fingerprints)

    def apply(self, findings: Sequence[Finding]
              ) -> Tuple[List[Finding], List[Finding]]:
        """Partition ``findings`` into (kept, suppressed)."""
        kept: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in findings:
            (suppressed if finding in self else kept).append(finding)
        return kept, suppressed

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise LintError(f"unreadable baseline {path}: {exc}") from exc
        if (not isinstance(payload, dict)
                or payload.get("version") != _FORMAT_VERSION
                or not isinstance(payload.get("suppressions"), list)):
            raise LintError(
                f"baseline {path} is not a version-{_FORMAT_VERSION} "
                f"suppression file")
        return cls([str(entry) for entry in payload["suppressions"]])

    @staticmethod
    def write(path: Path, findings: Sequence[Finding]) -> int:
        """Write a baseline suppressing every finding in ``findings``."""
        fingerprints = sorted({f.fingerprint() for f in findings})
        payload = {
            "version": _FORMAT_VERSION,
            "comment": ("Accepted repro.lint findings; regenerate with "
                        "`repro lint --write-baseline`."),
            "suppressions": fingerprints,
        }
        path.write_text(json.dumps(payload, indent=2) + "\n",
                        encoding="utf-8")
        return len(fingerprints)
