"""Code-hygiene lint (PCL03x): AST pass over the framework source.

Three repo-specific hazards, each of which has bitten this codebase or
its upstream inspirations:

- **mutable defaults** (PCL030) share one object across every call;
- **``x: Set[str] = None``-style defaults** (PCL031) lie to every type
  checker and reader about ``None`` being possible;
- **swallowed excepts** (PCL032) hide failures from the observability
  layer — a handler that neither raises, returns, records (an
  ``obs.count``-style metric, a log/warning/print) nor so much as reads
  the caught exception means a malformed frame or dead worker vanishes
  without a trace.  The rule is *semantic*: an arbitrary call in the
  body does not pacify it (that loophole once let a worker loop in
  ``repro.serve`` escape the gate) — only a recording call, control
  flow out of the handler, or a use of a bound exception name counts.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import FrozenSet, Iterable, List, Optional, Tuple, Union

from .findings import Finding, LintError

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]

#: Call constructors that produce a fresh mutable object per evaluation —
#: still shared when evaluated once at def time.
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict",
                  "deque", "Counter", "OrderedDict"}

#: Annotation texts for which a ``None`` default is legitimate.
_NONE_OK_MARKERS = ("Optional", "None", "Any", "object")

#: Method names whose call records the failure somewhere observable:
#: the :mod:`repro.obs` surface, the stdlib logging verbs, and the
#: collection/event mutators used to file a sentinel into a result
#: (``failures.append((index, "crash"))``, ``self._note(...)``).
_RECORDING_METHODS = {"count", "span", "gauge_max", "observe",
                      "log", "debug", "info", "warning", "warn",
                      "error", "exception", "critical",
                      "append", "extend", "add", "update", "note",
                      "_note", "record"}

#: Bare-name calls that surface the failure to a human.
_RECORDING_NAMES = {"print", "warn"}


def default_source_root() -> Path:
    """The ``src/repro`` package directory this module lives in."""
    return Path(__file__).resolve().parent.parent


def iter_source_files(root: Optional[Path] = None) -> List[Path]:
    root = root or default_source_root()
    return sorted(path for path in root.rglob("*.py"))


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call):
        function = node.func
        name = (function.id if isinstance(function, ast.Name)
                else function.attr if isinstance(function, ast.Attribute)
                else None)
        return name in _MUTABLE_CALLS
    return False


def _allows_none(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return True   # unannotated: nothing to contradict
    text = ast.unparse(annotation)
    return any(marker in text for marker in _NONE_OK_MARKERS)


def _defaults_with_args(node: _FunctionNode
                        ) -> Iterable[Tuple[ast.arg, ast.expr]]:
    """Every (parameter, default) pair across all parameter kinds.

    Positional-only, regular positional, and keyword-only defaults are
    all covered; lambdas share the same ``ast.arguments`` layout, so
    this works for them too.
    """
    positional = node.args.posonlyargs + node.args.args
    for arg, default in zip(positional[len(positional)
                                       - len(node.args.defaults):],
                            node.args.defaults):
        yield arg, default
    for arg, default in zip(node.args.kwonlyargs, node.args.kw_defaults):
        if default is not None:
            yield arg, default


def _is_recording_call(node: ast.Call) -> bool:
    """True for calls that put the failure on the record.

    ``obs.count(...)`` / ``metrics.count(...)`` style attribute calls,
    logging verbs, and ``print``/``warn`` qualify.  An arbitrary call
    (``self._queue.get()``, ``time.sleep(...)``) does **not** — doing
    unrelated work inside a handler is exactly how failures vanish.
    """
    function = node.func
    if isinstance(function, ast.Attribute):
        return function.attr in _RECORDING_METHODS
    if isinstance(function, ast.Name):
        return function.id in _RECORDING_NAMES
    return False


def _is_silent_body(body: List[ast.stmt],
                    exception_names: FrozenSet[str]) -> bool:
    """True when an except body swallows the failure without a trace.

    A body is *not* silent when any nested statement raises, returns,
    assigns (substituting an explicit fallback value is a recovery,
    not a swallow), makes a recording call (see
    :func:`_is_recording_call`), or reads an exception name bound by
    this or an enclosing handler (storing ``exc.reason`` somewhere
    counts as propagating the failure).
    """
    for statement in ast.walk(ast.Module(body=list(body), type_ignores=[])):
        if isinstance(statement, (ast.Raise, ast.Return, ast.Assign,
                                  ast.AugAssign, ast.AnnAssign)):
            return False
        if isinstance(statement, ast.Call) \
                and _is_recording_call(statement):
            return False
        if isinstance(statement, ast.Name) \
                and isinstance(statement.ctx, ast.Load) \
                and statement.id in exception_names:
            return False
    return True


def _walk_handlers(node: ast.AST, bound: FrozenSet[str],
                   location: str, findings: List[Finding]) -> None:
    """Flag silent except handlers, tracking bound exception names."""
    for child in ast.iter_child_nodes(node):
        scope = bound
        if isinstance(child, ast.ExceptHandler):
            if child.name:
                scope = bound | {child.name}
            if _is_silent_body(child.body, scope):
                findings.append(Finding(
                    "PCL032", location,
                    "except handler swallows the exception: no raise, "
                    "return, recording call (obs.count/log/print) or "
                    "use of the caught exception (silent failure)",
                    line=child.lineno))
        _walk_handlers(child, scope, location, findings)


def _lint_tree(tree: ast.AST, location: str) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            # Lambdas cannot carry annotations, so PCL031 never applies
            # to them — but a mutable default is shared across calls all
            # the same.
            name = (node.name
                    if not isinstance(node, ast.Lambda) else "<lambda>")
            for arg, default in _defaults_with_args(node):
                if _is_mutable_default(default):
                    findings.append(Finding(
                        "PCL030", f"{location}::{name}",
                        f"parameter {arg.arg!r} has a mutable default "
                        f"({ast.unparse(default)}); use None and "
                        f"construct inside the function",
                        line=default.lineno))
                elif (isinstance(default, ast.Constant)
                        and default.value is None
                        and not _allows_none(arg.annotation)):
                    findings.append(Finding(
                        "PCL031", f"{location}::{name}",
                        f"parameter {arg.arg!r} is annotated "
                        f"{ast.unparse(arg.annotation)} but defaults to "
                        f"None; annotate Optional[...]",
                        line=default.lineno))
    _walk_handlers(tree, frozenset(), location, findings)
    return findings


def lint_source(root: Optional[Path] = None,
                display_root: Optional[Path] = None) -> List[Finding]:
    """Run the hygiene family over every ``*.py`` under ``root``."""
    root = root or default_source_root()
    display_root = display_root or root.parent.parent
    findings: List[Finding] = []
    for path in iter_source_files(root):
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except (OSError, SyntaxError) as exc:
            raise LintError(f"cannot parse {path}: {exc}") from exc
        try:
            location = str(path.relative_to(display_root))
        except ValueError:
            location = str(path)
        findings.extend(_lint_tree(tree, location))
    return findings
