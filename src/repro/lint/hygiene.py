"""Code-hygiene lint (PCL03x): AST pass over the framework source.

Three repo-specific hazards, each of which has bitten this codebase or
its upstream inspirations:

- **mutable defaults** (PCL030) share one object across every call;
- **``x: Set[str] = None``-style defaults** (PCL031) lie to every type
  checker and reader about ``None`` being possible;
- **swallowed excepts** (PCL032) hide failures from the observability
  layer — a bare ``pass``/``continue`` body with no ``obs.count`` means
  a malformed frame or dead worker vanishes without a trace.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Tuple, Union

from .findings import Finding, LintError

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Call constructors that produce a fresh mutable object per evaluation —
#: still shared when evaluated once at def time.
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict",
                  "deque", "Counter", "OrderedDict"}

#: Annotation texts for which a ``None`` default is legitimate.
_NONE_OK_MARKERS = ("Optional", "None", "Any", "object")


def default_source_root() -> Path:
    """The ``src/repro`` package directory this module lives in."""
    return Path(__file__).resolve().parent.parent


def iter_source_files(root: Optional[Path] = None) -> List[Path]:
    root = root or default_source_root()
    return sorted(path for path in root.rglob("*.py"))


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call):
        function = node.func
        name = (function.id if isinstance(function, ast.Name)
                else function.attr if isinstance(function, ast.Attribute)
                else None)
        return name in _MUTABLE_CALLS
    return False


def _allows_none(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return True   # unannotated: nothing to contradict
    text = ast.unparse(annotation)
    return any(marker in text for marker in _NONE_OK_MARKERS)


def _defaults_with_args(node: _FunctionNode
                        ) -> Iterable[Tuple[ast.arg, ast.expr]]:
    positional = node.args.posonlyargs + node.args.args
    for arg, default in zip(positional[len(positional)
                                       - len(node.args.defaults):],
                            node.args.defaults):
        yield arg, default
    for arg, default in zip(node.args.kwonlyargs, node.args.kw_defaults):
        if default is not None:
            yield arg, default


def _is_silent_body(body: List[ast.stmt]) -> bool:
    """True when an except body neither records, raises, nor returns."""
    for statement in ast.walk(ast.Module(body=body, type_ignores=[])):
        if isinstance(statement, (ast.Raise, ast.Return, ast.Call)):
            return False
    return all(isinstance(statement, (ast.Pass, ast.Continue, ast.Break))
               for statement in body)


def _lint_tree(tree: ast.AST, location: str) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg, default in _defaults_with_args(node):
                if _is_mutable_default(default):
                    findings.append(Finding(
                        "PCL030", f"{location}::{node.name}",
                        f"parameter {arg.arg!r} has a mutable default "
                        f"({ast.unparse(default)}); use None and "
                        f"construct inside the function",
                        line=default.lineno))
                elif (isinstance(default, ast.Constant)
                        and default.value is None
                        and not _allows_none(arg.annotation)):
                    findings.append(Finding(
                        "PCL031", f"{location}::{node.name}",
                        f"parameter {arg.arg!r} is annotated "
                        f"{ast.unparse(arg.annotation)} but defaults to "
                        f"None; annotate Optional[...]",
                        line=default.lineno))
        elif isinstance(node, ast.ExceptHandler):
            if _is_silent_body(node.body):
                findings.append(Finding(
                    "PCL032", location,
                    "except handler swallows the exception without an "
                    "obs.count (silent failure)",
                    line=node.lineno))
    return findings


def lint_source(root: Optional[Path] = None,
                display_root: Optional[Path] = None) -> List[Finding]:
    """Run the hygiene family over every ``*.py`` under ``root``."""
    root = root or default_source_root()
    display_root = display_root or root.parent.parent
    findings: List[Finding] = []
    for path in iter_source_files(root):
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except (OSError, SyntaxError) as exc:
            raise LintError(f"cannot parse {path}: {exc}") from exc
        try:
            location = str(path.relative_to(display_root))
        except ValueError:
            location = str(path)
        findings.extend(_lint_tree(tree, location))
    return findings
