"""``repro.lint`` — static spec/model/implementation analysis.

Three rule families under stable ``PCL0xx`` identifiers:

- **spec** (PCL01x): every catalog formula must parse and bind to the
  threat model's declared variables and enum domains under both
  vocabularies (:func:`lint_catalog`);
- **xcheck** (PCL02x): static transition extraction from the NAS-layer
  source, cross-checked against the dynamically extracted FSM
  (:func:`lint_implementation`);
- **hygiene** (PCL03x): repo-specific source hazards
  (:func:`lint_source`);
- **taint** (PCL04x): interprocedural identity/key-material dataflow
  over the implementation source, cross-examined against the dynamic
  privacy verdicts (:func:`lint_taint`).

Run everything via :func:`run_lint` or ``python -m repro lint``.
"""

from .baseline import Baseline
from .findings import (RULES, Finding, LintError, LintReport, Rule,
                       Severity, sort_findings)
from .hygiene import lint_source
from .runner import (DEFAULT_IMPLEMENTATIONS, default_baseline_path,
                     load_catalog, run_lint)
from .speclint import lint_catalog
from .staticfsm import (StaticHandler, StaticModel, static_mme_handlers,
                        static_ue_model)
from .taint import (TaintFlow, TaintModel, cross_examine, lint_taint,
                    taint_mme_flows, taint_ue_class, taint_ue_model)
from .xcheck import lint_implementation

__all__ = [
    "Baseline",
    "DEFAULT_IMPLEMENTATIONS",
    "Finding",
    "LintError",
    "LintReport",
    "RULES",
    "Rule",
    "Severity",
    "StaticHandler",
    "StaticModel",
    "TaintFlow",
    "TaintModel",
    "cross_examine",
    "default_baseline_path",
    "lint_catalog",
    "lint_implementation",
    "lint_source",
    "lint_taint",
    "load_catalog",
    "run_lint",
    "sort_findings",
    "static_mme_handlers",
    "static_ue_model",
    "taint_mme_flows",
    "taint_ue_class",
    "taint_ue_model",
]
