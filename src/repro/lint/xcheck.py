"""Cross-check lint (PCL02x): static extraction vs. the dynamic FSM.

The dynamic extractor (Algorithm 1) only sees behaviour the conformance
suite exercises; the static extractor (:mod:`repro.lint.staticfsm`) only
sees behaviour written in the source.  Comparing the two catches defects
neither view can see alone:

- a handler with no dynamic trace is a conformance-suite gap (PCL020);
- a dynamic transition with no static origin means the extractor — or
  the signature tables it relies on — is attributing behaviour to the
  wrong code (PCL021);
- a dynamic transition whose static origin is a *seeded* policy branch
  (srsUE / OAI Table I deviations) is expected and reported as
  informational context, never as a failure (PCL022);
- a guard predicate the threat layer cannot compile would silently
  vanish from the instrumented model (PCL023);
- a handler the dispatch/signature tables do not know is dead code the
  extractor can never observe (PCL024).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..fsm.analysis import diff, missing_stimuli
from ..fsm.machine import FiniteStateMachine, Transition
from ..threat.predicates import (PredicateError, compile_predicate,
                                 split_guard)
from .findings import Finding
from .staticfsm import (KIND_MESSAGE, StaticHandler, StaticModel,
                        static_ue_model)

#: The implementation whose dynamic FSM is the compliant reference.
REFERENCE_IMPLEMENTATION = "reference"


def _extract(implementation: str) -> FiniteStateMachine:
    # Imported here so `repro lint --no-xcheck` never pays for the
    # pipeline (and its conformance run) at all.
    from ..core.prochecker import ProChecker
    return ProChecker(implementation).extract()


def _handler_findings(handler: StaticHandler,
                      dynamic_triggers: Set[str],
                      gap_count: Dict[str, int]) -> List[Finding]:
    findings: List[Finding] = []
    if not handler.mapped:
        findings.append(Finding(
            "PCL024", handler.location,
            f"handler {handler.method!r} has no signature-table mapping "
            f"for trigger {handler.trigger!r}; the extractor can never "
            f"observe it", line=handler.line))
        return findings
    if handler.trigger not in dynamic_triggers:
        gaps = gap_count.get(handler.trigger)
        detail = (f" ({gaps} reachable state(s) lack the stimulus)"
                  if gaps else "")
        findings.append(Finding(
            "PCL020", handler.location,
            f"handler for {handler.trigger!r} is never exercised by the "
            f"conformance suite{detail}", line=handler.line))
    return findings


def _transition_origin_finding(transition: Transition,
                               handler: Optional[StaticHandler],
                               location: str) -> Optional[Finding]:
    if handler is None:
        return Finding(
            "PCL021", location,
            f"dynamic transition {transition.describe()} has no static "
            f"handler for trigger {transition.trigger!r}")
    if (transition.target != transition.source
            and not handler.writes_open
            and transition.target not in handler.states_written):
        return Finding(
            "PCL021", location,
            f"dynamic transition {transition.describe()} reaches "
            f"{transition.target!r}, but {handler.method!r} only writes "
            f"{list(handler.states_written)!r}")
    return None


def _guard_findings(transition: Transition, location: str) -> List[Finding]:
    findings: List[Finding] = []
    _, predicates = split_guard(transition.conditions)
    for name, value in sorted(predicates.items()):
        try:
            compile_predicate(name, value)
        except PredicateError as exc:
            findings.append(Finding(
                "PCL023", location,
                f"guard predicate {name}={value} on "
                f"{transition.describe()} has no semantic mapping: {exc}"))
    return findings


def _deviation_findings(model: StaticModel,
                        dynamic: FiniteStateMachine,
                        reference: FiniteStateMachine) -> List[Finding]:
    """PCL022: implementation-only transitions tied to seeded flags."""
    findings: List[Finding] = []
    if not model.deviant_flags:
        return findings
    deviant = set(model.deviant_flags)
    by_trigger = model.by_trigger()
    for transition in diff(dynamic, reference).only_in_first:
        handler = by_trigger.get(transition.trigger)
        if handler is None:
            continue  # PCL021 already covers this
        involved = sorted(deviant & set(handler.policy_flags))
        if involved:
            findings.append(Finding(
                "PCL022", f"{model.implementation}::{transition.trigger}",
                f"transition {transition.describe()} deviates from the "
                f"reference via seeded policy flag(s) "
                f"{', '.join(involved)} (expected Table I behaviour)",
                details={"flags": ",".join(involved)}))
    return findings


def lint_implementation(implementation: str,
                        dynamic: Optional[FiniteStateMachine] = None,
                        reference: Optional[FiniteStateMachine] = None
                        ) -> List[Finding]:
    """Run the full cross-check family for one UE implementation.

    ``dynamic`` and ``reference`` allow tests to supply pre-built
    machines; by default both come from the (cached) extraction
    pipeline.
    """
    model = static_ue_model(implementation)
    if dynamic is None:
        dynamic = _extract(implementation)

    findings: List[Finding] = []
    dynamic_triggers = {t.trigger for t in dynamic.transitions}
    gap_count: Dict[str, int] = {}
    for gap in missing_stimuli(dynamic,
                               {h.trigger for h in model.handlers
                                if h.mapped and h.kind == KIND_MESSAGE}):
        gap_count[gap.trigger] = gap_count.get(gap.trigger, 0) + 1

    for handler in model.handlers:
        findings.extend(_handler_findings(handler, dynamic_triggers,
                                          gap_count))

    by_trigger = model.by_trigger()

    # Seeded deviations first: a transition explained by a seeded policy
    # flag is expected Table I behaviour and must not double-report as a
    # missing static origin.
    explained: Set[Transition] = set()
    if implementation != REFERENCE_IMPLEMENTATION:
        if reference is None:
            reference = _extract(REFERENCE_IMPLEMENTATION)
        deviation_findings = _deviation_findings(model, dynamic, reference)
        findings.extend(deviation_findings)
        deviant = set(model.deviant_flags)
        for transition in diff(dynamic, reference).only_in_first:
            handler = by_trigger.get(transition.trigger)
            if handler is not None and deviant & set(handler.policy_flags):
                explained.add(transition)

    for transition in dynamic.transitions:
        location = f"{implementation}::{transition.trigger}"
        if transition not in explained:
            origin = _transition_origin_finding(
                transition, by_trigger.get(transition.trigger), location)
            if origin is not None:
                findings.append(origin)
        findings.extend(_guard_findings(transition, location))
    return findings
