"""Orchestration for ``repro lint``: run families, apply the baseline."""

from __future__ import annotations

import importlib
from pathlib import Path
from typing import List, Optional, Sequence

from ..properties.spec import Property
from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .findings import (FAMILY_HYGIENE, FAMILY_SPEC, FAMILY_TAINT,
                       FAMILY_XCHECK, Finding, LintError, LintReport)
from .hygiene import lint_source
from .speclint import lint_catalog
from .taint import lint_taint
from .xcheck import REFERENCE_IMPLEMENTATION, lint_implementation

#: Implementations the cross-check family covers by default.
DEFAULT_IMPLEMENTATIONS = (REFERENCE_IMPLEMENTATION, "srsue", "oai")


def load_catalog(module_name: str) -> Sequence[Property]:
    """Import ``module_name`` and return its property catalog.

    The module must expose ``ALL_PROPERTIES`` (or ``PROPERTIES``) — the
    same convention as :mod:`repro.properties`.  Used by the CI mutation
    smoke check to lint a deliberately broken catalog fixture.
    """
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise LintError(
            f"cannot import catalog module {module_name!r}: {exc}"
        ) from exc
    for attribute in ("ALL_PROPERTIES", "PROPERTIES"):
        properties = getattr(module, attribute, None)
        if properties is not None:
            return list(properties)
    raise LintError(
        f"catalog module {module_name!r} defines neither ALL_PROPERTIES "
        f"nor PROPERTIES")


def run_lint(implementations: Optional[Sequence[str]] = None,
             run_xcheck: bool = True,
             baseline_path: Optional[Path] = None,
             catalog_module: Optional[str] = None,
             source_root: Optional[Path] = None,
             run_taint: bool = True,
             taint_modules: Sequence[str] = ()) -> LintReport:
    """Run the configured lint families and fold in the baseline."""
    findings: List[Finding] = []
    families: List[str] = [FAMILY_SPEC, FAMILY_HYGIENE]

    if catalog_module is not None:
        findings.extend(lint_catalog(load_catalog(catalog_module),
                                     origin=catalog_module))
    else:
        findings.extend(lint_catalog())

    findings.extend(lint_source(root=source_root))

    implementations = list(implementations if implementations is not None
                           else DEFAULT_IMPLEMENTATIONS)
    xcheck_findings: List[Finding] = []
    if run_xcheck:
        families.append(FAMILY_XCHECK)
        reference = None
        for implementation in implementations:
            if implementation != REFERENCE_IMPLEMENTATION:
                if reference is None:
                    from ..core.prochecker import ProChecker
                    reference = ProChecker(
                        REFERENCE_IMPLEMENTATION).extract()
                xcheck_findings.extend(lint_implementation(
                    implementation, reference=reference))
            else:
                xcheck_findings.extend(
                    lint_implementation(implementation))
        findings.extend(xcheck_findings)

    if run_taint:
        families.append(FAMILY_TAINT)
        findings.extend(lint_taint(
            implementations, taint_modules=taint_modules,
            xcheck_findings=xcheck_findings))

    baseline = (Baseline.load(baseline_path)
                if baseline_path is not None else Baseline())
    kept, suppressed = baseline.apply(findings)
    return LintReport(
        findings=kept,
        suppressed=suppressed,
        families=families,
        implementations=implementations if run_xcheck else [],
    )


def default_baseline_path() -> Path:
    """``lint-baseline.json`` at the repo root (src/repro/../..)."""
    return (Path(__file__).resolve().parent.parent.parent.parent
            / DEFAULT_BASELINE_NAME)
