"""Static transition extraction: an AST walk over the NAS-layer source.

This is the Aizatulin-style complement to the pipeline's *dynamic*
Algorithm 1 extraction: instead of observing transitions from an
instrumented conformance run, it derives candidate ``(state, trigger)``
handler facts directly from the implementation source —

- which incoming messages have a handler at all (the static trigger
  alphabet);
- which protocol states each handler *reads* (``self.emm_state == X``)
  and *writes* (``self.emm_state = Y``), i.e. the candidate transition
  end-points;
- which responses each handler can send;
- which :class:`~repro.lte.ue.UePolicy` deviation flags a handler's
  behaviour depends on, resolved *transitively* through helper calls
  (``_gate_protected`` → ``_check_dl_count`` carries ``enforce_dl_count``
  up to every protected-message handler).

The cross-check rules (:mod:`repro.lint.xcheck`) compare these facts
against the dynamically extracted FSM: dynamic behaviour with no static
origin is an extraction bug, static handlers with no dynamic trace are
conformance-suite gaps, and dynamic deviations whose static origin is a
seeded policy branch are expected Table I behaviour.
"""

from __future__ import annotations

import ast
import inspect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..extraction.signatures import INTERNAL_TRIGGERS
from ..lte import constants as c
from ..lte import mme as mme_module
from ..lte import ue as ue_module
from ..lte.implementations import REGISTRY

#: ``_recv_<message>_impl`` — the UE handler naming convention.
_RECV_IMPL_PREFIX = "_recv_"
_RECV_IMPL_SUFFIX = "_impl"
#: MME handlers use the plain ``recv_<message>`` convention.
_MME_RECV_PREFIX = "recv_"

KIND_MESSAGE = "message"
KIND_INTERNAL = "internal"


@dataclass(frozen=True)
class StaticHandler:
    """Source-level facts about one trigger's handler."""

    module: str
    class_name: str
    method: str
    trigger: str
    kind: str
    line: int
    states_read: Tuple[str, ...] = ()
    states_written: Tuple[str, ...] = ()
    actions: Tuple[str, ...] = ()
    policy_flags: Tuple[str, ...] = ()
    #: whether the dispatch/signature tables know this handler; an
    #: unmapped handler is dead code the extractor can never observe
    mapped: bool = True
    #: True when some state write could not be resolved statically, so
    #: ``states_written`` is a lower bound rather than an exact set
    writes_open: bool = False

    @property
    def location(self) -> str:
        return f"{self.module}::{self.class_name}.{self.method}"


@dataclass
class StaticModel:
    """The static extraction result for one implementation class."""

    implementation: str
    class_name: str
    handlers: List[StaticHandler] = field(default_factory=list)
    #: policy flags this implementation seeds away from the compliant
    #: defaults (statically read from its ``*_policy()`` factory)
    deviant_flags: Tuple[str, ...] = ()

    def by_trigger(self) -> Dict[str, StaticHandler]:
        return {handler.trigger: handler for handler in self.handlers}

    @property
    def triggers(self) -> Set[str]:
        return {handler.trigger for handler in self.handlers}


class _MethodFacts(ast.NodeVisitor):
    """Per-method collector for state reads/writes, sends, policy reads."""

    def __init__(self) -> None:
        self.states_read: Set[str] = set()
        self.states_written: Set[str] = set()
        self.actions: Set[str] = set()
        self.policy_flags: Set[str] = set()
        self.calls: Set[str] = set()
        #: a state write whose value the AST walk could not resolve to a
        #: constant — downstream checks must treat the write set as open
        self.writes_unresolved = False

    # -- helpers --------------------------------------------------------
    @staticmethod
    def _is_self_attr(node: ast.AST, attribute: str) -> bool:
        return (isinstance(node, ast.Attribute)
                and node.attr == attribute
                and isinstance(node.value, ast.Name)
                and node.value.id == "self")

    @staticmethod
    def _constant_values(node: ast.AST) -> List[str]:
        """Resolve a state/message expression to its string value(s).

        Handles ``c.EMM_REGISTERED`` (resolved against the constants
        module), plain string constants, and conditional expressions
        (both branches).
        """
        if isinstance(node, ast.Attribute) and isinstance(node.value,
                                                          ast.Name):
            resolved = getattr(c, node.attr, None)
            return [resolved] if isinstance(resolved, str) else []
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return [node.value]
        if isinstance(node, ast.IfExp):
            return (_MethodFacts._constant_values(node.body)
                    + _MethodFacts._constant_values(node.orelse))
        return []

    # -- visitors -------------------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        if any(self._is_self_attr(operand, "emm_state")
               for operand in operands):
            for operand in operands:
                self.states_read.update(self._constant_values(operand))
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if any(self._is_self_attr(target, "emm_state")
               for target in node.targets):
            values = self._constant_values(node.value)
            if values:
                self.states_written.update(values)
            else:
                self.writes_unresolved = True
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._is_self_attr(node.value, "policy"):
            self.policy_flags.add(node.attr)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        function = node.func
        if (isinstance(function, ast.Attribute)
                and isinstance(function.value, ast.Name)
                and function.value.id == "self"):
            self.calls.add(function.attr)
            if function.attr in ("_send", "_send_impl") and node.args:
                self.actions.update(self._constant_values(node.args[0]))
        self.generic_visit(node)


def _class_node(module, class_name: str) -> ast.ClassDef:
    tree = ast.parse(inspect.getsource(module))
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return node
    raise ValueError(f"class {class_name} not found in {module.__name__}")


def _method_facts(class_node: ast.ClassDef
                  ) -> Dict[str, Tuple[_MethodFacts, int]]:
    facts: Dict[str, Tuple[_MethodFacts, int]] = {}
    for node in class_node.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            collector = _MethodFacts()
            # Walk the whole body including nested defs (timer-expiry
            # callbacks write protocol state too).
            for statement in node.body:
                collector.visit(statement)
            facts[node.name] = (collector, node.lineno)
    return facts


def _transitive(facts: Dict[str, Tuple[_MethodFacts, int]],
                method: str) -> _MethodFacts:
    """Union a method's facts with everything reachable via self-calls."""
    merged = _MethodFacts()
    frontier = [method]
    seen: Set[str] = set()
    while frontier:
        name = frontier.pop()
        if name in seen or name not in facts:
            continue
        seen.add(name)
        collected = facts[name][0]
        merged.states_read |= collected.states_read
        merged.states_written |= collected.states_written
        merged.actions |= collected.actions
        merged.policy_flags |= collected.policy_flags
        merged.writes_unresolved |= collected.writes_unresolved
        frontier.extend(collected.calls - seen)
    return merged


def _recv_impl_table() -> Dict[str, str]:
    """``_recv_<x>_impl`` method name -> canonical message name.

    Inverts :data:`repro.lte.ue._RECV_IMPLS`, the table the synthesized
    dispatch wrappers are generated from — the method-name fragment is
    *not* always the message name (``_recv_tau_accept_impl`` handles
    ``tracking_area_update_accept``).
    """
    return {impl: message
            for message, impl in ue_module._RECV_IMPLS.items()}


def _trigger_for_method(name: str,
                        recv_table: Dict[str, str]
                        ) -> Optional[Tuple[str, str, bool]]:
    """(trigger, kind, mapped) for a UE method name, or ``None``."""
    if name in recv_table:
        return recv_table[name], KIND_MESSAGE, True
    if (name.startswith(_RECV_IMPL_PREFIX)
            and name.endswith(_RECV_IMPL_SUFFIX)):
        # A handler-shaped method the dispatch table does not know:
        # surface it (PCL024) under its name-derived message guess.
        message = name[len(_RECV_IMPL_PREFIX):-len(_RECV_IMPL_SUFFIX)]
        return message, KIND_MESSAGE, False
    if name in INTERNAL_TRIGGERS:
        return INTERNAL_TRIGGERS[name], KIND_INTERNAL, True
    return None


def _handlers_for_class(module, class_name: str) -> List[StaticHandler]:
    class_node = _class_node(module, class_name)
    facts = _method_facts(class_node)
    recv_table = _recv_impl_table()
    handlers: List[StaticHandler] = []
    for method, (_, line) in sorted(facts.items()):
        resolved = _trigger_for_method(method, recv_table)
        if resolved is None:
            continue
        trigger, kind, mapped = resolved
        merged = _transitive(facts, method)
        handlers.append(StaticHandler(
            module=module.__name__, class_name=class_name, method=method,
            trigger=trigger, kind=kind, line=line,
            states_read=tuple(sorted(merged.states_read)),
            states_written=tuple(sorted(merged.states_written)),
            actions=tuple(sorted(merged.actions)),
            policy_flags=tuple(sorted(merged.policy_flags)),
            mapped=mapped and trigger in c.DOWNLINK_MESSAGES
            if kind == KIND_MESSAGE else mapped,
            writes_open=merged.writes_unresolved,
        ))
    return handlers


def _policy_defaults() -> Dict[str, object]:
    """UePolicy's compliant defaults, read from the class AST."""
    class_node = _class_node(ue_module, "UePolicy")
    defaults: Dict[str, object] = {}
    for node in class_node.body:
        if (isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and isinstance(node.value, ast.Constant)):
            defaults[node.target.id] = node.value.value
    return defaults


def _deviant_flags(implementation: str) -> Tuple[str, ...]:
    """Policy flags an implementation's factory sets away from default."""
    ue_class = REGISTRY[implementation]
    module = inspect.getmodule(ue_class)
    if module is None or module is ue_module:
        return ()
    defaults = _policy_defaults()
    deviant: Set[str] = set()
    tree = ast.parse(inspect.getsource(module))
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "UePolicy"):
            continue
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            if not isinstance(keyword.value, ast.Constant):
                deviant.add(keyword.arg)
                continue
            if defaults.get(keyword.arg) != keyword.value.value:
                deviant.add(keyword.arg)
    return tuple(sorted(deviant))


def static_ue_model(implementation: str) -> StaticModel:
    """Statically extract handler facts for one UE implementation.

    Handlers come from the shared :class:`~repro.lte.ue.UeNas` base
    (implementations synthesise their prefix-named wrappers over the
    same ``_recv_*_impl`` bodies); subclass overrides, if any, replace
    the base entry.
    """
    ue_class = REGISTRY[implementation]
    handlers = {h.trigger: h
                for h in _handlers_for_class(ue_module, "UeNas")}
    module = inspect.getmodule(ue_class)
    if module is not None and module is not ue_module:
        for handler in _handlers_for_class(module, ue_class.__name__):
            handlers[handler.trigger] = handler
    return StaticModel(
        implementation=implementation,
        class_name=ue_class.__name__,
        handlers=sorted(handlers.values(), key=lambda h: h.trigger),
        deviant_flags=_deviant_flags(implementation),
    )


def static_mme_handlers() -> List[StaticHandler]:
    """Statically enumerate the testbed MME's ``recv_*`` handlers."""
    class_node = _class_node(mme_module, "MmeNas")
    facts = _method_facts(class_node)
    handlers: List[StaticHandler] = []
    for method, (_, line) in sorted(facts.items()):
        if not method.startswith(_MME_RECV_PREFIX):
            continue
        merged = _transitive(facts, method)
        handlers.append(StaticHandler(
            module=mme_module.__name__, class_name="MmeNas",
            method=method, trigger=method[len(_MME_RECV_PREFIX):],
            kind=KIND_MESSAGE, line=line,
            states_read=tuple(sorted(merged.states_read)),
            states_written=tuple(sorted(merged.states_written)),
            actions=tuple(sorted(merged.actions)),
            writes_open=merged.writes_unresolved,
        ))
    return handlers
