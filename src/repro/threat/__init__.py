"""Adversarial (Dolev-Yao) model instrumentation: UE^mu + MME^mu -> IMP^mu."""

from .predicates import (MARKER, DROPPED, PredicateError, compile_predicate,
                         split_guard)
from .instrumentor import (NONE_MSG, Refinement, ThreatConfig,
                           ThreatInstrumentor, TURN_ADV_DL, TURN_ADV_UL,
                           TURN_MME, TURN_UE, build_threat_model)

__all__ = [
    "MARKER", "DROPPED", "PredicateError", "compile_predicate",
    "split_guard",
    "NONE_MSG", "Refinement", "ThreatConfig", "ThreatInstrumentor",
    "TURN_ADV_DL", "TURN_ADV_UL", "TURN_MME", "TURN_UE",
    "build_threat_model",
]
