"""Adversarial model instrumentor: UE^mu + MME^mu -> IMP^mu (Section IV-B).

Takes the two protocol FSMs and produces a guarded-command model with:

- two unidirectional channels (``chan_ul``, ``chan_dl``), each carrying at
  most one in-flight message;
- a round-robin turn scheduler ``mme -> adv_dl -> ue -> adv_ul -> mme``
  (the adversary sits on each channel direction);
- a Dolev-Yao adversary that at its turn non-deterministically passes,
  drops, replays or injects messages ("the adversary non-deterministically
  decides either to drop/pass/change the message");
- *relational* data abstraction: rather than absolute counters, the model
  tracks how a delivered message's authentication SQN and NAS COUNT relate
  to the receiver's stored state (``dl_sqn_rel`` in {fresh, equal,
  stale_in, stale_out}; ``dl_count_rel`` in {fresh, stale_last,
  stale_old}).  Honest transmissions are fresh by construction; an
  adversarial replay chooses its relation non-deterministically and the
  CPV validates the choice.  This keeps the state space small and avoids
  the saturation artifacts absolute bounded counters would introduce.

The *initial* model is maximally abstract: an injected message may claim
``mac_valid=1`` even for protected messages, and a session-protected
message may be replayed before it was ever sent.  The CEGAR loop
(:mod:`repro.core.cegar`) asks the protocol verifier whether each
counterexample's adversarial steps are cryptographically feasible and, on
a spurious one, adds a :class:`Refinement` that re-generates this model
with the offending capability removed — "we refine ... to ensure that the
adversary does not exercise the offending action in future iterations".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..fsm import NULL_ACTION, FiniteStateMachine
from ..lte import constants as c
from ..mc.expr import And, Compare, Expr, Not, Or, TRUE, conjoin
from ..mc.model import Choice, Model, Variable
from .predicates import (VAR_DL_MAC, VAR_DL_PAGING_MATCH, VAR_DL_PLAIN,
                         VAR_DL_REPLAYED, compile_predicate, split_guard)

NONE_MSG = "none"

TURN_MME = "mme"
TURN_ADV_DL = "adv_dl"
TURN_UE = "ue"
TURN_ADV_UL = "adv_ul"
_TURNS = (TURN_MME, TURN_ADV_DL, TURN_UE, TURN_ADV_UL)

#: SQN relation of a delivered authentication_request to the USIM state.
SQN_FRESH = "fresh"
SQN_EQUAL = "equal"
SQN_STALE_IN = "stale_in"       # stale but its IND slot still accepts
SQN_STALE_OUT = "stale_out"     # stale and rejected by the array
SQN_RELATIONS = (SQN_FRESH, SQN_EQUAL, SQN_STALE_IN, SQN_STALE_OUT)

#: NAS COUNT relation of a delivered protected message.
COUNT_FRESH = "fresh"
COUNT_STALE_LAST = "stale_last"  # equals the last accepted COUNT
COUNT_STALE_OLD = "stale_old"
COUNT_RELATIONS = (COUNT_FRESH, COUNT_STALE_LAST, COUNT_STALE_OLD)


@dataclass(frozen=True)
class Refinement:
    """One CEGAR refinement: strip or constrain an adversary capability.

    Kinds:

    - ``no_forge`` — injections of ``message`` can no longer claim a
      valid MAC;
    - ``no_replay`` — the replay command for ``message`` is removed;
    - ``replay_needs_capture`` — ``message`` may only be replayed after
      the network genuinely transmitted it (a ``sent_<m>`` history bit
      guards the command);
    - ``no_inject_ul`` — the uplink injection of ``message`` is removed.
    """

    kind: str
    message: str


@dataclass
class ThreatConfig:
    """Property-guided scoping of the adversary.

    Every property in the catalog declares the messages its adversary
    needs to replay/inject; keeping these sets tight keeps the product
    state space small (the paper's properties likewise each exercise one
    procedure).
    """

    #: downlink messages the adversary may replay from capture
    replay_dl: Tuple[str, ...] = ()
    #: downlink messages the adversary may inject/forge
    inject_dl: Tuple[str, ...] = ()
    #: uplink messages the adversary may inject (e.g. attach_request for
    #: the P1 capture phase)
    inject_ul: Tuple[str, ...] = ()
    #: whether the adversary may drop messages in either direction
    allow_drop: bool = True
    #: UE-internal triggers enabled in the model
    internal_triggers: Tuple[str, ...] = ("internal_power_on",)
    #: accumulated CEGAR refinements
    refinements: Tuple[Refinement, ...] = ()

    def refined(self, refinement: Refinement) -> "ThreatConfig":
        return ThreatConfig(
            replay_dl=self.replay_dl, inject_dl=self.inject_dl,
            inject_ul=self.inject_ul, allow_drop=self.allow_drop,
            internal_triggers=self.internal_triggers,
            refinements=self.refinements + (refinement,),
        )

    def _has(self, kind: str, message: str) -> bool:
        return any(r.kind == kind and r.message == message
                   for r in self.refinements)

    def forbids_forge(self, message: str) -> bool:
        return self._has("no_forge", message)

    def forbids_replay(self, message: str) -> bool:
        return self._has("no_replay", message)

    def requires_capture(self, message: str) -> bool:
        return self._has("replay_needs_capture", message)

    def forbids_inject_ul(self, message: str) -> bool:
        return self._has("no_inject_ul", message)


def _eq(variable: str, value) -> Compare:
    return Compare(variable, "=", value)


class ThreatInstrumentor:
    """Builds IMP^mu from the two machines and a threat configuration."""

    def __init__(self, ue_fsm: FiniteStateMachine,
                 mme_fsm: FiniteStateMachine,
                 config: Optional[ThreatConfig] = None):
        self.ue_fsm = ue_fsm
        self.mme_fsm = mme_fsm
        self.config = config or ThreatConfig()
        self._ue_guards: List[Expr] = []
        self._mme_guards: List[Expr] = []

    # ------------------------------------------------------------------
    def build(self, name: str = "IMP") -> Model:
        with obs.span("threat.instrument", model=name) as span:
            model = self._build(name)
        obs.count("threat.models_built")
        obs.observe("threat.build_seconds", span.duration)
        obs.gauge_max("threat.model_commands", len(model.commands))
        return model

    def _build(self, name: str) -> Model:
        variables = [
            Variable("turn", _TURNS),
            Variable("ue_state", tuple(sorted(self.ue_fsm.states))),
            Variable("mme_state", tuple(sorted(self.mme_fsm.states))),
            Variable("chan_dl", self._dl_domain()),
            Variable("chan_ul", self._ul_domain()),
            Variable(VAR_DL_MAC, (0, 1)),
            Variable(VAR_DL_PLAIN, (0, 1)),
            Variable(VAR_DL_REPLAYED, (0, 1)),
            Variable("dl_injected", (0, 1)),
            Variable("ul_injected", (0, 1)),
            Variable(VAR_DL_PAGING_MATCH, (0, 1)),
            Variable("dl_sqn_rel", SQN_RELATIONS),
            Variable("dl_count_rel", COUNT_RELATIONS),
        ]
        init = {
            "turn": TURN_UE,
            "ue_state": self.ue_fsm.initial_state,
            "mme_state": self.mme_fsm.initial_state,
            "chan_dl": NONE_MSG, "chan_ul": NONE_MSG,
            VAR_DL_MAC: 0, VAR_DL_PLAIN: 0, VAR_DL_REPLAYED: 0,
            "dl_injected": 0, "ul_injected": 0,
            VAR_DL_PAGING_MATCH: 0,
            "dl_sqn_rel": SQN_FRESH, "dl_count_rel": COUNT_FRESH,
        }
        for message in self._tracked_captures():
            variables.append(Variable(f"sent_{message}", (0, 1)))
            init[f"sent_{message}"] = 0

        model = Model(name=name, variables=variables, init=init)
        self._ue_guards = []
        self._mme_guards = []
        self._add_ue_commands(model)
        self._add_mme_commands(model)
        self._add_skip_commands(model)
        self._add_adversary_commands(model)
        return model

    # ------------------------------------------------------------------
    # Domains
    # ------------------------------------------------------------------
    def _tracked_captures(self) -> List[str]:
        """Session-scope replay messages needing a ``sent_`` history bit."""
        return [m for m in self.config.replay_dl
                if c.REPLAY_SCOPE.get(m, "session") == "session"]

    def _dl_domain(self) -> Tuple[str, ...]:
        messages = {NONE_MSG}
        messages.update(action for t in self.mme_fsm.transitions
                        for action in t.actions if action != NULL_ACTION)
        messages.update(self.config.replay_dl)
        messages.update(self.config.inject_dl)
        messages.update(t.trigger for t in self.ue_fsm.transitions
                        if not t.trigger.startswith("internal_"))
        return tuple(sorted(messages))

    def _ul_domain(self) -> Tuple[str, ...]:
        messages = {NONE_MSG}
        messages.update(action for t in self.ue_fsm.transitions
                        for action in t.actions if action != NULL_ACTION)
        messages.update(self.config.inject_ul)
        messages.update(t.trigger for t in self.mme_fsm.transitions
                        if not t.trigger.startswith("internal_"))
        return tuple(sorted(messages))

    # ------------------------------------------------------------------
    # UE commands
    # ------------------------------------------------------------------
    def _add_ue_commands(self, model: Model) -> None:
        for index, transition in enumerate(self.ue_fsm.transitions):
            trigger, predicates = split_guard(transition.conditions)
            if predicates.get("algo_ok") == "0":
                continue  # algorithm choice is not modelled
            internal = trigger.startswith("internal_")
            if internal and trigger not in self.config.internal_triggers:
                continue

            parts: List[Expr] = [_eq("ue_state", transition.source)]
            if internal:
                parts.append(_eq("chan_dl", NONE_MSG))
            else:
                parts.append(_eq("chan_dl", trigger))
            for pred_name, pred_value in sorted(predicates.items()):
                compiled = compile_predicate(pred_name, pred_value)
                if compiled is not None:
                    parts.append(compiled)
            guard = conjoin(parts)
            self._ue_guards.append(guard)

            updates: Dict[str, object] = {
                "ue_state": transition.target,
                "turn": TURN_ADV_UL,
            }
            if not internal:
                updates["chan_dl"] = NONE_MSG
            action = next((a for a in transition.actions
                           if a != NULL_ACTION), None)
            if action is not None:
                updates["chan_ul"] = action
                updates["ul_injected"] = 0
            model.add_command(f"ue_t{index}_{trigger}",
                              And(_eq("turn", TURN_UE), guard), updates)

    # ------------------------------------------------------------------
    # MME commands
    # ------------------------------------------------------------------
    def _add_mme_commands(self, model: Model) -> None:
        tracked = set(self._tracked_captures())
        for index, transition in enumerate(self.mme_fsm.transitions):
            trigger, _ = split_guard(transition.conditions)
            internal = trigger.startswith("internal_")
            parts: List[Expr] = [_eq("mme_state", transition.source)]
            if internal:
                parts.append(_eq("chan_ul", NONE_MSG))
            else:
                parts.append(_eq("chan_ul", trigger))
            guard = conjoin(parts)
            self._mme_guards.append(guard)

            updates: Dict[str, object] = {
                "mme_state": transition.target,
                "turn": TURN_ADV_DL,
            }
            if not internal:
                updates["chan_ul"] = NONE_MSG
            action = next((a for a in transition.actions
                           if a != NULL_ACTION), None)
            if action is not None:
                updates["chan_dl"] = action
                self._honest_send_metadata(action, updates)
                if action in tracked:
                    updates[f"sent_{action}"] = 1
            model.add_command(f"mme_t{index}_{trigger}",
                              And(_eq("turn", TURN_MME), guard), updates)

    @staticmethod
    def _honest_send_metadata(action: str,
                              updates: Dict[str, object]) -> None:
        """Delivery metadata for a genuinely network-originated message."""
        updates[VAR_DL_REPLAYED] = 0
        updates["dl_injected"] = 0
        updates["dl_sqn_rel"] = SQN_FRESH
        updates["dl_count_rel"] = COUNT_FRESH
        updates[VAR_DL_PAGING_MATCH] = 1  # the network pages its own UE
        if action in c.PLAIN_DOWNLINK:
            updates[VAR_DL_PLAIN] = 1
            updates[VAR_DL_MAC] = \
                1 if action == c.AUTHENTICATION_REQUEST else 0
        else:
            updates[VAR_DL_PLAIN] = 0
            updates[VAR_DL_MAC] = 1

    # ------------------------------------------------------------------
    # Deadlock-freedom: skip commands
    # ------------------------------------------------------------------
    def _add_skip_commands(self, model: Model) -> None:
        """Fallbacks so the turn always advances.

        The skip fires when *no* transition (including its data guard)
        matches the pending stimulus: the implementation discards the
        message without reaction, as the handlers do for unmatched input.
        """
        ue_any = Or(*self._ue_guards) if self._ue_guards else TRUE
        model.add_command(
            "ue_skip", And(_eq("turn", TURN_UE), Not(ue_any)),
            {"chan_dl": NONE_MSG, "turn": TURN_ADV_UL})
        mme_any = Or(*self._mme_guards) if self._mme_guards else TRUE
        model.add_command(
            "mme_skip", And(_eq("turn", TURN_MME), Not(mme_any)),
            {"chan_ul": NONE_MSG, "turn": TURN_ADV_DL})

    # ------------------------------------------------------------------
    # Adversary commands
    # ------------------------------------------------------------------
    def _add_adversary_commands(self, model: Model) -> None:
        cfg = self.config
        # Downlink direction -------------------------------------------------
        model.add_command("adv_pass_dl", _eq("turn", TURN_ADV_DL),
                          {"turn": TURN_UE})
        if cfg.allow_drop:
            model.add_command(
                "adv_drop_dl",
                And(_eq("turn", TURN_ADV_DL),
                    Not(_eq("chan_dl", NONE_MSG))),
                {"chan_dl": NONE_MSG, "turn": TURN_UE})
        tracked = set(self._tracked_captures())
        for message in cfg.replay_dl:
            if cfg.forbids_replay(message):
                continue
            guard: Expr = _eq("turn", TURN_ADV_DL)
            if message in tracked and cfg.requires_capture(message):
                guard = And(guard, _eq(f"sent_{message}", 1))
            updates: Dict[str, object] = {
                "chan_dl": message, VAR_DL_REPLAYED: 1,
                "dl_injected": 0, VAR_DL_MAC: 1, "turn": TURN_UE,
                VAR_DL_PLAIN: 1 if message in c.PLAIN_DOWNLINK else 0,
                VAR_DL_PAGING_MATCH: Choice(0, 1),
            }
            if message == c.AUTHENTICATION_REQUEST:
                updates["dl_sqn_rel"] = Choice(*SQN_RELATIONS)
            if message in c.PROTECTED_DOWNLINK:
                updates["dl_count_rel"] = Choice(*COUNT_RELATIONS)
            model.add_command(f"adv_replay_dl_{message}", guard, updates)
        for message in cfg.inject_dl:
            mac_update: object = Choice(0, 1)
            if cfg.forbids_forge(message):
                mac_update = 0
            updates = {
                "chan_dl": message, VAR_DL_REPLAYED: 0,
                "dl_injected": 1, VAR_DL_MAC: mac_update,
                VAR_DL_PAGING_MATCH: Choice(0, 1),
                "turn": TURN_UE,
            }
            if message in c.PROTECTED_DOWNLINK:
                updates[VAR_DL_PLAIN] = Choice(0, 1)
                updates["dl_count_rel"] = Choice(*COUNT_RELATIONS)
            else:
                updates[VAR_DL_PLAIN] = 1
            if message == c.AUTHENTICATION_REQUEST:
                updates["dl_sqn_rel"] = Choice(*SQN_RELATIONS)
            model.add_command(f"adv_inject_dl_{message}",
                              _eq("turn", TURN_ADV_DL), updates)

        # Uplink direction ---------------------------------------------------
        model.add_command("adv_pass_ul", _eq("turn", TURN_ADV_UL),
                          {"turn": TURN_MME})
        if cfg.allow_drop:
            model.add_command(
                "adv_drop_ul",
                And(_eq("turn", TURN_ADV_UL),
                    Not(_eq("chan_ul", NONE_MSG))),
                {"chan_ul": NONE_MSG, "turn": TURN_MME})
        for message in cfg.inject_ul:
            if cfg.forbids_inject_ul(message):
                continue
            model.add_command(
                f"adv_inject_ul_{message}",
                _eq("turn", TURN_ADV_UL),
                {"chan_ul": message, "ul_injected": 1, "turn": TURN_MME})


def build_threat_model(ue_fsm: FiniteStateMachine,
                       mme_fsm: FiniteStateMachine,
                       config: Optional[ThreatConfig] = None,
                       name: str = "IMP") -> Model:
    """Convenience wrapper: instrument and build in one call."""
    return ThreatInstrumentor(ue_fsm, mme_fsm, config).build(name)
