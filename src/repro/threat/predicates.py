"""Semantic mapping of extracted guard predicates to model expressions.

The extracted FSM's guard predicates are implementation log variables
(``mac_valid=1``, ``sqn_fresh=0``, ``count_higher=1`` ...).  The threat
instrumentor gives each a *definition* over the abstract model's state
variables.  Crucially these definitions are implementation-independent —
they state what the relation *means* (e.g. ``sqn_fresh`` ⇔ the received
SQN is strictly above every previously accepted one); which relations gate
acceptance is encoded by the extracted FSM itself, so implementation
differences survive the compilation.

The model represents protocol data *relationally*: ``dl_sqn_rel`` is the
relation of a delivered authentication SQN to the USIM state (fresh /
equal / stale-but-in-window / stale-out-of-window) and ``dl_count_rel``
the relation of a delivered NAS COUNT to the receiver's window (fresh /
equals-last-accepted / older).  The check-input predicates logged by the
implementations map directly onto these relations.

Predicates marked :data:`MARKER` carry bookkeeping (the gate's ``accept``
flag) and are consumed for transition *effects* rather than guards;
predicates marked :data:`DROPPED` are informational only.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..mc.expr import Compare, Expr, Not, Or

# Model variable names the predicate definitions reference.
VAR_DL_MAC = "dl_mac_valid"
VAR_DL_PLAIN = "dl_plain"
VAR_DL_REPLAYED = "dl_replayed"
VAR_DL_SQN_REL = "dl_sqn_rel"
VAR_DL_COUNT_REL = "dl_count_rel"
VAR_DL_PAGING_MATCH = "dl_paging_match"


class PredicateError(Exception):
    """Raised for guard predicates with no semantic mapping."""


def _flag(variable: str, value: str) -> Expr:
    return Compare(variable, "=", int(value))


def _rel(variable: str, value: str, *relations: str) -> Expr:
    """``variable`` is one of ``relations`` (negated when value is 0)."""
    parts = [Compare(variable, "=", relation) for relation in relations]
    base = parts[0] if len(parts) == 1 else Or(*parts)
    return base if value == "1" else Not(base)


#: predicate name -> compiler
_DEFINITIONS = {
    "mac_valid": lambda value: _flag(VAR_DL_MAC, value),
    "plain_hdr": lambda value: _flag(VAR_DL_PLAIN, value),
    "paging_match": lambda value: _flag(VAR_DL_PAGING_MATCH, value),
    # TS 33.102 Annex C: fresh = strictly above everything accepted;
    # in-window = fresh, or stale but its IND slot still accepts it.
    "sqn_fresh": lambda value: _rel(VAR_DL_SQN_REL, value, "fresh"),
    "sqn_equal": lambda value: _rel(VAR_DL_SQN_REL, value, "equal"),
    "sqn_in_window": lambda value: _rel(VAR_DL_SQN_REL, value,
                                        "fresh", "stale_in"),
    # TS 24.301 replay window: higher = COUNT at/above the expected next;
    # last = exactly the most recently accepted COUNT.
    "count_higher": lambda value: _rel(VAR_DL_COUNT_REL, value, "fresh"),
    "count_last": lambda value: _rel(VAR_DL_COUNT_REL, value,
                                     "stale_last"),
}

#: effect markers: consumed by the compiler, never part of a guard
MARKER = frozenset({"accept"})

#: informational predicates whose constraint is already captured elsewhere
#: (``replay_ok`` is the implementation's *verdict*; the gating relations
#: count_higher/count_last carry the semantics; the algorithm choice is
#: not modelled, transitions with algo_ok=0 are skipped by the compiler).
DROPPED = frozenset({"replay_ok", "algo_ok"})


def compile_predicate(name: str, value: str) -> Optional[Expr]:
    """Compile one ``name=value`` predicate; ``None`` when non-guarding.

    Raises :class:`PredicateError` for unknown predicates: silently
    dropping an unknown constraint would weaken the guard unsoundly.
    """
    if name in MARKER or name in DROPPED:
        return None
    try:
        return _DEFINITIONS[name](value)
    except KeyError:
        raise PredicateError(
            f"no semantic mapping for guard predicate {name}={value}; "
            f"extend repro.threat.predicates._DEFINITIONS") from None


def split_guard(conditions: Tuple[str, ...]
                ) -> Tuple[str, Dict[str, str]]:
    """Split FSM conditions into (trigger, predicate dict)."""
    trigger = conditions[0]
    predicates: Dict[str, str] = {}
    for condition in conditions[1:]:
        name, _, value = condition.partition("=")
        predicates[name] = value
    return trigger, predicates
