"""Generate ``docs/CLI.md`` from the CLI's own metadata.

The exit-code table and the subcommand list render from
:data:`repro.cli.EXIT_CODE_MEANINGS` and the argparse parser itself, so
the document cannot drift from the code.  Run as
``python -m repro.docgen`` after editing the CLI; ``--check`` exits
non-zero when the checked-in document is stale (the CI static-analysis
job runs it, alongside ``tests/test_cli.py``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .cli import EXIT_CODE_MEANINGS, build_parser


def render() -> str:
    """The full markdown document as a string."""
    lines: List[str] = [
        "# Command-line interface",
        "",
        "Generated from `repro.cli` (regenerate with "
        "`python -m repro.docgen`).",
        "Every subcommand that emits a result supports `--json`; every "
        "JSON",
        "payload carries the wire-format `schema_version` "
        "(see `docs/api.md`).",
        "",
        "## Subcommands",
        "",
    ]
    parser = build_parser()
    subparsers = next(action for action in parser._actions
                      if isinstance(action, argparse._SubParsersAction))
    for name, sub in subparsers.choices.items():
        help_text = next((a.help for a in subparsers._choices_actions
                          if a.dest == name), "")
        lines.append(f"- `repro {name}` — {help_text};")
    lines[-1] = lines[-1].rstrip(";") + "."
    lines += [
        "",
        "## Exit codes",
        "",
        "| code | name | meaning |",
        "|---|---|---|",
    ]
    for code in sorted(EXIT_CODE_MEANINGS):
        name, meaning = EXIT_CODE_MEANINGS[code]
        lines.append(f"| {code} | `{name}` | {meaning} |")
    lines += [
        "",
        "`repro analyze` maps the report to one exit code: 4 if any "
        "property",
        "row is a checker error, else 0 (violations are data, not a "
        "process",
        "failure — consumers read the JSON).  `repro verify` maps its "
        "single",
        "verdict through the same table; `repro attack` exits 1 when the",
        "attack succeeds; `repro extract` exits 1 on an unstable "
        "consensus.",
        "",
    ]
    return "\n".join(lines)


DEFAULT_OUTPUT = "docs/CLI.md"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.docgen",
        description="regenerate docs/CLI.md from the CLI metadata")
    parser.add_argument("--check", action="store_true",
                        help="do not write; exit 1 if the checked-in "
                             "document is stale")
    parser.add_argument("-o", "--output", metavar="FILE",
                        default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    text = render()
    if args.check:
        try:
            with open(args.output) as handle:
                current = handle.read()
        except OSError as exc:
            print(f"{args.output} unreadable: {exc}", file=sys.stderr)
            return 1
        if current != text:
            print(f"{args.output} is stale; regenerate with "
                  f"`python -m repro.docgen`", file=sys.stderr)
            return 1
        print(f"{args.output} is up to date")
        return 0
    with open(args.output, "w") as handle:
        handle.write(text)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
