"""Generate ``docs/CLI.md`` and ``docs/lint.md`` from live metadata.

The exit-code table and the subcommand list render from
:data:`repro.cli.EXIT_CODE_MEANINGS` and the argparse parser itself,
and the lint rule table renders from :data:`repro.lint.findings.RULES`
plus the taint source/sink/sanctioned-flow catalogs, so neither
document can drift from the code.  Run as ``python -m repro.docgen``
after editing the CLI or the rule catalog; ``--check`` exits non-zero
when either checked-in document is stale (the CI static-analysis job
runs it, alongside ``tests/test_cli.py``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .cli import EXIT_CODE_MEANINGS, build_parser


def _describe_argument(action: argparse.Action) -> str:
    """One bullet for one argparse action (flag or positional)."""
    if action.option_strings:
        name = ", ".join(f"`{opt}`" for opt in action.option_strings)
        if action.nargs != 0:
            metavar = action.metavar or action.dest.upper()
            name += f" `{metavar}`"
    else:
        name = f"`{action.metavar or action.dest}`"
        if action.choices:
            name += " (" + " | ".join(f"`{c}`"
                                      for c in action.choices) + ")"
    help_text = " ".join((action.help or "").split())
    return f"- {name} — {help_text}" if help_text else f"- {name}"


def render() -> str:
    """The full markdown document as a string."""
    lines: List[str] = [
        "# Command-line interface",
        "",
        "Generated from `repro.cli` (regenerate with "
        "`python -m repro.docgen`).",
        "Every subcommand that emits a result supports `--json`; every "
        "JSON",
        "payload carries the wire-format `schema_version` "
        "(see `docs/api.md`).",
        "",
        "## Subcommands",
        "",
    ]
    parser = build_parser()
    subparsers = next(action for action in parser._actions
                      if isinstance(action, argparse._SubParsersAction))
    for name, sub in subparsers.choices.items():
        help_text = next((a.help for a in subparsers._choices_actions
                          if a.dest == name), "")
        lines.append(f"- `repro {name}` — {help_text};")
    lines[-1] = lines[-1].rstrip(";") + "."
    for name, sub in subparsers.choices.items():
        help_text = next((a.help for a in subparsers._choices_actions
                          if a.dest == name), "")
        lines += ["", f"### `repro {name}`", "", f"{help_text}.", ""]
        for action in sub._actions:
            if isinstance(action, argparse._HelpAction):
                continue
            lines.append(_describe_argument(action))
    lines += [
        "",
        "## Exit codes",
        "",
        "| code | name | meaning |",
        "|---|---|---|",
    ]
    for code in sorted(EXIT_CODE_MEANINGS):
        name, meaning = EXIT_CODE_MEANINGS[code]
        lines.append(f"| {code} | `{name}` | {meaning} |")
    lines += [
        "",
        "`repro analyze` maps the report to one exit code: 4 if any "
        "property",
        "row is a checker error, else 0 (violations are data, not a "
        "process",
        "failure — consumers read the JSON).  `repro verify` maps its "
        "single",
        "verdict through the same table; `repro attack` exits 1 when the",
        "attack succeeds; `repro extract` exits 1 on an unstable "
        "consensus.",
        "",
    ]
    return "\n".join(lines)


def render_lint() -> str:
    """``docs/lint.md``: the PCL0xx rule table and the taint catalogs."""
    from .lint.findings import RULES
    from .lint.taint import (FLAG_TO_ATTACK, SANCTIONED_WIRE_FLOWS,
                             SANITIZERS, SELF_ATTR_SOURCES,
                             TAINT_VISIBLE_FLAGS)

    lines: List[str] = [
        "# Static analysis rules",
        "",
        "Generated from `repro.lint` (regenerate with "
        "`python -m repro.docgen`;",
        "the same table prints from `repro lint --rules`).  Warnings and",
        "errors gate `repro lint` with exit code 5; info findings are",
        "expected-behaviour annotations and never gate.",
        "",
        "## Rule table",
        "",
        "| id | family | severity | summary |",
        "|---|---|---|---|",
    ]
    for identifier in sorted(RULES):
        rule = RULES[identifier]
        lines.append(f"| {rule.identifier} | {rule.family} | "
                     f"{rule.severity.value} | {rule.summary} |")
    lines += [
        "",
        "## Taint catalogs (PCL04x)",
        "",
        "The taint family is an interprocedural dataflow pass over the",
        "implementation source.  Its behaviour is fully declarative:",
        "",
        "### Sources (`self.` attribute paths)",
        "",
        "| path | labels |",
        "|---|---|",
    ]
    for path in sorted(SELF_ATTR_SOURCES):
        labels = ", ".join(sorted(SELF_ATTR_SOURCES[path])) or "—"
        lines.append(f"| `self.{path}` | {labels} |")
    lines += [
        "",
        "### Sanitizers (callee name → result labels)",
        "",
        "| callee | result labels |",
        "|---|---|",
    ]
    for name in sorted(SANITIZERS):
        labels = ", ".join(sorted(SANITIZERS[name])) or "(clean)"
        lines.append(f"| `{name}(...)` | {labels} |")
    lines += [
        "",
        "### Standards-sanctioned plaintext flows",
        "",
        "Identity/SQN material on these (message, field) pairs is",
        "mandated protocol behaviour and never flagged:",
        "",
    ]
    for message, field in sorted(SANCTIONED_WIRE_FLOWS):
        lines.append(f"- `{message}.{field}`")
    lines += [
        "",
        "### Cross-examination contract",
        "",
        "Seeded policy flags map to Table I attacks; the taint-visible",
        "subset must be re-found statically as PCL043 on the persona",
        "that carries the flag, and static/dynamic disagreements",
        "surface as PCL045:",
        "",
        "| flag | attack | taint-visible |",
        "|---|---|---|",
    ]
    for flag in sorted(FLAG_TO_ATTACK):
        visible = "yes" if flag in TAINT_VISIBLE_FLAGS else "no"
        lines.append(f"| `{flag}` | {FLAG_TO_ATTACK[flag]} | {visible} |")
    lines.append("")
    return "\n".join(lines)


DEFAULT_OUTPUT = "docs/CLI.md"
LINT_OUTPUT = "docs/lint.md"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.docgen",
        description="regenerate docs/CLI.md and docs/lint.md from "
                    "live metadata")
    parser.add_argument("--check", action="store_true",
                        help="do not write; exit 1 if a checked-in "
                             "document is stale")
    parser.add_argument("-o", "--output", metavar="FILE",
                        default=DEFAULT_OUTPUT)
    parser.add_argument("--lint-output", metavar="FILE",
                        default=LINT_OUTPUT)
    args = parser.parse_args(argv)

    documents = ((args.output, render()),
                 (args.lint_output, render_lint()))
    if args.check:
        for path, text in documents:
            try:
                with open(path) as handle:
                    current = handle.read()
            except OSError as exc:
                print(f"{path} unreadable: {exc}", file=sys.stderr)
                return 1
            if current != text:
                print(f"{path} is stale; regenerate with "
                      f"`python -m repro.docgen`", file=sys.stderr)
                return 1
            print(f"{path} is up to date")
        return 0
    for path, text in documents:
        with open(path, "w") as handle:
            handle.write(text)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
