"""``repro.faults`` — the deterministic fault-injection harness.

Robustness engineering needs reproducible failures: the engine's crash
isolation, per-group timeouts and serial-fallback paths are only
testable if a worker can be made to raise, hang or die *on demand, at a
precise point, every time*.  This module provides that as a tiny,
dependency-free layer:

- a :class:`FaultSpec` names a *site* (a string like
  ``"engine.verify_group"``), an optional *key* (e.g. a property
  identifier, so only the group that verifies ``SEC-01`` is hit), a
  *kind* (``raise`` / ``hang`` / ``exit``) and the 1-based call index
  ``nth`` at which it fires (``nth=0`` fires on *every* matching call —
  e.g. ``channel.impair@downlink:attach_accept:raise:0:all`` suppresses
  a downlink message persistently to drive a timer to its abort limit);
- a :class:`FaultPlan` bundles specs and is installed process-wide
  (:func:`install`); pool workers re-install the parent's plan and
  reset their call counters in the pool initializer, so the k-th call
  is counted per process and re-fires deterministically in every
  rebuilt worker;
- production code marks injection points with :func:`trip`, which is a
  single ``is None`` check when no plan is installed — zero overhead in
  normal operation.

Scoping: a spec with ``scope="worker"`` (the default) only fires inside
pool worker processes, never in the main process — that is what lets the
engine's in-process serial fallback *complete* a group whose worker
attempts persistently crashed or hung.  ``scope="all"`` fires
everywhere, which exercises the catch-at-the-group-boundary path that
turns checker exceptions into ``Verdict.ERROR`` results.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

KIND_RAISE = "raise"
KIND_HANG = "hang"
KIND_EXIT = "exit"
KINDS = (KIND_RAISE, KIND_HANG, KIND_EXIT)

SCOPE_ALL = "all"
SCOPE_WORKER = "worker"
SCOPES = (SCOPE_ALL, SCOPE_WORKER)

#: Exit status a ``kind="exit"`` fault kills its process with (unless
#: the spec overrides it) — distinctive enough to spot in pool reports.
DEFAULT_EXIT_CODE = 13

#: How long a ``kind="hang"`` fault sleeps by default.  Finite so a
#: stray hang cannot wedge a test run forever; long enough to exceed any
#: sane ``group_timeout_seconds``.
DEFAULT_HANG_SECONDS = 30.0


class FaultSpecError(ValueError):
    """Raised for malformed fault specifications."""


class InjectedFault(RuntimeError):
    """The exception a ``kind="raise"`` fault throws at its site."""


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: fire ``kind`` on the ``nth`` call to
    ``site`` (optionally restricted to calls carrying ``key``)."""

    site: str
    kind: str
    nth: int = 1
    key: Optional[str] = None
    scope: str = SCOPE_WORKER
    exit_code: int = DEFAULT_EXIT_CODE
    hang_seconds: float = DEFAULT_HANG_SECONDS

    def __post_init__(self):
        if not self.site:
            raise FaultSpecError("fault site must be non-empty")
        if self.kind not in KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; one of {KINDS}")
        if self.scope not in SCOPES:
            raise FaultSpecError(
                f"unknown fault scope {self.scope!r}; one of {SCOPES}")
        if self.nth < 0:
            raise FaultSpecError(
                "nth is 1-based and must be >= 1 (or 0 for every call)")

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the CLI form ``site[@key]:kind[:nth[:scope]]``.

        Examples: ``engine.verify_group@SEC-01:exit:1``,
        ``cegar.iteration:raise:3:all``, ``testbed.run_attack@P1:hang``.

        The key may itself contain colons (the ``channel.impair`` site
        keys faults by ``direction:message``), so the spec is split at
        the first component that names a fault kind.
        """
        fragments = text.split(":")
        kind_index = next(
            (index for index, fragment in enumerate(fragments[1:], 1)
             if fragment in KINDS), None)
        if kind_index is None or len(fragments) - kind_index > 3:
            raise FaultSpecError(
                f"bad fault spec {text!r}; expected "
                f"site[@key]:kind[:nth[:scope]]")
        parts = ([":".join(fragments[:kind_index])]
                 + fragments[kind_index:])
        site_part, kind = parts[0], parts[1]
        key: Optional[str] = None
        if "@" in site_part:
            site_part, key = site_part.split("@", 1)
        nth = 1
        if len(parts) >= 3 and parts[2]:
            try:
                nth = int(parts[2])
            except ValueError:
                raise FaultSpecError(
                    f"bad call index {parts[2]!r} in {text!r}") from None
        scope = parts[3] if len(parts) == 4 else SCOPE_WORKER
        return cls(site=site_part, kind=kind, nth=nth, key=key,
                   scope=scope)

    def to_dict(self) -> Dict:
        return {"site": self.site, "kind": self.kind, "nth": self.nth,
                "key": self.key, "scope": self.scope,
                "exit_code": self.exit_code,
                "hang_seconds": self.hang_seconds}

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultSpec":
        return cls(**payload)

    def describe(self) -> str:
        target = f"{self.site}@{self.key}" if self.key else self.site
        return f"{target}:{self.kind}:{self.nth}:{self.scope}"


@dataclass(frozen=True)
class FaultPlan:
    """An ordered bundle of fault specs, installed process-wide."""

    specs: Tuple[FaultSpec, ...] = ()

    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultPlan":
        return cls(specs=tuple(specs))

    @classmethod
    def parse(cls, texts: Sequence[str]) -> "FaultPlan":
        return cls(specs=tuple(FaultSpec.parse(text) for text in texts))

    def to_dict(self) -> Dict:
        return {"specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, payload: Dict) -> "FaultPlan":
        return cls(specs=tuple(FaultSpec.from_dict(item)
                               for item in payload.get("specs", [])))

    def describe(self) -> str:
        return ", ".join(spec.describe() for spec in self.specs)


# ---------------------------------------------------------------------------
# Process-global runtime state
# ---------------------------------------------------------------------------
_lock = threading.Lock()
_plan: Optional[FaultPlan] = None
#: per-spec call counters, keyed by the spec's position in the plan
_counts: Dict[int, int] = {}


def install(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` process-wide (``None`` uninstalls) and reset
    call counters, so installation marks time zero deterministically."""
    global _plan
    with _lock:
        _plan = plan
        _counts.clear()


def installed() -> Optional[FaultPlan]:
    return _plan


def clear() -> None:
    """Uninstall any plan and forget all call counts."""
    install(None)


def reset_counters() -> None:
    """Zero the call counters without uninstalling the plan (used by
    pool workers: a fork inherits the parent's counts)."""
    with _lock:
        _counts.clear()


def call_counts() -> Dict[str, int]:
    """Current per-spec call counts (``describe() -> count``; tests)."""
    with _lock:
        plan = _plan
        if plan is None:
            return {}
        return {plan.specs[index].describe(): count
                for index, count in _counts.items()}


def _in_worker_process() -> bool:
    return multiprocessing.parent_process() is not None


def trip(site: str, key: Optional[str] = None) -> None:
    """Mark an injection point; fires any matching installed fault.

    Counting is deterministic per process: every call matching a spec's
    ``(site, key)`` filter increments that spec's private counter, and
    the spec fires exactly when the counter reaches ``nth`` (in an
    allowed scope).  ``nth=0`` fires on every matching call.  No plan
    installed → one attribute read.
    """
    plan = _plan
    if plan is None:
        return
    firing: List[FaultSpec] = []
    with _lock:
        if _plan is not plan:   # racing uninstall
            return
        for index, spec in enumerate(plan.specs):
            if spec.site != site:
                continue
            if spec.key is not None and spec.key != key:
                continue
            count = _counts.get(index, 0) + 1
            _counts[index] = count
            if spec.nth != 0 and count != spec.nth:
                continue
            if spec.scope == SCOPE_WORKER and not _in_worker_process():
                continue
            firing.append(spec)
    for spec in firing:
        _fire(spec, site, key)


def _fire(spec: FaultSpec, site: str, key: Optional[str]) -> None:
    target = f"{site}@{key}" if key else site
    when = "every call" if spec.nth == 0 else f"call #{spec.nth}"
    if spec.kind == KIND_RAISE:
        raise InjectedFault(
            f"injected fault: {spec.kind} at {target} ({when})")
    if spec.kind == KIND_HANG:
        time.sleep(spec.hang_seconds)
        return
    # KIND_EXIT: die the way a segfaulting or OOM-killed checker does —
    # immediately, with no interpreter cleanup.
    os._exit(spec.exit_code)


__all__ = [
    "DEFAULT_EXIT_CODE", "DEFAULT_HANG_SECONDS", "FaultPlan", "FaultSpec",
    "FaultSpecError", "InjectedFault", "KINDS", "KIND_EXIT", "KIND_HANG",
    "KIND_RAISE", "SCOPES", "SCOPE_ALL", "SCOPE_WORKER", "call_counts",
    "clear", "install", "installed", "reset_counters", "trip",
]
