"""``repro.api`` — the supported public surface of the pipeline.

Everything a downstream consumer should import lives here, re-exported
under one roof with an explicit ``__all__``; anything *not* in this
module is an internal that may change between minor versions without
notice.  The wire-format compatibility policy for every ``to_dict()``
payload these types produce is documented in ``docs/api.md`` and
enforced by :mod:`repro.schema` (``SCHEMA_VERSION``, typed
:class:`~repro.schema.SchemaVersionError` on unknown majors).

Three usage tiers:

- **one-shot**::

      from repro.api import AnalysisConfig, ProChecker
      report = ProChecker.from_config(AnalysisConfig("srsue")).analyze()

- **batch** (one shared worker pool)::

      from repro.api import analyze_many
      reports = analyze_many(["reference", "srsue", "oai"])

- **service** (jobs over HTTP, content-addressed results)::

      from repro.api import AnalysisService, ResultStore, ServeClient

- **fuzzing** (coverage-guided deviation discovery)::

      from repro.api import FuzzConfig, run_campaign
      result = run_campaign(FuzzConfig("srsue", seed=7))
"""

from __future__ import annotations

from .core.cegar import threat_config_digest, threat_config_key
from .core.engine import AnalysisConfig, EngineError, extraction_cache
from .core.prochecker import ProChecker, ProCheckerError, analyze_many
from .core.report import AnalysisReport, PropertyResult, Verdict
from .fuzz import (Deviation, FuzzConfig, FuzzConfigError, FuzzError,
                   FuzzResult, Fuzzer, campaign_digest, run_campaign)
from .lte.channel import ChaosConfig
from .mc import (CheckRequest, CheckResult, McCacheError, McVerdictCache,
                 ModelChecker, verdict_digest)
from .obs.stats import PipelineStats
from .properties import ALL_PROPERTIES, property_by_id
from .schema import SCHEMA_VERSION, SchemaVersionError
from .serve import (AnalysisService, JobJournal, JobRecord, JobStatus,
                    JournalError, QueueFullError, ServeClient,
                    ServeClientError, ServiceDrainingError, ServiceError,
                    Watchdog, create_server)
from .store import (ResultStore, StoreError, implementation_fingerprint,
                    job_digest, job_key)

__all__ = [
    # configuration + one-shot pipeline
    "AnalysisConfig", "ProChecker", "ProCheckerError", "EngineError",
    "analyze_many", "extraction_cache", "ChaosConfig",
    # results + wire contract
    "AnalysisReport", "PropertyResult", "PipelineStats", "Verdict",
    "SCHEMA_VERSION", "SchemaVersionError",
    # property catalog
    "ALL_PROPERTIES", "property_by_id", "threat_config_key",
    "threat_config_digest",
    # model checking
    "CheckRequest", "CheckResult", "ModelChecker",
    "McCacheError", "McVerdictCache", "verdict_digest",
    # content-addressed result store
    "ResultStore", "StoreError", "implementation_fingerprint",
    "job_digest", "job_key",
    # service mode (+ resilience layer: journal, watchdog, backpressure)
    "AnalysisService", "JobJournal", "JobRecord", "JobStatus",
    "JournalError", "QueueFullError", "ServeClient", "ServeClientError",
    "ServiceDrainingError", "ServiceError", "Watchdog", "create_server",
    # coverage-guided fuzzing
    "Deviation", "FuzzConfig", "FuzzConfigError", "FuzzError",
    "FuzzResult", "Fuzzer", "campaign_digest", "run_campaign",
]
