"""ProChecker's core: the CEGAR loop and the end-to-end pipeline."""

from .cegar import (CegarResult, CounterexampleValidator, StepVerdict,
                    check_with_cegar, harvestable_messages, message_term)
from .report import (AnalysisReport, PropertyResult, VERDICT_NOT_APPLICABLE,
                     VERDICT_VERIFIED, VERDICT_VIOLATED)
from .prochecker import ProChecker, ProCheckerError, analyze_implementation
from .dossier import (AttackFinding, Dossier, build_dossier,
                      render_markdown)

__all__ = [
    "CegarResult", "CounterexampleValidator", "StepVerdict",
    "check_with_cegar", "harvestable_messages", "message_term",
    "AnalysisReport", "PropertyResult", "VERDICT_NOT_APPLICABLE",
    "VERDICT_VERIFIED", "VERDICT_VIOLATED",
    "ProChecker", "ProCheckerError", "analyze_implementation",
    "AttackFinding", "Dossier", "build_dossier", "render_markdown",
]
