"""ProChecker's core: the CEGAR loop, the engine, the end-to-end pipeline."""

from .cegar import (CegarContext, CegarResult, CounterexampleValidator,
                    StepVerdict, check_with_cegar, harvestable_messages,
                    message_term, threat_config_key)
from .engine import (AnalysisConfig, EngineError, ExtractionCache,
                     ExtractionRecord, ImplementationRun,
                     VerificationEngine, exception_chain,
                     extraction_cache, group_properties, run_extraction,
                     verify_one)
from .report import (AnalysisReport, PropertyResult, Verdict,
                     VERDICT_ERROR, VERDICT_NOT_APPLICABLE,
                     VERDICT_VERIFIED, VERDICT_VIOLATED)
from .prochecker import ProChecker, ProCheckerError, analyze_many
from .dossier import (AttackFinding, Dossier, build_dossier,
                      render_markdown)

__all__ = [
    "CegarContext", "CegarResult", "CounterexampleValidator", "StepVerdict",
    "check_with_cegar", "harvestable_messages", "message_term",
    "threat_config_key",
    "AnalysisConfig", "EngineError", "ExtractionCache", "ExtractionRecord",
    "ImplementationRun", "VerificationEngine", "exception_chain",
    "extraction_cache", "group_properties", "run_extraction", "verify_one",
    "AnalysisReport", "PropertyResult", "Verdict",
    "VERDICT_ERROR", "VERDICT_NOT_APPLICABLE", "VERDICT_VERIFIED",
    "VERDICT_VIOLATED",
    "ProChecker", "ProCheckerError", "analyze_many",
    "AttackFinding", "Dossier", "build_dossier", "render_markdown",
]
