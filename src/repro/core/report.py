"""Analysis reports: per-property verdicts and the Table I detection view."""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from .. import schema
from ..mc import Trace
from ..obs.stats import PipelineStats
from ..properties.spec import Property


class Verdict(str, enum.Enum):
    """The outcomes a property verification can produce.

    A ``str`` mixin keeps the enum wire- and comparison-compatible with
    the historical string verdicts (``Verdict.VERIFIED == "verified"``),
    while giving the CLI exit-code mapping and the report logic one
    typed source of truth.

    ``ERROR`` is the crash-isolation outcome: the checker itself failed
    (exception, worker crash, exhausted retries) for this property, and
    the exception chain is recorded in the result's ``evidence``.  It is
    never a statement about the implementation — the paper's Table I
    requires every property to receive *a* verdict, so an engine fault
    must not erase the other 61.
    """

    VERIFIED = "verified"
    VIOLATED = "violated"
    NOT_APPLICABLE = "not-applicable"
    ERROR = "error"


#: Deprecated string aliases, kept for callers of the pre-enum API.
VERDICT_VERIFIED = Verdict.VERIFIED
VERDICT_VIOLATED = Verdict.VIOLATED
VERDICT_NOT_APPLICABLE = Verdict.NOT_APPLICABLE
VERDICT_ERROR = Verdict.ERROR


@dataclass
class PropertyResult:
    """Outcome of verifying one property against one implementation."""

    property: Property
    outcome: Verdict
    counterexample: Optional[Trace] = None
    evidence: str = ""
    iterations: int = 0
    refinements: int = 0
    states_explored: int = 0
    elapsed_seconds: float = 0.0
    #: which engine worker produced this verdict ("MainProcess" if serial)
    worker: str = ""

    def __post_init__(self):
        self.outcome = Verdict(self.outcome)

    @property
    def verdict(self) -> str:
        """Deprecated string alias for :attr:`outcome` (pre-enum API)."""
        warnings.warn(
            "PropertyResult.verdict is deprecated; use "
            "PropertyResult.outcome (a Verdict enum) instead",
            DeprecationWarning, stacklevel=2)
        return self.outcome.value

    @property
    def violated(self) -> bool:
        return self.outcome is Verdict.VIOLATED

    def summary(self) -> str:
        extra = ""
        if self.iterations > 1:
            extra = f" ({self.iterations} CEGAR iterations)"
        return (f"{self.property.identifier}: {self.outcome.value}{extra} "
                f"[{self.elapsed_seconds:.2f}s]")

    def signature(self) -> tuple:
        """Verdict-semantic identity: what the analysis *concluded*.

        Deliberately excludes exploration effort (``states_explored``,
        ``evidence``, iteration counts): those describe *how* the
        checker reached the verdict and legitimately change when the
        engine improves (e.g. on-the-fly product search visits far
        fewer states than the materialised reference).  Two runs agree
        exactly when their signatures agree per property.
        """
        return (self.property.identifier, self.outcome.value)

    def to_dict(self) -> Dict:
        """JSON-ready representation (round-trips via :meth:`from_dict`)."""
        return schema.stamp({
            "property": self.property.identifier,
            "category": self.property.category,
            "kind": self.property.kind,
            "attack_id": self.property.attack_id,
            "verdict": self.outcome.value,
            "evidence": self.evidence,
            "iterations": self.iterations,
            "refinements": self.refinements,
            "states_explored": self.states_explored,
            "elapsed_seconds": self.elapsed_seconds,
            "worker": self.worker,
            "counterexample": (self.counterexample.to_dict()
                               if self.counterexample is not None else None),
        })

    @classmethod
    def from_dict(cls, payload: Dict) -> "PropertyResult":
        """Rebuild a result; the property is resolved from the catalog.

        Raises :class:`~repro.core.schema.SchemaVersionError` when the
        payload declares a wire-format major this reader does not know.
        """
        from ..properties import property_by_id
        schema.check(payload, "PropertyResult")
        trace = payload.get("counterexample")
        return cls(
            property=property_by_id(payload["property"]),
            outcome=Verdict(payload["verdict"]),
            counterexample=Trace.from_dict(trace) if trace else None,
            evidence=payload.get("evidence", ""),
            iterations=payload.get("iterations", 0),
            refinements=payload.get("refinements", 0),
            states_explored=payload.get("states_explored", 0),
            elapsed_seconds=payload.get("elapsed_seconds", 0.0),
            worker=payload.get("worker", ""),
        )


@dataclass
class AnalysisReport:
    """The full ProChecker run for one implementation."""

    implementation: str
    fsm_summary: Dict[str, int] = field(default_factory=dict)
    extraction_seconds: float = 0.0
    coverage_percent: float = 0.0
    conformance_cases: int = 0
    log_lines: int = 0
    results: List[PropertyResult] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: worker-pool width the engine used for the check phase
    jobs: int = 1
    #: wall-clock of the check phase alone (excludes extraction)
    verification_seconds: float = 0.0
    #: aggregated observability block (phases, counters, runtime metrics)
    stats: Optional[PipelineStats] = None
    #: consensus-extraction stability evidence (chaos runs only); not
    #: part of :meth:`verdict_signature` — link noise must never change
    #: what the analysis *concluded*, only how confident the model is
    stability: Optional[Dict] = None

    # ------------------------------------------------------------------
    def violated(self) -> List[PropertyResult]:
        return [r for r in self.results if r.violated]

    def verified(self) -> List[PropertyResult]:
        return [r for r in self.results
                if r.outcome is Verdict.VERIFIED]

    def errors(self) -> List[PropertyResult]:
        """Properties whose *checker* failed (crash-isolation outcome)."""
        return [r for r in self.results if r.outcome is Verdict.ERROR]

    def detected_attacks(self) -> Set[str]:
        """Table I view: attack ids whose property was violated."""
        return {r.property.attack_id for r in self.violated()
                if r.property.attack_id}

    def result_for(self, property_id: str) -> PropertyResult:
        for result in self.results:
            if result.property.identifier == property_id:
                return result
        raise KeyError(property_id)

    def counts(self) -> Dict[str, int]:
        return {
            "properties": len(self.results),
            "verified": len(self.verified()),
            "violated": len(self.violated()),
            "errors": len(self.errors()),
            "attacks": len(self.detected_attacks()),
        }

    def verdict_signature(self) -> tuple:
        """Canonical tuple of per-property verdicts.

        Independent of timing and of how the engine scheduled the work —
        a parallel run must produce a signature identical to a serial
        run's (the engine's determinism contract).
        """
        return tuple(result.signature() for result in self.results)

    def worker_metrics(self) -> Dict[str, Dict[str, float]]:
        """Per-worker share of the check phase (count + busy seconds)."""
        metrics: Dict[str, Dict[str, float]] = {}
        for result in self.results:
            name = result.worker or "unknown"
            entry = metrics.setdefault(
                name, {"properties": 0, "busy_seconds": 0.0})
            entry["properties"] += 1
            entry["busy_seconds"] += result.elapsed_seconds
        return metrics

    def to_dict(self) -> Dict:
        """JSON-ready representation (round-trips via :meth:`from_dict`)."""
        return schema.stamp({
            "implementation": self.implementation,
            "fsm_summary": dict(self.fsm_summary),
            "extraction_seconds": self.extraction_seconds,
            "coverage_percent": self.coverage_percent,
            "conformance_cases": self.conformance_cases,
            "log_lines": self.log_lines,
            "elapsed_seconds": self.elapsed_seconds,
            "jobs": self.jobs,
            "verification_seconds": self.verification_seconds,
            "counts": self.counts(),
            "detected_attacks": sorted(self.detected_attacks()),
            "results": [result.to_dict() for result in self.results],
            "stats": self.stats.to_dict() if self.stats is not None
            else None,
            "stability": (dict(self.stability)
                          if self.stability is not None else None),
        })

    @classmethod
    def from_dict(cls, payload: Dict) -> "AnalysisReport":
        """Rebuild a report; rejects unknown wire-format majors."""
        schema.check(payload, "AnalysisReport")
        stats = payload.get("stats")
        return cls(
            implementation=payload["implementation"],
            fsm_summary=dict(payload.get("fsm_summary", {})),
            extraction_seconds=payload.get("extraction_seconds", 0.0),
            coverage_percent=payload.get("coverage_percent", 0.0),
            conformance_cases=payload.get("conformance_cases", 0),
            log_lines=payload.get("log_lines", 0),
            results=[PropertyResult.from_dict(item)
                     for item in payload.get("results", [])],
            elapsed_seconds=payload.get("elapsed_seconds", 0.0),
            jobs=payload.get("jobs", 1),
            verification_seconds=payload.get("verification_seconds", 0.0),
            stats=PipelineStats.from_dict(stats) if stats else None,
            stability=payload.get("stability"),
        )

    def format_table(self) -> str:
        """Human-readable per-property table (for examples/CLI output)."""
        lines = [f"ProChecker analysis of {self.implementation!r}: "
                 f"{self.fsm_summary.get('states', '?')} states, "
                 f"{self.fsm_summary.get('transitions', '?')} transitions, "
                 f"coverage {self.coverage_percent:.1f}%"]
        lines.append(f"{'property':<10} {'category':<9} {'verdict':<10} "
                     f"{'attack':<28} time")
        for result in self.results:
            lines.append(
                f"{result.property.identifier:<10} "
                f"{result.property.category:<9} "
                f"{result.outcome.value:<10} "
                f"{(result.property.attack_id or '-'):<28} "
                f"{result.elapsed_seconds:.2f}s")
        counts = self.counts()
        errors = (f", {counts['errors']} checker errors"
                  if counts["errors"] else "")
        lines.append(
            f"total: {counts['properties']} properties, "
            f"{counts['verified']} verified, {counts['violated']} violated, "
            f"{counts['attacks']} distinct attacks{errors}")
        return "\n".join(lines)
