"""Analysis reports: per-property verdicts and the Table I detection view."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..mc import Trace
from ..properties.spec import Property

VERDICT_VERIFIED = "verified"
VERDICT_VIOLATED = "violated"
VERDICT_NOT_APPLICABLE = "not-applicable"


@dataclass
class PropertyResult:
    """Outcome of verifying one property against one implementation."""

    property: Property
    verdict: str
    counterexample: Optional[Trace] = None
    evidence: str = ""
    iterations: int = 0
    refinements: int = 0
    states_explored: int = 0
    elapsed_seconds: float = 0.0

    @property
    def violated(self) -> bool:
        return self.verdict == VERDICT_VIOLATED

    def summary(self) -> str:
        extra = ""
        if self.iterations > 1:
            extra = f" ({self.iterations} CEGAR iterations)"
        return (f"{self.property.identifier}: {self.verdict}{extra} "
                f"[{self.elapsed_seconds:.2f}s]")


@dataclass
class AnalysisReport:
    """The full ProChecker run for one implementation."""

    implementation: str
    fsm_summary: Dict[str, int] = field(default_factory=dict)
    extraction_seconds: float = 0.0
    coverage_percent: float = 0.0
    conformance_cases: int = 0
    log_lines: int = 0
    results: List[PropertyResult] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    # ------------------------------------------------------------------
    def violated(self) -> List[PropertyResult]:
        return [r for r in self.results if r.violated]

    def verified(self) -> List[PropertyResult]:
        return [r for r in self.results
                if r.verdict == VERDICT_VERIFIED]

    def detected_attacks(self) -> Set[str]:
        """Table I view: attack ids whose property was violated."""
        return {r.property.attack_id for r in self.violated()
                if r.property.attack_id}

    def result_for(self, property_id: str) -> PropertyResult:
        for result in self.results:
            if result.property.identifier == property_id:
                return result
        raise KeyError(property_id)

    def counts(self) -> Dict[str, int]:
        return {
            "properties": len(self.results),
            "verified": len(self.verified()),
            "violated": len(self.violated()),
            "attacks": len(self.detected_attacks()),
        }

    def format_table(self) -> str:
        """Human-readable per-property table (for examples/CLI output)."""
        lines = [f"ProChecker analysis of {self.implementation!r}: "
                 f"{self.fsm_summary.get('states', '?')} states, "
                 f"{self.fsm_summary.get('transitions', '?')} transitions, "
                 f"coverage {self.coverage_percent:.1f}%"]
        lines.append(f"{'property':<10} {'category':<9} {'verdict':<10} "
                     f"{'attack':<28} time")
        for result in self.results:
            lines.append(
                f"{result.property.identifier:<10} "
                f"{result.property.category:<9} "
                f"{result.verdict:<10} "
                f"{(result.property.attack_id or '-'):<28} "
                f"{result.elapsed_seconds:.2f}s")
        counts = self.counts()
        lines.append(
            f"total: {counts['properties']} properties, "
            f"{counts['verified']} verified, {counts['violated']} violated, "
            f"{counts['attacks']} distinct attacks")
        return "\n".join(lines)
