"""Parallel property-verification engine with shared caches.

The check phase of the pipeline is embarrassingly parallel: once the
implementation FSM is extracted and the core-network model fixed, every
property verdict is a pure function of ``(UE FSM, MME model, property)``.
This module exploits that in three layers:

1. a process-wide :class:`ExtractionCache` keyed by ``(implementation,
   suite fingerprint)``, so benchmarks, CLI commands and repeated
   :class:`~repro.core.prochecker.ProChecker` instances run the
   conformance suite and Algorithm 1 exactly once per implementation;
2. per-run sharing of the property-invariant CEGAR inputs via
   :class:`~repro.core.cegar.CegarContext` — the harvestable-message
   reachability query, the :class:`CounterexampleValidator` and the
   threat-instrumented base model for each distinct
   :class:`~repro.threat.ThreatConfig` (the 49 LTL properties share only
   21 configurations, and cached models keep their warm state graphs);
3. a ``concurrent.futures`` worker pool (``jobs=N``, default
   ``os.cpu_count()``) that fans property *groups* out over processes,
   one group per shared threat configuration so cache locality survives
   the fan-out.

Scheduling never changes verdicts: results are reassembled in catalog
order and every verdict is byte-identical to a serial run
(:meth:`~repro.core.report.AnalysisReport.verdict_signature`).

Fault tolerance (the crash-isolation contract): a single property's
failure must never erase the other 61 verdicts.  Checker exceptions are
caught at the group boundary and become :attr:`Verdict.ERROR` results
carrying the exception chain as evidence; crashed or timed-out groups
are retried with backoff on a rebuilt pool (a dead worker breaks the
whole ``ProcessPoolExecutor``), and groups that exhaust their retries
degrade to the in-process serial path, so :meth:`VerificationEngine.verify`
always returns a complete outcome map.  Retries, timeouts, rebuilds and
degradations are counted in the :mod:`repro.obs` metrics registry
(``engine.group_*`` / ``engine.pool_rebuilds``).  The deterministic
fault-injection harness (:mod:`repro.faults`) has trip points at
``engine.verify_group`` and ``engine.verify_one`` so every one of those
paths is exercisable on demand.
"""

from __future__ import annotations

import functools
import hashlib
import math
import multiprocessing
import os
import threading
import time
import types
from concurrent.futures import ProcessPoolExecutor, wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import faults, obs, schema
from ..conformance import TestCase, full_suite, measure_coverage, \
    run_conformance
from ..extraction import (StabilityReport, consensus_extract,
                          extract_model, table_for_implementation)
from ..fsm import FiniteStateMachine
from ..lte.channel import ChaosConfig
from ..lte.implementations import REGISTRY
from ..properties.catalog import ALL_PROPERTIES
from ..properties.spec import (CATEGORY_PRIVACY, CATEGORY_SECURITY,
                               EXTRACTED_VOCAB, KIND_LTL, KIND_TESTBED,
                               Property)
from ..testbed import run_attack
from .cegar import CegarContext, CegarResult, check_with_cegar, \
    threat_config_key
from .report import PropertyResult, Verdict


class EngineError(Exception):
    """Raised on engine misconfiguration (bad filters, empty runs)."""


# ---------------------------------------------------------------------------
# Analysis configuration (the redesigned pipeline entry point)
# ---------------------------------------------------------------------------
@dataclass
class AnalysisConfig:
    """Declarative description of one analysis run.

    Consumed by :meth:`ProChecker.from_config` and :func:`analyze_many`;
    every knob the CLI exposes maps onto one field here.
    """

    implementation: str
    #: explicit property objects (overrides ``property_ids``/``category``)
    properties: Optional[Sequence[Property]] = None
    #: select catalog properties by identifier ("SEC-01", ...)
    property_ids: Optional[Sequence[str]] = None
    #: restrict the catalog to "security" or "privacy"
    category: Optional[str] = None
    #: worker processes for the check phase; ``None`` → ``os.cpu_count()``
    jobs: Optional[int] = None
    #: CEGAR iteration budget per property
    max_cegar_iterations: int = 8
    #: reuse conformance runs/extractions across instances (process-wide)
    use_extraction_cache: bool = True
    #: share validator + threat models across properties within a run
    share_cegar_inputs: bool = True
    #: custom conformance suite (defaults to ``full_suite(implementation)``)
    cases: Optional[Sequence[TestCase]] = None
    #: wall-clock budget for one pooled property group; ``None`` → no limit
    group_timeout_seconds: Optional[float] = None
    #: pooled attempts beyond the first before a group degrades to the
    #: in-process serial fallback
    max_group_retries: int = 2
    #: base of the exponential backoff slept before a pooled retry round
    retry_backoff_seconds: float = 0.05
    #: deterministic fault plan to install for this run (debugging /
    #: resilience testing; see :mod:`repro.faults`)
    fault_plan: Optional[faults.FaultPlan] = None
    #: seeded radio-link impairment schedule for the conformance run
    #: (``None`` → perfect link; see :class:`repro.lte.channel.ChaosConfig`)
    chaos: Optional[ChaosConfig] = None
    #: with chaos: number of distinct-seed runs merged by the consensus
    #: extractor (1 → single perturbed run, no consensus machinery)
    chaos_runs: int = 1
    #: directory for the persistent cross-run MC verdict cache
    #: (``None`` → off).  A warmth knob, not an identity knob: it can
    #: never change verdicts, so it is excluded from the result-store
    #: job key the same way scheduling knobs are.
    mc_cache_dir: Optional[str] = None

    def resolved_properties(self) -> List[Property]:
        """The property list this configuration selects, catalog order."""
        if self.properties is not None:
            return list(self.properties)
        selected = list(ALL_PROPERTIES)
        if self.category is not None:
            if self.category not in (CATEGORY_SECURITY, CATEGORY_PRIVACY):
                raise EngineError(f"unknown category {self.category!r}")
            selected = [p for p in selected if p.category == self.category]
        if self.property_ids is not None:
            wanted = list(self.property_ids)
            by_id = {p.identifier: p for p in selected}
            missing = [i for i in wanted if i not in by_id]
            if missing:
                raise EngineError(f"unknown property ids: {missing}")
            selected = [by_id[i] for i in wanted]
        return selected

    def resolved_jobs(self) -> int:
        if self.jobs is not None:
            return max(1, int(self.jobs))
        return max(1, os.cpu_count() or 1)

    # ------------------------------------------------------------------
    # Wire form (the job payload of ``POST /v1/jobs``)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-ready job payload (round-trips via :meth:`from_dict`).

        Explicit :class:`Property` objects are narrowed to their catalog
        identifiers; configs carrying non-catalog properties or a custom
        ``cases`` suite hold live callables and cannot cross a process
        boundary — serialising one raises :class:`EngineError`.
        """
        property_ids = (list(self.property_ids)
                        if self.property_ids is not None else None)
        if self.properties is not None:
            from ..properties import property_by_id
            for prop in self.properties:
                try:
                    catalog_prop = property_by_id(prop.identifier)
                except KeyError:
                    catalog_prop = None
                if catalog_prop is not prop:
                    raise EngineError(
                        f"property {prop.identifier!r} is not a catalog "
                        f"property; only catalog selections serialize")
            property_ids = [p.identifier for p in self.properties]
        if self.cases is not None:
            raise EngineError(
                "configs with a custom conformance suite (cases=...) "
                "hold live callables and cannot be serialized")
        return schema.stamp({
            "implementation": self.implementation,
            "property_ids": property_ids,
            "category": self.category,
            "jobs": self.jobs,
            "max_cegar_iterations": self.max_cegar_iterations,
            "use_extraction_cache": self.use_extraction_cache,
            "share_cegar_inputs": self.share_cegar_inputs,
            "group_timeout_seconds": self.group_timeout_seconds,
            "max_group_retries": self.max_group_retries,
            "retry_backoff_seconds": self.retry_backoff_seconds,
            "fault_plan": (self.fault_plan.to_dict()
                           if self.fault_plan is not None else None),
            "chaos": (self.chaos.to_dict()
                      if self.chaos is not None else None),
            "chaos_runs": self.chaos_runs,
            "mc_cache_dir": self.mc_cache_dir,
        })

    @classmethod
    def from_dict(cls, payload: Dict) -> "AnalysisConfig":
        """Rebuild a config from a job payload.

        Raises :class:`~repro.schema.SchemaVersionError` on an unknown
        wire-format major and :class:`EngineError` on a payload without
        an implementation.
        """
        schema.check(payload, "AnalysisConfig")
        implementation = payload.get("implementation")
        if not implementation:
            raise EngineError("job payload lacks an 'implementation'")
        chaos = payload.get("chaos")
        plan = payload.get("fault_plan")
        return cls(
            implementation=implementation,
            property_ids=payload.get("property_ids"),
            category=payload.get("category"),
            jobs=payload.get("jobs"),
            max_cegar_iterations=payload.get("max_cegar_iterations", 8),
            use_extraction_cache=payload.get("use_extraction_cache", True),
            share_cegar_inputs=payload.get("share_cegar_inputs", True),
            group_timeout_seconds=payload.get("group_timeout_seconds"),
            max_group_retries=payload.get("max_group_retries", 2),
            retry_backoff_seconds=payload.get("retry_backoff_seconds",
                                              0.05),
            fault_plan=(faults.FaultPlan.from_dict(plan)
                        if plan is not None else None),
            chaos=(ChaosConfig.from_dict(chaos)
                   if chaos is not None else None),
            chaos_runs=payload.get("chaos_runs", 1),
            mc_cache_dir=payload.get("mc_cache_dir"),
        )


# ---------------------------------------------------------------------------
# Process-wide extraction cache
# ---------------------------------------------------------------------------
@dataclass
class ExtractionRecord:
    """One cached conformance run + extraction."""

    implementation: str
    fsm: FiniteStateMachine
    extraction_seconds: float
    coverage_percent: float
    conformance_cases: int
    log_lines: int
    #: consensus-extraction evidence; only set for chaos runs with
    #: ``chaos_runs >= 2``
    stability: Optional[StabilityReport] = None


def run_extraction(implementation: str,
                   cases: Optional[Sequence[TestCase]] = None,
                   chaos: Optional[ChaosConfig] = None,
                   chaos_runs: int = 1) -> ExtractionRecord:
    """Uncached pipeline front half: conformance run + Algorithm 1.

    With ``chaos`` set and ``chaos_runs >= 2``, the front half becomes a
    consensus extraction (:func:`repro.extraction.consensus_extract`):
    N distinct-seed perturbed runs merged into a majority machine, with
    the clean-run FSM (from the shared cache) as the subgraph baseline.
    """
    if implementation not in REGISTRY:
        raise EngineError(f"unknown implementation {implementation!r}; "
                          f"available: {sorted(REGISTRY)}")
    ue_class = REGISTRY[implementation]
    suite = list(cases) if cases is not None else full_suite(implementation)
    table = table_for_implementation(ue_class)
    stability: Optional[StabilityReport] = None
    if chaos is not None and chaos_runs >= 2:
        clean = extraction_cache.get(implementation, cases)
        consensus = consensus_extract(implementation, chaos, chaos_runs,
                                      cases=suite, clean_fsm=clean.fsm)
        fsm = consensus.fsm
        stability = consensus.report
        log_text = consensus.log_text
        extraction_seconds = consensus.extraction_seconds
        conformance_cases = consensus.conformance_cases
        log_lines = consensus.log_lines
    else:
        outcome = run_conformance(implementation, suite, instrument=True,
                                  chaos=chaos)
        fsm, stats = extract_model(outcome.log_text, table,
                                   name=f"{implementation}_ue")
        log_text = outcome.log_text
        extraction_seconds = stats.elapsed_seconds
        conformance_cases = outcome.executed
        log_lines = stats.log_lines
    with obs.span("conformance.coverage", implementation=implementation):
        coverage = measure_coverage(ue_class, log_text, implementation)
    return ExtractionRecord(
        implementation=implementation,
        fsm=fsm,
        extraction_seconds=extraction_seconds,
        coverage_percent=coverage.percent,
        conformance_cases=conformance_cases,
        log_lines=log_lines,
        stability=stability,
    )


def _stable_code_bytes(code: types.CodeType) -> bytes:
    """Deterministic byte rendering of a code object (no addresses)."""
    parts: List[bytes] = [code.co_code]
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            parts.append(_stable_code_bytes(const))
        else:
            parts.append(repr(const).encode())
    parts.append(" ".join(code.co_names).encode())
    return b"\x00".join(parts)


def _callable_fingerprint(fn) -> Tuple:
    """Content-derived identity of a test-case ``run`` callable.

    ``__qualname__`` alone collides for lambdas/partials defined at the
    same site, so the fingerprint also digests the bytecode, constants,
    defaults and closure-cell values — two behaviourally different
    callables sharing a qualname get distinct cache keys.
    """
    if isinstance(fn, functools.partial):
        return ("partial", _callable_fingerprint(fn.func),
                repr(fn.args), repr(sorted((fn.keywords or {}).items())))
    qualname = getattr(fn, "__qualname__", None)
    code = getattr(fn, "__code__", None)
    if code is None:
        return (qualname or repr(fn),)
    digest = hashlib.sha256(_stable_code_bytes(code))
    digest.update(repr(getattr(fn, "__defaults__", None)).encode())
    for cell in getattr(fn, "__closure__", None) or ():
        try:
            digest.update(repr(cell.cell_contents).encode())
        except ValueError:          # pragma: no cover - unset cell
            digest.update(b"<empty-cell>")
    bound_self = getattr(fn, "__self__", None)
    if bound_self is not None:
        digest.update(repr(bound_self).encode())
    return (qualname, digest.hexdigest())


class ExtractionCache:
    """Process-wide memo of conformance runs and extracted models.

    Keyed by ``(implementation, suite fingerprint)``: the default suite
    fingerprints by name, a custom ``cases`` list by its case identities
    plus a content digest of each ``run`` callable, so passing a
    different suite invalidates naturally.  The ``conformance_runs``
    counter exists so callers (and tests) can assert that a full
    analysis executes exactly one conformance run per implementation.

    Concurrency: misses build under a *per-key* lock, so two threads
    extracting different implementations proceed in parallel and only
    same-key callers block on one build (then share its record).
    """

    _DEFAULT_SUITE = "__default_suite__"

    def __init__(self):
        self._lock = threading.RLock()
        self._records: Dict[Tuple, ExtractionRecord] = {}
        self._building: Dict[Tuple, threading.Lock] = {}
        self.conformance_runs = 0
        self.hits = 0

    @classmethod
    def fingerprint(cls, implementation: str,
                    cases: Optional[Sequence[TestCase]] = None,
                    chaos: Optional[ChaosConfig] = None,
                    chaos_runs: int = 1) -> Tuple:
        if cases is None:
            key: Tuple = (implementation, cls._DEFAULT_SUITE)
        else:
            key = (implementation, tuple(
                (case.identifier, _callable_fingerprint(case.run))
                for case in cases))
        if chaos is not None:
            # ChaosConfig is a frozen dataclass of hashable fields, so
            # the instance itself is a sound cache-key component.
            key = key + ("chaos", chaos, chaos_runs)
        return key

    def _lookup(self, key: Tuple) -> Optional[ExtractionRecord]:
        with self._lock:
            record = self._records.get(key)
            if record is not None:
                self.hits += 1
                obs.count("extraction.cache_hits")
            return record

    def get(self, implementation: str,
            cases: Optional[Sequence[TestCase]] = None,
            chaos: Optional[ChaosConfig] = None,
            chaos_runs: int = 1) -> ExtractionRecord:
        key = self.fingerprint(implementation, cases, chaos, chaos_runs)
        record = self._lookup(key)
        if record is not None:
            return record
        with self._lock:
            build_lock = self._building.get(key)
            if build_lock is None:
                build_lock = self._building[key] = threading.Lock()
        with build_lock:
            # Another caller may have finished the build while we waited.
            record = self._lookup(key)
            if record is not None:
                return record
            obs.count("extraction.cache_misses")
            record = run_extraction(implementation, cases, chaos=chaos,
                                    chaos_runs=chaos_runs)
            with self._lock:
                self.conformance_runs += 1
                self._records[key] = record
                self._building.pop(key, None)
            return record

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._building.clear()
            self.conformance_runs = 0
            self.hits = 0

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"entries": len(self._records),
                    "conformance_runs": self.conformance_runs,
                    "hits": self.hits}


#: The process-wide singleton every pipeline entry point goes through.
extraction_cache = ExtractionCache()


# ---------------------------------------------------------------------------
# Single-property verification (pure function of its arguments)
# ---------------------------------------------------------------------------
def _worker_name() -> str:
    return multiprocessing.current_process().name


def verify_one(prop: Property, implementation: str,
               ue_fsm: FiniteStateMachine, mme_model: FiniteStateMachine,
               max_iterations: int = 8,
               context: Optional[CegarContext] = None) -> PropertyResult:
    """Verify one property; the unit of work the engine schedules.

    Every call happens under one ``verify.property`` span — the unit the
    observability layer reassembles traces around after a pooled run.
    """
    faults.trip("engine.verify_one", key=prop.identifier)
    with obs.span(obs.PROPERTY_SPAN, property=prop.identifier,
                  implementation=implementation, kind=prop.kind) as span:
        if prop.kind == KIND_LTL:
            result = _verify_ltl(prop, ue_fsm, mme_model, max_iterations,
                                 context)
        elif prop.kind == KIND_TESTBED:
            result = _verify_testbed(prop, implementation)
        else:
            raise EngineError(f"unknown property kind {prop.kind!r}")
    obs.observe("verify.seconds", span.duration)
    return result


def exception_chain(exc: BaseException) -> str:
    """Compact, deterministic rendering of an exception and its causes."""
    parts: List[str] = []
    seen = set()
    current: Optional[BaseException] = exc
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        parts.append(f"{type(current).__name__}: {current}")
        current = current.__cause__ or current.__context__
    return " <- caused by ".join(parts)


def error_result(prop: Property, exc: BaseException) -> PropertyResult:
    """The crash-isolation outcome: a checker failure as a result row."""
    obs.count("engine.property_errors")
    return PropertyResult(
        property=prop,
        outcome=Verdict.ERROR,
        evidence=f"checker error: {exception_chain(exc)}",
        worker=_worker_name(),
    )


def _safe_verify_one(prop: Property, implementation: str,
                     ue_fsm: FiniteStateMachine,
                     mme_model: FiniteStateMachine,
                     max_iterations: int = 8,
                     context: Optional[CegarContext] = None
                     ) -> PropertyResult:
    """:func:`verify_one` with the group-boundary catch applied.

    Any exception the checker raises for this property — including
    injected faults — becomes a :attr:`Verdict.ERROR` result instead of
    aborting the group, so every other property still gets its verdict.
    """
    try:
        return verify_one(prop, implementation, ue_fsm, mme_model,
                          max_iterations, context)
    except Exception as exc:  # noqa: BLE001 - the isolation boundary
        return error_result(prop, exc)


def _verify_ltl(prop: Property, ue_fsm: FiniteStateMachine,
                mme_model: FiniteStateMachine, max_iterations: int,
                context: Optional[CegarContext]) -> PropertyResult:
    formula = prop.formula_for(EXTRACTED_VOCAB)
    cegar: CegarResult = check_with_cegar(
        ue_fsm, mme_model, formula, prop.threat,
        name=prop.identifier, max_iterations=max_iterations,
        context=context)
    outcome = Verdict.VERIFIED if cegar.verified else Verdict.VIOLATED
    evidence = ""
    if cegar.is_attack:
        evidence = ("realizable counterexample; adversarial steps: "
                    + ", ".join(dict.fromkeys(
                        cegar.attack.adversary_actions())))
    return PropertyResult(
        property=prop,
        outcome=outcome,
        counterexample=cegar.attack,
        evidence=evidence,
        iterations=cegar.iterations,
        refinements=len(cegar.refinements),
        states_explored=cegar.states_explored,
        elapsed_seconds=cegar.elapsed_seconds,
        worker=_worker_name(),
    )


def _verify_testbed(prop: Property, implementation: str) -> PropertyResult:
    with obs.span("testbed.attack", attack=prop.testbed_attack) as span:
        outcome = run_attack(prop.testbed_attack, implementation)
        obs.inc("testbed.attacks")
    if not outcome.applicable:
        result_outcome = Verdict.NOT_APPLICABLE
    elif outcome.succeeded:
        result_outcome = Verdict.VIOLATED
    else:
        result_outcome = Verdict.VERIFIED
    return PropertyResult(
        property=prop,
        outcome=result_outcome,
        evidence=outcome.evidence,
        iterations=1,
        elapsed_seconds=span.duration,
        worker=_worker_name(),
    )


# ---------------------------------------------------------------------------
# Scheduling
# ---------------------------------------------------------------------------
def group_properties(properties: Sequence[Property]) -> List[List[Property]]:
    """Partition properties into engine tasks.

    LTL properties sharing a :class:`ThreatConfig` form one group so the
    shared instrumented model (and its memoised state graph) is built
    once per group even across process boundaries; each testbed property
    is its own group (independent simulator runs).
    """
    groups: Dict[Tuple, List[Property]] = {}
    order: List[Tuple] = []
    for prop in properties:
        if prop.kind == KIND_LTL:
            key = ("ltl", threat_config_key(prop.threat))
        else:
            key = ("testbed", prop.identifier)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(prop)
    return [groups[key] for key in order]


@dataclass
class ImplementationRun:
    """One implementation's share of an engine invocation."""

    implementation: str
    ue_fsm: FiniteStateMachine
    mme_model: FiniteStateMachine
    properties: Sequence[Property]
    max_iterations: int = 8
    #: serial mode reuses this context (e.g. a ProChecker's persistent one)
    context: Optional[CegarContext] = None
    #: persistent MC verdict cache directory, propagated to the contexts
    #: built in pool workers and fallback paths (``None`` → off)
    mc_cache_dir: Optional[str] = None


# Worker-process state, installed once per worker by the pool initializer:
# implementation -> (ue_fsm, mme_model, max_iterations, CegarContext).
_WORKER_STATE: Dict[str, Tuple] = {}


def _init_worker(payloads: Dict[str, Tuple],
                 fault_plan: Optional[Dict] = None) -> None:
    # Under the ``fork`` start method the child inherits the parent's
    # observatory — including whatever spans the parent has open.  Reset
    # so the worker records only its own work, as fresh root spans the
    # parent can adopt back.  The fault plan is re-installed explicitly
    # (covering non-fork start methods) and its call counters zeroed, so
    # every fresh worker counts k-th-call triggers from zero — which is
    # what makes a persistent fault re-fire deterministically after a
    # pool rebuild.
    obs.reset()
    faults.install(faults.FaultPlan.from_dict(fault_plan)
                   if fault_plan is not None else None)
    _WORKER_STATE.clear()
    for implementation, (ue_fsm, mme_model, max_iterations,
                         mc_cache_dir) in payloads.items():
        _WORKER_STATE[implementation] = (
            ue_fsm, mme_model, max_iterations,
            CegarContext(ue_fsm, mme_model, mc_cache_dir=mc_cache_dir))


def _verify_group(task: Tuple[str, List[Property]]
                  ) -> Tuple[List[Tuple[str, PropertyResult]],
                             List[Dict], Dict]:
    """Worker-side task: verify one group, ship results *and* telemetry.

    The ``verify.property`` spans finish as roots in the worker (nothing
    is open above them there); their serialised forms plus a drain of the
    worker's metrics registry ride back with the results so the parent
    can reassemble one trace and one registry for the whole run.

    Each property is verified through the group-boundary catch: a
    checker exception errors *that property* (``Verdict.ERROR``), not
    the group.
    """
    implementation, props = task
    faults.trip("engine.verify_group", key=props[0].identifier)
    ue_fsm, mme_model, max_iterations, context = \
        _WORKER_STATE[implementation]
    results = [(prop.identifier,
                _safe_verify_one(prop, implementation, ue_fsm, mme_model,
                                 max_iterations, context))
               for prop in props]
    spans = [span.to_dict() for span in obs.drain_spans()]
    return results, spans, obs.metrics().drain()


class VerificationEngine:
    """Fans property groups out over a process pool (or runs serially).

    ``jobs=1`` (or a single task) short-circuits to an in-process loop —
    no pool, no pickling — which is also the deterministic baseline the
    parallel path is validated against.

    The pooled path is fault-tolerant: per-task futures with an optional
    per-group timeout (``group_timeout``), bounded retries with
    exponential backoff on a rebuilt pool for crashed/timed-out groups,
    and graceful degradation to the in-process serial path for groups
    that exhaust their retries.  Because every verdict is a pure
    function of its inputs, none of this changes results — a degraded
    run's verdicts are byte-identical to a clean run's (modulo
    ``Verdict.ERROR`` rows for properties whose checker deterministically
    fails everywhere).
    """

    def __init__(self, jobs: Optional[int] = None,
                 group_timeout: Optional[float] = None,
                 max_group_retries: int = 2,
                 retry_backoff: float = 0.05):
        self.jobs = max(1, jobs if jobs is not None
                        else (os.cpu_count() or 1))
        self.group_timeout = group_timeout
        self.max_group_retries = max(0, max_group_retries)
        self.retry_backoff = max(0.0, retry_backoff)

    # ------------------------------------------------------------------
    def verify(self, runs: Sequence[ImplementationRun]
               ) -> Dict[str, List[PropertyResult]]:
        """Verify every run's properties; results keep input order."""
        if not runs:
            raise EngineError("no implementation runs given")
        seen = set()
        for run in runs:
            if run.implementation in seen:
                raise EngineError(
                    f"duplicate run for {run.implementation!r}")
            seen.add(run.implementation)

        tasks: List[Tuple[str, List[Property]]] = []
        for run in runs:
            tasks.extend((run.implementation, group)
                         for group in group_properties(run.properties))

        if self.jobs <= 1 or len(tasks) <= 1:
            outcomes = self._verify_serial(runs)
        else:
            outcomes = self._verify_pooled(runs, tasks)

        return {run.implementation:
                [outcomes[(run.implementation, prop.identifier)]
                 for prop in run.properties]
                for run in runs}

    # ------------------------------------------------------------------
    def _verify_serial(self, runs: Sequence[ImplementationRun]
                       ) -> Dict[Tuple[str, str], PropertyResult]:
        outcomes: Dict[Tuple[str, str], PropertyResult] = {}
        for run in runs:
            context = run.context or CegarContext(
                run.ue_fsm, run.mme_model, mc_cache_dir=run.mc_cache_dir)
            for prop in run.properties:
                outcomes[(run.implementation, prop.identifier)] = \
                    _safe_verify_one(prop, run.implementation, run.ue_fsm,
                                     run.mme_model, run.max_iterations,
                                     context)
        return outcomes

    # ------------------------------------------------------------------
    def _verify_pooled(self, runs: Sequence[ImplementationRun],
                       tasks: List[Tuple[str, List[Property]]]
                       ) -> Dict[Tuple[str, str], PropertyResult]:
        payloads = {run.implementation:
                    (run.ue_fsm, run.mme_model, run.max_iterations,
                     run.mc_cache_dir)
                    for run in runs}
        plan = faults.installed()
        plan_payload = plan.to_dict() if plan is not None else None
        runs_by_impl = {run.implementation: run for run in runs}
        outcomes: Dict[Tuple[str, str], PropertyResult] = {}

        pending = list(range(len(tasks)))
        attempts = {index: 0 for index in pending}
        pool: Optional[ProcessPoolExecutor] = None
        try:
            while pending:
                if pool is None:
                    pool = ProcessPoolExecutor(
                        max_workers=min(self.jobs, len(pending)),
                        mp_context=self._mp_context(),
                        initializer=_init_worker,
                        initargs=(payloads, plan_payload))
                completed, failures = self._run_round(
                    pool, [(index, tasks[index]) for index in pending])
                for index, (group_results, spans, metrics) in \
                        completed.items():
                    obs.adopt_spans(spans)
                    obs.metrics().merge(metrics)
                    implementation = tasks[index][0]
                    for identifier, result in group_results:
                        outcomes[(implementation, identifier)] = result

                retry: List[int] = []
                degrade: List[int] = []
                for index, reason in failures:
                    attempts[index] += 1
                    obs.count("engine.group_crashes" if reason == "crash"
                              else "engine.group_timeouts")
                    if attempts[index] > self.max_group_retries:
                        degrade.append(index)
                    else:
                        obs.count("engine.group_retries")
                        retry.append(index)
                if failures:
                    # The pool may hold hung or dead workers — the only
                    # safe recovery is a teardown + rebuild (a broken
                    # ProcessPoolExecutor refuses further submissions
                    # anyway), after a bounded backoff.
                    self._teardown_pool(pool)
                    pool = None
                    obs.count("engine.pool_rebuilds")
                    if retry and self.retry_backoff > 0:
                        worst = max(attempts[index] for index, _ in
                                    failures)
                        time.sleep(min(1.0, self.retry_backoff
                                       * (2 ** (worst - 1))))
                for index in degrade:
                    obs.count("engine.group_degradations")
                    implementation, props = tasks[index]
                    outcomes.update(self._verify_group_fallback(
                        runs_by_impl[implementation], props))
                # Keep submission order stable across rounds so retried
                # groups land on workers deterministically.
                pending = sorted(retry)
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
        return outcomes

    def _run_round(self, pool: ProcessPoolExecutor,
                   batch: List[Tuple[int, Tuple[str, List[Property]]]]
                   ) -> Tuple[Dict[int, Tuple], List[Tuple[int, str]]]:
        """Submit one round of groups; classify every entry's fate.

        Returns ``(completed, failures)`` where ``completed`` maps the
        task index to the worker payload and ``failures`` lists
        ``(index, "crash" | "timeout")`` entries.  A round with a
        timeout budget gives the batch ``group_timeout`` seconds per
        scheduling wave (``ceil(batch / workers)``); whatever has not
        finished by then is failed as a timeout — a hung worker cannot
        be cancelled, only torn down with the pool.
        """
        futures: Dict = {}
        failures: List[Tuple[int, str]] = []
        completed: Dict[int, Tuple] = {}
        for position, (index, task) in enumerate(batch):
            try:
                futures[pool.submit(_verify_group, task)] = index
            except BrokenProcessPool:
                failures.extend((pending_index, "crash")
                                for pending_index, _ in batch[position:])
                break

        deadline = None
        if self.group_timeout is not None:
            width = max(1, min(self.jobs, len(batch)))
            waves = math.ceil(len(futures) / width) if futures else 1
            deadline = time.monotonic() + self.group_timeout * waves

        not_done = set(futures)
        while not_done:
            timeout = None
            if deadline is not None:
                timeout = max(0.0, deadline - time.monotonic())
            done, not_done = futures_wait(not_done, timeout=timeout)
            for future in done:
                index = futures[future]
                try:
                    completed[index] = future.result()
                except Exception:  # noqa: BLE001 - crashed worker/group
                    failures.append((index, "crash"))
            if not done and not_done:
                # Deadline expired with groups still queued or running.
                for future in not_done:
                    future.cancel()
                    failures.append((futures[future], "timeout"))
                break
        return completed, failures

    def _verify_group_fallback(self, run: ImplementationRun,
                               props: Sequence[Property]
                               ) -> Dict[Tuple[str, str], PropertyResult]:
        """Degraded mode: verify a group in-process, serially.

        Reached when a group exhausted its pooled retries.  Runs under
        the same group-boundary catch as the workers, so even a
        deterministic in-process failure yields ``Verdict.ERROR`` rows
        rather than aborting the run.
        """
        if run.context is None:
            run.context = CegarContext(run.ue_fsm, run.mme_model,
                                       mc_cache_dir=run.mc_cache_dir)
        outcomes: Dict[Tuple[str, str], PropertyResult] = {}
        with obs.span("engine.fallback",
                      implementation=run.implementation,
                      group=props[0].identifier):
            for prop in props:
                outcomes[(run.implementation, prop.identifier)] = \
                    _safe_verify_one(prop, run.implementation, run.ue_fsm,
                                     run.mme_model, run.max_iterations,
                                     run.context)
        return outcomes

    @staticmethod
    def _teardown_pool(pool: ProcessPoolExecutor) -> None:
        """Shut a pool down hard, reclaiming hung or dead workers."""
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                process.terminate()
            except Exception:  # noqa: BLE001 - already dead is fine
                obs.count("engine.worker_terminate_failures")

    @staticmethod
    def _mp_context():
        """Prefer ``fork`` (cheap workers, no re-import) when available."""
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return multiprocessing.get_context()
