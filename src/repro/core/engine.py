"""Parallel property-verification engine with shared caches.

The check phase of the pipeline is embarrassingly parallel: once the
implementation FSM is extracted and the core-network model fixed, every
property verdict is a pure function of ``(UE FSM, MME model, property)``.
This module exploits that in three layers:

1. a process-wide :class:`ExtractionCache` keyed by ``(implementation,
   suite fingerprint)``, so benchmarks, CLI commands and repeated
   :class:`~repro.core.prochecker.ProChecker` instances run the
   conformance suite and Algorithm 1 exactly once per implementation;
2. per-run sharing of the property-invariant CEGAR inputs via
   :class:`~repro.core.cegar.CegarContext` — the harvestable-message
   reachability query, the :class:`CounterexampleValidator` and the
   threat-instrumented base model for each distinct
   :class:`~repro.threat.ThreatConfig` (the 49 LTL properties share only
   21 configurations, and cached models keep their warm state graphs);
3. a ``concurrent.futures`` worker pool (``jobs=N``, default
   ``os.cpu_count()``) that fans property *groups* out over processes,
   one group per shared threat configuration so cache locality survives
   the fan-out.

Scheduling never changes verdicts: results are reassembled in catalog
order and every verdict is byte-identical to a serial run
(:meth:`~repro.core.report.AnalysisReport.verdict_signature`).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..conformance import TestCase, full_suite, measure_coverage, \
    run_conformance
from ..extraction import extract_model, table_for_implementation
from ..fsm import FiniteStateMachine
from ..lte.implementations import REGISTRY
from ..properties.catalog import ALL_PROPERTIES
from ..properties.spec import (CATEGORY_PRIVACY, CATEGORY_SECURITY,
                               EXTRACTED_VOCAB, KIND_LTL, KIND_TESTBED,
                               Property)
from ..testbed import run_attack
from .cegar import CegarContext, CegarResult, check_with_cegar, \
    threat_config_key
from .report import PropertyResult, Verdict


class EngineError(Exception):
    """Raised on engine misconfiguration (bad filters, empty runs)."""


# ---------------------------------------------------------------------------
# Analysis configuration (the redesigned pipeline entry point)
# ---------------------------------------------------------------------------
@dataclass
class AnalysisConfig:
    """Declarative description of one analysis run.

    Consumed by :meth:`ProChecker.from_config` and :func:`analyze_many`;
    every knob the CLI exposes maps onto one field here.
    """

    implementation: str
    #: explicit property objects (overrides ``property_ids``/``category``)
    properties: Optional[Sequence[Property]] = None
    #: select catalog properties by identifier ("SEC-01", ...)
    property_ids: Optional[Sequence[str]] = None
    #: restrict the catalog to "security" or "privacy"
    category: Optional[str] = None
    #: worker processes for the check phase; ``None`` → ``os.cpu_count()``
    jobs: Optional[int] = None
    #: CEGAR iteration budget per property
    max_cegar_iterations: int = 8
    #: reuse conformance runs/extractions across instances (process-wide)
    use_extraction_cache: bool = True
    #: share validator + threat models across properties within a run
    share_cegar_inputs: bool = True
    #: custom conformance suite (defaults to ``full_suite(implementation)``)
    cases: Optional[Sequence[TestCase]] = None

    def resolved_properties(self) -> List[Property]:
        """The property list this configuration selects, catalog order."""
        if self.properties is not None:
            return list(self.properties)
        selected = list(ALL_PROPERTIES)
        if self.category is not None:
            if self.category not in (CATEGORY_SECURITY, CATEGORY_PRIVACY):
                raise EngineError(f"unknown category {self.category!r}")
            selected = [p for p in selected if p.category == self.category]
        if self.property_ids is not None:
            wanted = list(self.property_ids)
            by_id = {p.identifier: p for p in selected}
            missing = [i for i in wanted if i not in by_id]
            if missing:
                raise EngineError(f"unknown property ids: {missing}")
            selected = [by_id[i] for i in wanted]
        return selected

    def resolved_jobs(self) -> int:
        if self.jobs is not None:
            return max(1, int(self.jobs))
        return max(1, os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# Process-wide extraction cache
# ---------------------------------------------------------------------------
@dataclass
class ExtractionRecord:
    """One cached conformance run + extraction."""

    implementation: str
    fsm: FiniteStateMachine
    extraction_seconds: float
    coverage_percent: float
    conformance_cases: int
    log_lines: int


def run_extraction(implementation: str,
                   cases: Optional[Sequence[TestCase]] = None
                   ) -> ExtractionRecord:
    """Uncached pipeline front half: conformance run + Algorithm 1."""
    if implementation not in REGISTRY:
        raise EngineError(f"unknown implementation {implementation!r}; "
                          f"available: {sorted(REGISTRY)}")
    ue_class = REGISTRY[implementation]
    suite = list(cases) if cases is not None else full_suite(implementation)
    outcome = run_conformance(implementation, suite, instrument=True)
    table = table_for_implementation(ue_class)
    fsm, stats = extract_model(outcome.log_text, table,
                               name=f"{implementation}_ue")
    with obs.span("conformance.coverage", implementation=implementation):
        coverage = measure_coverage(ue_class, outcome.log_text,
                                    implementation)
    return ExtractionRecord(
        implementation=implementation,
        fsm=fsm,
        extraction_seconds=stats.elapsed_seconds,
        coverage_percent=coverage.percent,
        conformance_cases=outcome.executed,
        log_lines=stats.log_lines,
    )


class ExtractionCache:
    """Process-wide memo of conformance runs and extracted models.

    Keyed by ``(implementation, suite fingerprint)``: the default suite
    fingerprints by name, a custom ``cases`` list by its case identities,
    so passing a different suite invalidates naturally.  The
    ``conformance_runs`` counter exists so callers (and tests) can assert
    that a full analysis executes exactly one conformance run per
    implementation.
    """

    _DEFAULT_SUITE = "__default_suite__"

    def __init__(self):
        self._lock = threading.RLock()
        self._records: Dict[Tuple, ExtractionRecord] = {}
        self.conformance_runs = 0
        self.hits = 0

    @classmethod
    def fingerprint(cls, implementation: str,
                    cases: Optional[Sequence[TestCase]] = None) -> Tuple:
        if cases is None:
            return (implementation, cls._DEFAULT_SUITE)
        return (implementation, tuple(
            (case.identifier,
             getattr(case.run, "__qualname__", repr(case.run)))
            for case in cases))

    def get(self, implementation: str,
            cases: Optional[Sequence[TestCase]] = None) -> ExtractionRecord:
        key = self.fingerprint(implementation, cases)
        with self._lock:
            record = self._records.get(key)
            if record is not None:
                self.hits += 1
                obs.count("extraction.cache_hits")
                return record
            obs.count("extraction.cache_misses")
            record = run_extraction(implementation, cases)
            self.conformance_runs += 1
            self._records[key] = record
            return record

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self.conformance_runs = 0
            self.hits = 0

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"entries": len(self._records),
                    "conformance_runs": self.conformance_runs,
                    "hits": self.hits}


#: The process-wide singleton every pipeline entry point goes through.
extraction_cache = ExtractionCache()


# ---------------------------------------------------------------------------
# Single-property verification (pure function of its arguments)
# ---------------------------------------------------------------------------
def _worker_name() -> str:
    return multiprocessing.current_process().name


def verify_one(prop: Property, implementation: str,
               ue_fsm: FiniteStateMachine, mme_model: FiniteStateMachine,
               max_iterations: int = 8,
               context: Optional[CegarContext] = None) -> PropertyResult:
    """Verify one property; the unit of work the engine schedules.

    Every call happens under one ``verify.property`` span — the unit the
    observability layer reassembles traces around after a pooled run.
    """
    with obs.span(obs.PROPERTY_SPAN, property=prop.identifier,
                  implementation=implementation, kind=prop.kind) as span:
        if prop.kind == KIND_LTL:
            result = _verify_ltl(prop, ue_fsm, mme_model, max_iterations,
                                 context)
        elif prop.kind == KIND_TESTBED:
            result = _verify_testbed(prop, implementation)
        else:
            raise EngineError(f"unknown property kind {prop.kind!r}")
    obs.observe("verify.seconds", span.duration)
    return result


def _verify_ltl(prop: Property, ue_fsm: FiniteStateMachine,
                mme_model: FiniteStateMachine, max_iterations: int,
                context: Optional[CegarContext]) -> PropertyResult:
    formula = prop.formula_for(EXTRACTED_VOCAB)
    cegar: CegarResult = check_with_cegar(
        ue_fsm, mme_model, formula, prop.threat,
        name=prop.identifier, max_iterations=max_iterations,
        context=context)
    outcome = Verdict.VERIFIED if cegar.verified else Verdict.VIOLATED
    evidence = ""
    if cegar.is_attack:
        evidence = ("realizable counterexample; adversarial steps: "
                    + ", ".join(dict.fromkeys(
                        cegar.attack.adversary_actions())))
    return PropertyResult(
        property=prop,
        outcome=outcome,
        counterexample=cegar.attack,
        evidence=evidence,
        iterations=cegar.iterations,
        refinements=len(cegar.refinements),
        states_explored=cegar.states_explored,
        elapsed_seconds=cegar.elapsed_seconds,
        worker=_worker_name(),
    )


def _verify_testbed(prop: Property, implementation: str) -> PropertyResult:
    with obs.span("testbed.attack", attack=prop.testbed_attack) as span:
        outcome = run_attack(prop.testbed_attack, implementation)
        obs.inc("testbed.attacks")
    if "not applicable" in outcome.evidence:
        result_outcome = Verdict.NOT_APPLICABLE
    elif outcome.succeeded:
        result_outcome = Verdict.VIOLATED
    else:
        result_outcome = Verdict.VERIFIED
    return PropertyResult(
        property=prop,
        outcome=result_outcome,
        evidence=outcome.evidence,
        iterations=1,
        elapsed_seconds=span.duration,
        worker=_worker_name(),
    )


# ---------------------------------------------------------------------------
# Scheduling
# ---------------------------------------------------------------------------
def group_properties(properties: Sequence[Property]) -> List[List[Property]]:
    """Partition properties into engine tasks.

    LTL properties sharing a :class:`ThreatConfig` form one group so the
    shared instrumented model (and its memoised state graph) is built
    once per group even across process boundaries; each testbed property
    is its own group (independent simulator runs).
    """
    groups: Dict[Tuple, List[Property]] = {}
    order: List[Tuple] = []
    for prop in properties:
        if prop.kind == KIND_LTL:
            key = ("ltl", threat_config_key(prop.threat))
        else:
            key = ("testbed", prop.identifier)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(prop)
    return [groups[key] for key in order]


@dataclass
class ImplementationRun:
    """One implementation's share of an engine invocation."""

    implementation: str
    ue_fsm: FiniteStateMachine
    mme_model: FiniteStateMachine
    properties: Sequence[Property]
    max_iterations: int = 8
    #: serial mode reuses this context (e.g. a ProChecker's persistent one)
    context: Optional[CegarContext] = None


# Worker-process state, installed once per worker by the pool initializer:
# implementation -> (ue_fsm, mme_model, max_iterations, CegarContext).
_WORKER_STATE: Dict[str, Tuple] = {}


def _init_worker(payloads: Dict[str, Tuple]) -> None:
    # Under the ``fork`` start method the child inherits the parent's
    # observatory — including whatever spans the parent has open.  Reset
    # so the worker records only its own work, as fresh root spans the
    # parent can adopt back.
    obs.reset()
    _WORKER_STATE.clear()
    for implementation, (ue_fsm, mme_model, max_iterations) in \
            payloads.items():
        _WORKER_STATE[implementation] = (
            ue_fsm, mme_model, max_iterations,
            CegarContext(ue_fsm, mme_model))


def _verify_group(task: Tuple[str, List[Property]]
                  ) -> Tuple[List[Tuple[str, PropertyResult]],
                             List[Dict], Dict]:
    """Worker-side task: verify one group, ship results *and* telemetry.

    The ``verify.property`` spans finish as roots in the worker (nothing
    is open above them there); their serialised forms plus a drain of the
    worker's metrics registry ride back with the results so the parent
    can reassemble one trace and one registry for the whole run.
    """
    implementation, props = task
    ue_fsm, mme_model, max_iterations, context = \
        _WORKER_STATE[implementation]
    results = [(prop.identifier,
                verify_one(prop, implementation, ue_fsm, mme_model,
                           max_iterations, context))
               for prop in props]
    spans = [span.to_dict() for span in obs.drain_spans()]
    return results, spans, obs.metrics().drain()


class VerificationEngine:
    """Fans property groups out over a process pool (or runs serially).

    ``jobs=1`` (or a single task) short-circuits to an in-process loop —
    no pool, no pickling — which is also the deterministic baseline the
    parallel path is validated against.
    """

    def __init__(self, jobs: Optional[int] = None):
        self.jobs = max(1, jobs if jobs is not None
                        else (os.cpu_count() or 1))

    # ------------------------------------------------------------------
    def verify(self, runs: Sequence[ImplementationRun]
               ) -> Dict[str, List[PropertyResult]]:
        """Verify every run's properties; results keep input order."""
        if not runs:
            raise EngineError("no implementation runs given")
        seen = set()
        for run in runs:
            if run.implementation in seen:
                raise EngineError(
                    f"duplicate run for {run.implementation!r}")
            seen.add(run.implementation)

        tasks: List[Tuple[str, List[Property]]] = []
        for run in runs:
            tasks.extend((run.implementation, group)
                         for group in group_properties(run.properties))

        if self.jobs <= 1 or len(tasks) <= 1:
            outcomes = self._verify_serial(runs)
        else:
            outcomes = self._verify_pooled(runs, tasks)

        return {run.implementation:
                [outcomes[(run.implementation, prop.identifier)]
                 for prop in run.properties]
                for run in runs}

    # ------------------------------------------------------------------
    def _verify_serial(self, runs: Sequence[ImplementationRun]
                       ) -> Dict[Tuple[str, str], PropertyResult]:
        outcomes: Dict[Tuple[str, str], PropertyResult] = {}
        for run in runs:
            context = run.context or CegarContext(run.ue_fsm, run.mme_model)
            for prop in run.properties:
                outcomes[(run.implementation, prop.identifier)] = \
                    verify_one(prop, run.implementation, run.ue_fsm,
                               run.mme_model, run.max_iterations, context)
        return outcomes

    def _verify_pooled(self, runs: Sequence[ImplementationRun],
                       tasks: List[Tuple[str, List[Property]]]
                       ) -> Dict[Tuple[str, str], PropertyResult]:
        payloads = {run.implementation:
                    (run.ue_fsm, run.mme_model, run.max_iterations)
                    for run in runs}
        context = self._mp_context()
        outcomes: Dict[Tuple[str, str], PropertyResult] = {}
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(tasks)),
                                 mp_context=context,
                                 initializer=_init_worker,
                                 initargs=(payloads,)) as pool:
            # ``pool.map`` yields in task (catalog) order regardless of
            # which worker finished first, so the reassembled trace and
            # merged metrics are scheduling-independent.
            for (implementation, _group), \
                    (group_results, spans, metrics) in \
                    zip(tasks, pool.map(_verify_group, tasks)):
                obs.adopt_spans(spans)
                obs.metrics().merge(metrics)
                for identifier, result in group_results:
                    outcomes[(implementation, identifier)] = result
        return outcomes

    @staticmethod
    def _mp_context():
        """Prefer ``fork`` (cheap workers, no re-import) when available."""
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return multiprocessing.get_context()
