"""The ProChecker pipeline (Fig. 2): extraction then verification.

One :class:`ProChecker` instance analyses one implementation:

1. run the (instrumented) conformance suite → information-rich log;
2. extract the implementation FSM (Algorithm 1) + coverage;
3. pair it with the hand-built core-network model (Hussain et al.);
4. for every property: either the CEGAR MC↔CPV loop (LTL properties) or
   the corresponding testbed/CPV experiment (observational properties);
5. produce an :class:`~repro.core.report.AnalysisReport`.

Stage 1+2 go through the process-wide
:data:`~repro.core.engine.extraction_cache`, and stage 4 through the
:class:`~repro.core.engine.VerificationEngine`, which shares the
property-invariant CEGAR inputs and can fan the catalog out over a
worker pool (``jobs``).  Configure runs declaratively::

    config = AnalysisConfig("srsue", jobs=4, category="privacy")
    report = ProChecker.from_config(config).analyze()

or analyse several implementations through one shared pool::

    reports = analyze_many(["reference", "srsue", "oai"])
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from .. import faults, obs
from ..baselines import lteinspector_mme
from ..fsm import FiniteStateMachine
from ..lte.implementations import REGISTRY
from ..obs.stats import PipelineStats
from ..obs.metrics import diff_snapshots
from ..properties.spec import Property
from .cegar import CegarContext
from .engine import (AnalysisConfig, ImplementationRun, VerificationEngine,
                     extraction_cache, run_extraction, verify_one)
from .report import AnalysisReport, PropertyResult


class ProCheckerError(Exception):
    """Raised on pipeline misconfiguration."""


class ProChecker:
    """Property-guided formal verification of one LTE implementation."""

    def __init__(self, implementation: str,
                 mme_model: Optional[FiniteStateMachine] = None,
                 config: Optional[AnalysisConfig] = None):
        if implementation not in REGISTRY:
            raise ProCheckerError(
                f"unknown implementation {implementation!r}; "
                f"available: {sorted(REGISTRY)}")
        if config is not None and config.implementation != implementation:
            raise ProCheckerError(
                f"config targets {config.implementation!r}, "
                f"not {implementation!r}")
        self.implementation = implementation
        self.ue_class = REGISTRY[implementation]
        self.config = config or AnalysisConfig(implementation=implementation)
        #: the paper uses the manually constructed open-source core
        #: network model (no access to a commercial core)
        self.mme_model = mme_model or lteinspector_mme()
        self._extracted: Optional[FiniteStateMachine] = None
        self._extraction_seconds = 0.0
        self._coverage_percent = 0.0
        self._conformance_cases = 0
        self._log_lines = 0
        self._stability = None
        self._context: Optional[CegarContext] = None

    @classmethod
    def from_config(cls, config: AnalysisConfig) -> "ProChecker":
        """The config-object entry point of the redesigned API."""
        return cls(config.implementation, config=config)

    @property
    def stability(self):
        """The consensus :class:`~repro.extraction.StabilityReport` of
        the last extraction, or ``None`` for single-run extractions."""
        return self._stability

    # ------------------------------------------------------------------
    # Stage 1+2: conformance run and model extraction
    # ------------------------------------------------------------------
    def extract(self, cases=None) -> FiniteStateMachine:
        """Run the conformance suite under instrumentation and extract
        the implementation FSM.

        Goes through the process-wide extraction cache (unless the
        config disables it), so repeated instances — and the other
        implementations of an :func:`analyze_many` batch — share one
        conformance run each.  Cached on the instance after the first
        call; passing ``cases`` re-extracts from that custom suite.
        """
        if self._extracted is not None and cases is None:
            return self._extracted
        suite = cases if cases is not None else self.config.cases
        with obs.span("pipeline.extract",
                      implementation=self.implementation):
            if self.config.use_extraction_cache:
                record = extraction_cache.get(
                    self.implementation, suite,
                    chaos=self.config.chaos,
                    chaos_runs=self.config.chaos_runs)
            else:
                record = run_extraction(
                    self.implementation, suite,
                    chaos=self.config.chaos,
                    chaos_runs=self.config.chaos_runs)
        self._extracted = record.fsm
        self._extraction_seconds = record.extraction_seconds
        self._coverage_percent = record.coverage_percent
        self._conformance_cases = record.conformance_cases
        self._log_lines = record.log_lines
        self._stability = record.stability
        self._context = None   # bound to the previous extraction
        return record.fsm

    # ------------------------------------------------------------------
    # Stage 3+4: verification
    # ------------------------------------------------------------------
    def _cegar_context(self,
                      ue_fsm: FiniteStateMachine
                      ) -> Optional[CegarContext]:
        if not self.config.share_cegar_inputs:
            return None
        if self._context is None:
            self._context = CegarContext(
                ue_fsm, self.mme_model,
                mc_cache_dir=self.config.mc_cache_dir)
        return self._context

    def verify_property(self, prop: Property) -> PropertyResult:
        """Verify a single property against the extracted model."""
        ue_fsm = self.extract()
        return verify_one(prop, self.implementation, ue_fsm,
                          self.mme_model,
                          self.config.max_cegar_iterations,
                          self._cegar_context(ue_fsm))

    # ------------------------------------------------------------------
    # Stage 5: the full run
    # ------------------------------------------------------------------
    def analyze(self, properties: Optional[Sequence[Property]] = None,
                jobs: Optional[int] = None) -> AnalysisReport:
        """Verify every property the config selects (default: all 62).

        ``properties``/``jobs`` override the config for this call only.
        """
        before = obs.metrics().snapshot()
        if self.config.fault_plan is not None:
            faults.install(self.config.fault_plan)
        with obs.span("pipeline.analyze",
                      implementation=self.implementation) as root:
            ue_fsm = self.extract()
            selected = (list(properties) if properties is not None
                        else self.config.resolved_properties())
            engine = VerificationEngine(
                jobs if jobs is not None else self.config.resolved_jobs(),
                group_timeout=self.config.group_timeout_seconds,
                max_group_retries=self.config.max_group_retries,
                retry_backoff=self.config.retry_backoff_seconds)
            run = ImplementationRun(
                implementation=self.implementation,
                ue_fsm=ue_fsm,
                mme_model=self.mme_model,
                properties=selected,
                max_iterations=self.config.max_cegar_iterations,
                context=self._cegar_context(ue_fsm),
                mc_cache_dir=self.config.mc_cache_dir,
            )
            with obs.span("pipeline.verify",
                          implementation=self.implementation,
                          jobs=engine.jobs) as vspan:
                results = engine.verify([run])[self.implementation]
        report = self._report_skeleton(engine.jobs)
        report.results = results
        report.verification_seconds = vspan.duration
        report.elapsed_seconds = root.duration
        report.stats = PipelineStats.collect(
            root, results, self.implementation, engine.jobs,
            diff_snapshots(before, obs.metrics().snapshot()))
        return report

    def _report_skeleton(self, jobs: int) -> AnalysisReport:
        return AnalysisReport(
            implementation=self.implementation,
            fsm_summary=self.extract().summary(),
            extraction_seconds=self._extraction_seconds,
            coverage_percent=self._coverage_percent,
            conformance_cases=self._conformance_cases,
            log_lines=self._log_lines,
            jobs=jobs,
            stability=(self._stability.to_dict()
                       if self._stability is not None else None),
        )


ConfigLike = Union[str, AnalysisConfig]


def analyze_many(configs: Sequence[ConfigLike],
                 jobs: Optional[int] = None
                 ) -> Dict[str, AnalysisReport]:
    """Analyse several implementations through one shared worker pool.

    Each entry is an implementation name or a full
    :class:`AnalysisConfig`.  Extractions run once each (via the
    extraction cache); the property groups of *all* implementations are
    interleaved in a single engine invocation, so a pool of ``jobs``
    workers stays busy across implementation boundaries.  ``jobs``
    defaults to the widest request among the configs.
    """
    resolved = [config if isinstance(config, AnalysisConfig)
                else AnalysisConfig(implementation=config)
                for config in configs]
    checkers = [ProChecker.from_config(config) for config in resolved]
    before = obs.metrics().snapshot()
    # Robustness knobs for the one shared engine come from the first
    # config that sets each of them (``None``/default elsewhere).
    group_timeout = next((c.group_timeout_seconds for c in resolved
                          if c.group_timeout_seconds is not None), None)
    max_group_retries = next((c.max_group_retries for c in resolved
                              if c.max_group_retries != 2), 2)
    retry_backoff = next((c.retry_backoff_seconds for c in resolved
                          if c.retry_backoff_seconds != 0.05), 0.05)
    plan = next((c.fault_plan for c in resolved
                 if c.fault_plan is not None), None)
    if plan is not None:
        faults.install(plan)
    batch = ",".join(checker.implementation for checker in checkers)
    with obs.span("pipeline.analyze", implementation=batch) as root:
        runs: List[ImplementationRun] = []
        for checker in checkers:
            ue_fsm = checker.extract()
            runs.append(ImplementationRun(
                implementation=checker.implementation,
                ue_fsm=ue_fsm,
                mme_model=checker.mme_model,
                properties=checker.config.resolved_properties(),
                max_iterations=checker.config.max_cegar_iterations,
                context=checker._cegar_context(ue_fsm),
                mc_cache_dir=checker.config.mc_cache_dir,
            ))
        engine = VerificationEngine(
            jobs if jobs is not None
            else max(config.resolved_jobs() for config in resolved),
            group_timeout=group_timeout,
            max_group_retries=max_group_retries,
            retry_backoff=retry_backoff)
        with obs.span("pipeline.verify", implementation=batch,
                      jobs=engine.jobs) as vspan:
            outcomes = engine.verify(runs)
    metrics_delta = diff_snapshots(before, obs.metrics().snapshot())

    reports: Dict[str, AnalysisReport] = {}
    for checker in checkers:
        report = checker._report_skeleton(engine.jobs)
        report.results = outcomes[checker.implementation]
        report.verification_seconds = vspan.duration
        report.elapsed_seconds = root.duration
        # Per-implementation stats come out of the one shared trace: the
        # collector filters property spans by their implementation
        # attribute, so each report sees only its own rollups.
        report.stats = PipelineStats.collect(
            root, report.results, checker.implementation, engine.jobs,
            metrics_delta)
        reports[checker.implementation] = report
    return reports


# The PR 1 ``analyze_implementation()`` deprecation shim ended its
# grace period with the repro.api facade: use
# ``ProChecker.from_config(AnalysisConfig(...)).analyze()`` or
# :func:`analyze_many`.
