"""The ProChecker pipeline (Fig. 2): extraction then verification.

One :class:`ProChecker` instance analyses one implementation:

1. run the (instrumented) conformance suite → information-rich log;
2. extract the implementation FSM (Algorithm 1) + coverage;
3. pair it with the hand-built core-network model (Hussain et al.);
4. for every property: either the CEGAR MC↔CPV loop (LTL properties) or
   the corresponding testbed/CPV experiment (observational properties);
5. produce an :class:`~repro.core.report.AnalysisReport`.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from ..baselines import lteinspector_mme
from ..conformance import full_suite, measure_coverage, run_conformance
from ..extraction import extract_model, table_for_implementation
from ..fsm import FiniteStateMachine
from ..lte.implementations import REGISTRY
from ..properties.catalog import ALL_PROPERTIES
from ..properties.spec import (EXTRACTED_VOCAB, KIND_LTL, KIND_TESTBED,
                               Property)
from ..testbed import run_attack
from .cegar import CegarResult, check_with_cegar
from .report import (AnalysisReport, PropertyResult, VERDICT_NOT_APPLICABLE,
                     VERDICT_VERIFIED, VERDICT_VIOLATED)


class ProCheckerError(Exception):
    """Raised on pipeline misconfiguration."""


class ProChecker:
    """Property-guided formal verification of one LTE implementation."""

    def __init__(self, implementation: str,
                 mme_model: Optional[FiniteStateMachine] = None):
        if implementation not in REGISTRY:
            raise ProCheckerError(
                f"unknown implementation {implementation!r}; "
                f"available: {sorted(REGISTRY)}")
        self.implementation = implementation
        self.ue_class = REGISTRY[implementation]
        #: the paper uses the manually constructed open-source core
        #: network model (no access to a commercial core)
        self.mme_model = mme_model or lteinspector_mme()
        self._extracted: Optional[FiniteStateMachine] = None
        self._extraction_seconds = 0.0
        self._coverage_percent = 0.0
        self._conformance_cases = 0
        self._log_lines = 0

    # ------------------------------------------------------------------
    # Stage 1+2: conformance run and model extraction
    # ------------------------------------------------------------------
    def extract(self, cases=None) -> FiniteStateMachine:
        """Run the conformance suite under instrumentation and extract
        the implementation FSM.  Cached after the first call."""
        if self._extracted is not None and cases is None:
            return self._extracted
        suite = list(cases) if cases is not None \
            else full_suite(self.implementation)
        outcome = run_conformance(self.implementation, suite,
                                  instrument=True)
        table = table_for_implementation(self.ue_class)
        fsm, stats = extract_model(outcome.log_text, table,
                                   name=f"{self.implementation}_ue")
        coverage = measure_coverage(self.ue_class, outcome.log_text,
                                    self.implementation)
        self._extracted = fsm
        self._extraction_seconds = stats.elapsed_seconds
        self._coverage_percent = coverage.percent
        self._conformance_cases = outcome.executed
        self._log_lines = stats.log_lines
        return fsm

    # ------------------------------------------------------------------
    # Stage 3+4: verification
    # ------------------------------------------------------------------
    def verify_property(self, prop: Property) -> PropertyResult:
        """Verify a single property against the extracted model."""
        ue_fsm = self.extract()
        if prop.kind == KIND_LTL:
            return self._verify_ltl(prop, ue_fsm)
        if prop.kind == KIND_TESTBED:
            return self._verify_testbed(prop)
        raise ProCheckerError(f"unknown property kind {prop.kind!r}")

    def _verify_ltl(self, prop: Property,
                    ue_fsm: FiniteStateMachine) -> PropertyResult:
        formula = prop.formula_for(EXTRACTED_VOCAB)
        cegar: CegarResult = check_with_cegar(
            ue_fsm, self.mme_model, formula, prop.threat,
            name=prop.identifier)
        verdict = VERDICT_VERIFIED if cegar.verified else VERDICT_VIOLATED
        evidence = ""
        if cegar.is_attack:
            actions = [v.label for v in cegar.step_verdicts
                       if not v.label.startswith(("adv_pass", "adv_drop"))
                       or v.label.startswith("adv_drop")]
            evidence = ("realizable counterexample; adversarial steps: "
                        + ", ".join(dict.fromkeys(
                            cegar.attack.adversary_actions())))
        return PropertyResult(
            property=prop,
            verdict=verdict,
            counterexample=cegar.attack,
            evidence=evidence,
            iterations=cegar.iterations,
            refinements=len(cegar.refinements),
            states_explored=cegar.states_explored,
            elapsed_seconds=cegar.elapsed_seconds,
        )

    def _verify_testbed(self, prop: Property) -> PropertyResult:
        started = time.perf_counter()
        outcome = run_attack(prop.testbed_attack, self.implementation)
        elapsed = time.perf_counter() - started
        if "not applicable" in outcome.evidence:
            verdict = VERDICT_NOT_APPLICABLE
        elif outcome.succeeded:
            verdict = VERDICT_VIOLATED
        else:
            verdict = VERDICT_VERIFIED
        return PropertyResult(
            property=prop,
            verdict=verdict,
            evidence=outcome.evidence,
            iterations=1,
            elapsed_seconds=elapsed,
        )

    # ------------------------------------------------------------------
    # Stage 5: the full run
    # ------------------------------------------------------------------
    def analyze(self, properties: Optional[Sequence[Property]] = None
                ) -> AnalysisReport:
        """Verify every property (default: the 62-property catalog)."""
        started = time.perf_counter()
        ue_fsm = self.extract()
        report = AnalysisReport(
            implementation=self.implementation,
            fsm_summary=ue_fsm.summary(),
            extraction_seconds=self._extraction_seconds,
            coverage_percent=self._coverage_percent,
            conformance_cases=self._conformance_cases,
            log_lines=self._log_lines,
        )
        for prop in (properties if properties is not None
                     else ALL_PROPERTIES):
            report.results.append(self.verify_property(prop))
        report.elapsed_seconds = time.perf_counter() - started
        return report


def analyze_implementation(implementation: str,
                           properties: Optional[Sequence[Property]] = None
                           ) -> AnalysisReport:
    """One-call convenience wrapper: the whole pipeline."""
    return ProChecker(implementation).analyze(properties)
