"""The CEGAR verification loop: MC counterexamples validated by the CPV.

Section IV-B: the threat-instrumented model is checked by the symbolic
model checker; a counterexample's adversarial steps are handed to the
cryptographic protocol verifier; if some step is infeasible under the
Dolev-Yao assumptions, the abstraction is refined so "the adversary does
not exercise the offending action in the future iterations", and the
check reruns — until the property verifies or a realizable counterexample
is found.

The CPV bridge maps model-level adversary commands onto DY questions:

- ``adv_drop_* / adv_pass_*`` — always feasible (channel control);
- ``adv_replay_dl_<m>`` — feasible per the message's replay scope: plain
  messages always; ``authentication_request`` (AUTN under the permanent
  key) if *harvestable* — derivable by driving the core network with
  adversary-constructible messages, computed by searching the MME model
  (the P1 capture phase as a reachability query); session-protected
  messages only if the network genuinely sent them earlier in the trace;
- ``adv_inject_dl_<m>`` — feasible iff the injected term is synthesisable
  from adversary knowledge: plaintext always, a message claiming a valid
  MAC only if the MAC key is derivable (it is not), so forged-MAC
  injections are refuted and refined away;
- ``adv_inject_ul_<m>`` — feasible only for plaintext uplink messages.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .. import faults, obs
from ..cpv.deduction import Knowledge
from ..cpv.terms import Mac, Pair, Term, const, secret_key
from ..fsm import FiniteStateMachine, NULL_ACTION
from ..mc import (CheckRequest, CheckResult, McVerdictCache, ModelChecker,
                  Trace)
from ..lte import constants as c
from ..mc.model import Model
from ..threat import Refinement, ThreatConfig, ThreatInstrumentor

#: Uplink messages an adversary can fabricate from public data.
CONSTRUCTIBLE_UPLINK = frozenset({
    c.ATTACH_REQUEST, c.IDENTITY_RESPONSE, c.AUTH_SYNC_FAILURE,
    c.AUTH_MAC_FAILURE, c.DETACH_REQUEST, c.TAU_REQUEST,
})

_K_NAS = secret_key("k_nas_int")
_K_SUBSCRIBER = secret_key("k_subscriber")


def message_term(name: str, forged_mac: bool = False) -> Term:
    """The DY term an adversary must synthesise to inject ``name``.

    ``forged_mac=True`` models an injection claiming integrity validity:
    the term then contains a MAC under the (secret) session or permanent
    key, which the synthesis check will reject.
    """
    body = const(name)
    if not forged_mac:
        return body
    key = _K_SUBSCRIBER if name == c.AUTHENTICATION_REQUEST else _K_NAS
    return Pair(body, Mac(body, key))


def harvestable_messages(mme_fsm: FiniteStateMachine) -> Set[str]:
    """Messages the adversary can make the core network emit.

    Reachability over the MME model restricted to adversary-constructible
    stimuli — formalising the P1 capture phase: an ``attach_request``
    claiming any IMSI makes the network mint a genuine (MAC-valid)
    ``authentication_request``.
    """
    reachable = {mme_fsm.initial_state}
    harvested: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for transition in mme_fsm.transitions:
            if transition.source not in reachable:
                continue
            trigger = transition.trigger
            # Only stimuli the adversary can fabricate count: the message
            # *name* is public, but authenticated uplink messages (e.g.
            # authentication_response, which embeds RES under K) are not
            # synthesisable.
            if not trigger.startswith("internal_") \
                    and trigger not in CONSTRUCTIBLE_UPLINK:
                continue
            if transition.target not in reachable:
                reachable.add(transition.target)
                changed = True
            for action in transition.actions:
                if action != NULL_ACTION and action not in harvested:
                    harvested.add(action)
                    changed = True
    return harvested


@dataclass
class StepVerdict:
    """CPV feasibility verdict for one adversarial counterexample step."""

    label: str
    feasible: bool
    reason: str
    refinement: Optional[Refinement] = None


@dataclass
class CegarResult:
    """Outcome of the full CEGAR loop for one property."""

    property_name: str
    verified: bool
    attack: Optional[Trace] = None
    iterations: int = 0
    refinements: List[Refinement] = field(default_factory=list)
    step_verdicts: List[StepVerdict] = field(default_factory=list)
    states_explored: int = 0
    elapsed_seconds: float = 0.0
    mc_results: List[CheckResult] = field(default_factory=list)

    @property
    def is_attack(self) -> bool:
        return not self.verified and self.attack is not None


class CounterexampleValidator:
    """The CPV side of the loop: per-step feasibility (Section IV-B)."""

    def __init__(self, mme_fsm: FiniteStateMachine):
        with obs.span("cpv.harvest"):
            self.harvestable = harvestable_messages(mme_fsm)
        obs.count("cpv.validators_built")

    def validate(self, trace: Trace) -> List[StepVerdict]:
        verdicts: List[StepVerdict] = []
        honest_sent: Set[str] = set()
        knowledge = Knowledge({const(m) for m in CONSTRUCTIBLE_UPLINK})
        for step in trace.steps:
            label = step.label
            if label.startswith(("mme_t", "ue_t")):
                # Honest transmission: the adversary observes it.
                message = step.state.get("chan_dl") \
                    if label.startswith("mme_t") else \
                    step.state.get("chan_ul")
                if isinstance(message, str) and message != "none":
                    honest_sent.add(message)
                    knowledge.observe(const(message))
                continue
            if not label.startswith("adv_"):
                continue
            verdicts.append(self._judge(label, step.state, honest_sent,
                                        knowledge))
        return verdicts

    def _judge(self, label: str, state: Dict, honest_sent: Set[str],
               knowledge: Knowledge) -> StepVerdict:
        if label.startswith(("adv_pass", "adv_drop")):
            return StepVerdict(label, True, "channel control suffices")
        if label.startswith("adv_replay_dl_"):
            message = label[len("adv_replay_dl_"):]
            scope = c.REPLAY_SCOPE.get(message, "session")
            if scope == "plain":
                return StepVerdict(label, True,
                                   "plaintext message; replay trivial")
            if scope == "global":
                if message in self.harvestable or message in honest_sent:
                    return StepVerdict(
                        label, True,
                        "verifiable across sessions (AUTN under the "
                        "permanent key); harvestable via the capture "
                        "phase")
                return StepVerdict(
                    label, False, "message never obtainable",
                    Refinement("no_replay", message))
            if message in honest_sent:
                return StepVerdict(
                    label, True,
                    "captured in-session; MAC still verifies under the "
                    "current NAS context")
            return StepVerdict(
                label, False,
                "session-protected message never observed in this "
                "security context; replay requires a prior capture",
                Refinement("replay_needs_capture", message))
        if label.startswith("adv_inject_dl_"):
            message = label[len("adv_inject_dl_"):]
            claims_mac = state.get("dl_mac_valid") == 1 \
                and state.get("dl_plain") != 1
            term = message_term(message, forged_mac=claims_mac)
            if knowledge.can_construct(term):
                return StepVerdict(label, True,
                                   "term synthesisable from knowledge")
            return StepVerdict(
                label, False,
                "MAC key underivable: the forged message cannot be "
                "constructed",
                Refinement("no_forge", message))
        if label.startswith("adv_inject_ul_"):
            message = label[len("adv_inject_ul_"):]
            if message in CONSTRUCTIBLE_UPLINK:
                return StepVerdict(label, True,
                                   "plaintext uplink message constructible")
            return StepVerdict(
                label, False,
                "protected uplink message cannot be constructed",
                Refinement("no_inject_ul", message))
        return StepVerdict(label, True, "no adversarial content")


def threat_config_key(config: ThreatConfig) -> Tuple:
    """Hashable *canonical* identity of a threat configuration.

    Two properties whose adversaries have the same capabilities produce
    the same instrumented model, so the key doubles as the sharing key
    for :class:`CegarContext`'s model cache.  The capability tuples are
    sets semantically — a config listing ``(a, b)`` and one listing
    ``(b, a)`` instrument identically — so every component is sorted:
    field order never splits the cache (the catalog's 49 LTL properties
    must dedup to 21 shared configurations).
    """
    return (tuple(sorted(config.replay_dl)),
            tuple(sorted(config.inject_dl)),
            tuple(sorted(config.inject_ul)),
            config.allow_drop,
            tuple(sorted(config.internal_triggers)),
            tuple(sorted((r.kind, r.message)
                         for r in config.refinements)))


def threat_config_digest(config: ThreatConfig) -> str:
    """Stable digest of the canonical threat key (persistent-cache use).

    Refinements are part of the canonical key, so each CEGAR iteration
    of a refined configuration addresses its own verdict-cache entry —
    a warm re-run hits on *every* iteration, not just the first.
    """
    return hashlib.sha256(
        repr(threat_config_key(config)).encode()).hexdigest()


class CegarContext:
    """Property-invariant CEGAR inputs, shared across a verification run.

    Once the two machines are fixed, the harvestable-message set, the
    :class:`CounterexampleValidator` built on it, and the
    threat-instrumented model for a given :class:`ThreatConfig` are all
    pure functions of their inputs — recomputing them per property (62
    times per run) is wasted work.  Instances are thread-safe; for
    process pools each worker holds its own context.
    """

    def __init__(self, ue_fsm: FiniteStateMachine,
                 mme_fsm: FiniteStateMachine,
                 mc_cache_dir: Optional[str] = None):
        self.ue_fsm = ue_fsm
        self.mme_fsm = mme_fsm
        self._lock = threading.Lock()
        self._validator: Optional[CounterexampleValidator] = None
        self._models: Dict[Tuple, Model] = {}
        self.model_builds = 0
        self.model_hits = 0
        #: the run's one supported checking entry point; with a cache
        #: directory configured, verdicts persist across runs
        self.checker = ModelChecker(
            cache=(McVerdictCache(mc_cache_dir)
                   if mc_cache_dir else None))

    @property
    def validator(self) -> CounterexampleValidator:
        with self._lock:
            if self._validator is None:
                self._validator = CounterexampleValidator(self.mme_fsm)
            return self._validator

    def model_for(self, config: ThreatConfig) -> Model:
        """The instrumented model for ``config``, built at most once.

        The cached model keeps its warm state-graph memo
        (:meth:`repro.mc.model.Model.successor_items`), so later
        properties with the same adversary skip the state-space
        re-exploration entirely.
        """
        key = threat_config_key(config)
        with self._lock:
            model = self._models.get(key)
            if model is None:
                self.model_builds += 1
                obs.count("cegar.model_cache_misses")
                model = ThreatInstrumentor(self.ue_fsm, self.mme_fsm,
                                           config).build("IMP_shared")
                self._models[key] = model
            else:
                self.model_hits += 1
                obs.count("cegar.model_cache_hits")
            return model


def check_with_cegar(
    ue_fsm: FiniteStateMachine,
    mme_fsm: FiniteStateMachine,
    formula_text: str,
    config: ThreatConfig,
    name: str = "property",
    max_iterations: int = 8,
    context: Optional[CegarContext] = None,
) -> CegarResult:
    """Run the full MC↔CPV loop for one LTL property.

    ``context`` shares the property-invariant inputs (validator, base
    models) across calls; verdicts are identical with or without it.
    """
    result = CegarResult(property_name=name, verified=False)
    with obs.span("cegar", property=name) as span:
        validator = context.validator if context is not None \
            else CounterexampleValidator(mme_fsm)
        checker = context.checker if context is not None \
            else ModelChecker()
        current_config = config

        while result.iterations < max_iterations:
            result.iterations += 1
            obs.inc("cegar.iterations")
            faults.trip("cegar.iteration", key=name)
            if context is not None:
                model = context.model_for(current_config)
            else:
                model = ThreatInstrumentor(ue_fsm, mme_fsm,
                                           current_config).build(name)
            mc_result = checker.check(model, CheckRequest(
                formula=formula_text, name=name,
                threat_digest=threat_config_digest(current_config)))
            result.mc_results.append(mc_result)
            result.states_explored = max(result.states_explored,
                                         mc_result.states_explored)
            if mc_result.holds:
                result.verified = True
                break
            with obs.span("cpv.validate", property=name):
                verdicts = validator.validate(mc_result.counterexample)
            obs.inc("cpv.step_verdicts", len(verdicts))
            result.step_verdicts = verdicts
            infeasible = [v for v in verdicts if not v.feasible]
            if not infeasible:
                # Every adversarial step is realizable: a genuine attack.
                result.attack = mc_result.counterexample
                break
            refinement = infeasible[0].refinement
            if refinement is None \
                    or refinement in current_config.refinements:
                # Cannot refine further; report the counterexample as-is
                # but flag it unvalidated.
                result.attack = mc_result.counterexample
                break
            result.refinements.append(refinement)
            obs.inc("cegar.refinements")
            current_config = current_config.refined(refinement)

    result.elapsed_seconds = span.duration
    return result
