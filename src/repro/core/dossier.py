"""Attack dossiers: the human-readable findings report.

The paper's deliverable to GSMA/vendors is a written finding per attack
(description, detection property, counterexample, root cause, end-to-end
validation).  :func:`build_dossier` assembles exactly that from one
implementation's :class:`~repro.core.report.AnalysisReport`: for each
detected attack it collects the violated properties, the model-checker
counterexample, and re-validates the attack on the testbed;
:func:`render_markdown` prints the whole dossier as a disclosure-style
markdown document (the CLI's ``report`` command).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import schema
from ..mc import Trace
from ..testbed import registry, run_attack
from .report import AnalysisReport, PropertyResult

#: trace columns shown in dossier counterexamples
_TRACE_COLUMNS = ("turn", "ue_state", "chan_dl", "chan_ul", "dl_sqn_rel",
                  "dl_count_rel", "dl_mac_valid", "dl_replayed",
                  "dl_injected")


@dataclass
class AttackFinding:
    """Everything known about one detected attack."""

    attack_id: str
    implementation: str
    properties: List[PropertyResult] = field(default_factory=list)
    counterexample: Optional[Trace] = None
    testbed_validated: Optional[bool] = None
    testbed_evidence: str = ""

    @property
    def title(self) -> str:
        return f"{self.attack_id} on {self.implementation}"

    @property
    def categories(self) -> List[str]:
        return sorted({result.property.category
                       for result in self.properties})

    def to_dict(self) -> Dict:
        """JSON-ready form (nested results carry their own version)."""
        return {
            "attack_id": self.attack_id,
            "implementation": self.implementation,
            "categories": self.categories,
            "properties": [result.to_dict()
                           for result in self.properties],
            "counterexample": (self.counterexample.to_dict()
                               if self.counterexample is not None
                               else None),
            "testbed_validated": self.testbed_validated,
            "testbed_evidence": self.testbed_evidence,
        }


@dataclass
class Dossier:
    """The full findings report for one implementation."""

    implementation: str
    findings: List[AttackFinding] = field(default_factory=list)
    verified_count: int = 0
    property_count: int = 0

    def finding(self, attack_id: str) -> AttackFinding:
        for finding in self.findings:
            if finding.attack_id == attack_id:
                return finding
        raise KeyError(attack_id)

    def to_dict(self) -> Dict:
        """JSON-ready form for ``repro report --json``."""
        return schema.stamp({
            "implementation": self.implementation,
            "verified_count": self.verified_count,
            "property_count": self.property_count,
            "findings": [finding.to_dict()
                         for finding in self.findings],
        })


def build_dossier(report: AnalysisReport,
                  validate_on_testbed: bool = True) -> Dossier:
    """Assemble a findings dossier from an analysis report."""
    dossier = Dossier(
        implementation=report.implementation,
        verified_count=len(report.verified()),
        property_count=len(report.results),
    )
    by_attack: Dict[str, List[PropertyResult]] = {}
    for result in report.violated():
        if result.property.attack_id:
            by_attack.setdefault(result.property.attack_id,
                                 []).append(result)
    for attack_id in sorted(by_attack):
        results = by_attack[attack_id]
        finding = AttackFinding(attack_id, report.implementation,
                                properties=results)
        for result in results:
            if result.counterexample is not None:
                finding.counterexample = result.counterexample
                break
        if validate_on_testbed and attack_id in registry():
            outcome = run_attack(attack_id, report.implementation)
            finding.testbed_validated = outcome.succeeded
            finding.testbed_evidence = outcome.evidence
        dossier.findings.append(finding)
    return dossier


def render_markdown(dossier: Dossier) -> str:
    """Render the dossier as a disclosure-style markdown document."""
    lines: List[str] = [
        f"# ProChecker findings — `{dossier.implementation}`",
        "",
        f"{dossier.property_count} properties verified: "
        f"{dossier.verified_count} hold, "
        f"{len(dossier.findings)} distinct attacks found.",
        "",
        "| attack | property ids | category | testbed |",
        "|---|---|---|---|",
    ]
    for finding in dossier.findings:
        identifiers = ", ".join(result.property.identifier
                                for result in finding.properties)
        validated = {True: "validated", False: "NOT reproduced",
                     None: "n/a"}[finding.testbed_validated]
        lines.append(f"| {finding.attack_id} | {identifiers} "
                     f"| {'/'.join(finding.categories)} | {validated} |")
    lines.append("")

    for finding in dossier.findings:
        lines.append(f"## {finding.attack_id}")
        lines.append("")
        primary = finding.properties[0].property
        lines.append(f"**Violated property** ({primary.identifier}): "
                     f"{primary.description}")
        lines.append("")
        for result in finding.properties:
            if result.evidence:
                lines.append(f"- {result.property.identifier}: "
                             f"{result.evidence}")
        if finding.testbed_evidence:
            lines.append("")
            lines.append(f"**Testbed validation**: "
                         f"{finding.testbed_evidence}")
        if finding.counterexample is not None:
            lines.append("")
            lines.append("**Counterexample** (model-checker lasso; "
                         "adversary steps prefixed `adv_`):")
            lines.append("")
            lines.append("```")
            lines.append(finding.counterexample.format(_TRACE_COLUMNS,
                                                       hide_idle=True))
            lines.append("```")
        lines.append("")
    return "\n".join(lines)
