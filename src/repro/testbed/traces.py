"""Synthetic operator traces: the SQN-ageing observation (Section VII-A).

The paper analysed "traces of real operational networks" and observed
that with the COTS choice of ``IND = 5`` bits (a 32-slot array), a UE
receives the ~31 authentication_requests needed to expire a captured one
only over *days* — so a captured request stays replayable for days.

:func:`simulate_operator_trace` generates a synthetic authentication
schedule with a configurable inter-authentication interval, feeds the
resulting SQNs through a real :class:`~repro.lte.sqn.UsimSqnArray`, and
reports how long each captured request would remain acceptable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..lte.sqn import Sqn, SqnGenerator, UsimSqnArray


@dataclass
class TraceEvent:
    """One authentication event in the synthetic operator trace."""

    time_hours: float
    sqn: Sqn


@dataclass
class StalenessReport:
    """How long captured authentication_requests stay replayable."""

    ind_bits: int
    mean_interval_hours: float
    events: List[TraceEvent] = field(default_factory=list)
    #: for each captured event index, hours until a replay stops working
    replayable_hours: List[float] = field(default_factory=list)

    @property
    def max_replayable_days(self) -> float:
        if not self.replayable_hours:
            return 0.0
        return max(self.replayable_hours) / 24.0

    @property
    def mean_replayable_days(self) -> float:
        if not self.replayable_hours:
            return 0.0
        return (sum(self.replayable_hours)
                / len(self.replayable_hours)) / 24.0


def _deterministic_jitter(index: int) -> float:
    """Deterministic pseudo-jitter in [0.5, 1.5] (reproducible runs)."""
    return 0.5 + ((index * 2654435761) % 1000) / 1000.0


def simulate_operator_trace(
    duration_days: float = 14.0,
    mean_interval_hours: float = 4.0,
    ind_bits: int = 5,
    freshness_limit: Optional[int] = None,
) -> StalenessReport:
    """Generate a trace and measure the staleness-acceptance window.

    With the defaults (an authentication every ~4h, 32-slot array) the
    window comes out to several days — the paper's observation that
    "majority of the COTS UE implementations accept a couple of days old
    authentication_request".
    """
    generator = SqnGenerator(ind_bits=ind_bits)
    report = StalenessReport(ind_bits=ind_bits,
                             mean_interval_hours=mean_interval_hours)
    clock_hours = 0.0
    index = 0
    while clock_hours < duration_days * 24.0:
        clock_hours += mean_interval_hours * _deterministic_jitter(index)
        report.events.append(TraceEvent(clock_hours, generator.next()))
        index += 1

    # For each captured request, replay it against a USIM that has
    # accepted everything up to each later point in time.
    for captured_index, captured in enumerate(report.events):
        usim = UsimSqnArray(ind_bits=ind_bits,
                            freshness_limit=freshness_limit)
        # Everything before the capture was accepted; the captured request
        # itself was dropped by the attacker and never reached the USIM.
        for event in report.events[:captured_index]:
            usim.verify(event.sqn)
        horizon = captured.time_hours
        for event in report.events[captured_index + 1:]:
            if not usim.peek(captured.sqn).accepted:
                break
            horizon = event.time_hours
            usim.verify(event.sqn)
        else:
            if usim.peek(captured.sqn).accepted:
                horizon = report.events[-1].time_hours
        report.replayable_hours.append(horizon - captured.time_hours)
    return report


def stale_window_size(ind_bits: int = 5) -> int:
    """The paper's count: a ``2**ind_bits`` array accepts ``2**ind_bits - 1``
    previously captured stale requests."""
    generator = SqnGenerator(ind_bits=ind_bits)
    usim = UsimSqnArray(ind_bits=ind_bits)
    history = [generator.next() for _ in range(1 << ind_bits)]
    # The UE legitimately accepts only the newest one...
    usim.verify(history[-1])
    # ...then an attacker replays every older captured request.
    return sum(1 for sqn in history[:-1] if usim.verify(sqn).accepted)
