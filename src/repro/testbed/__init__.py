"""Simulated SDR testbed: end-to-end attack validation (Section VI).

- :mod:`repro.testbed.simulator` — multi-UE lab with a shared core;
- :mod:`repro.testbed.attacker` — sniff/drop/replay/inject toolkit;
- :mod:`repro.testbed.attacks` — the new attacks P1-P3 and I1-I6;
- :mod:`repro.testbed.prior` — the 14 previously-known attacks;
- :mod:`repro.testbed.traces` — synthetic operator traces (SQN ageing).
"""

from .simulator import Testbed, UeStation
from .attacker import Attacker, DropFilter
from .attacks import AttackOutcome, AttackResult, registry, run_attack
from . import prior  # noqa: F401 - registers the prior attacks
from . import experiments  # noqa: F401 - registers CPV experiments
from .prior import PRIOR_ATTACK_IDS
from .traces import (StalenessReport, simulate_operator_trace,
                     stale_window_size)

__all__ = [
    "Testbed", "UeStation",
    "Attacker", "DropFilter",
    "AttackOutcome", "AttackResult", "registry", "run_attack",
    "PRIOR_ATTACK_IDS",
    "StalenessReport", "simulate_operator_trace", "stale_window_size",
]
