"""The in-path attacker toolkit for the testbed.

Implements the Dolev-Yao capabilities on real frames: sniffing (every
frame that crossed any link is in the link history), selective dropping
(a MITM relay with a drop filter — the P3 tool), replaying captured
frames byte-for-byte (the P1/P2/I-series tool), and crafting plaintext
messages (the injection attacks).  Response observation helpers build the
CPV :class:`~repro.cpv.equivalence.Frame` objects the linkability
experiments compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..cpv.equivalence import Frame
from ..cpv.terms import Atom, KIND_DATA, Term, const, pair
from ..lte.messages import NasMessage
from .simulator import Testbed


@dataclass
class DropFilter:
    """Selective packet dropping by message name (the P3 MITM relay).

    "The attacker, by inferring the message type (from the packet
    meta-data ...), can selectively drop relevant packets until the
    security procedure is abandoned" — here the filter inspects the
    parsed name, a strict superset of what packet-length inference gives.
    """

    drop_names: Tuple[str, ...]
    direction: str = "downlink"
    dropped: List[str] = field(default_factory=list)
    #: the withheld frames, byte-for-byte — the attacker's capture buffer
    dropped_frames: List[bytes] = field(default_factory=list)

    def intercept(self, direction: str, frame: bytes) -> Optional[bytes]:
        if direction != self.direction:
            return frame
        try:
            message = NasMessage.from_wire(frame)
        except Exception:  # noqa: BLE001 - pass unparseable frames through
            obs.count("channel.malformed_frames")
            return frame
        if message.name in self.drop_names:
            self.dropped.append(message.name)
            self.dropped_frames.append(frame)
            return None
        return frame


class Attacker:
    """Adversary controlling the radio environment of a testbed."""

    def __init__(self, testbed: Testbed):
        self.testbed = testbed
        self.captured: List[Tuple[str, str, bytes]] = []

    # -- sniffing ---------------------------------------------------------
    def sniff(self) -> None:
        """Record every frame currently in any link's history."""
        self.captured = []
        for name, station in self.testbed.stations.items():
            for record in station.link.history:
                self.captured.append((name, record.direction, record.frame))

    def captured_frame(self, message_name: str, direction: str = "downlink",
                       index: int = -1) -> Optional[bytes]:
        self.sniff()
        matches = []
        for _station, frame_direction, frame in self.captured:
            if frame_direction != direction:
                continue
            try:
                message = NasMessage.from_wire(frame)
            except Exception:  # noqa: BLE001 - skip unparseable captures
                obs.count("channel.malformed_frames")
                continue
            if message.name == message_name:
                matches.append(frame)
        if not matches:
            return None
        return matches[index]

    # -- channel control --------------------------------------------------
    def install_drop_filter(self, station_name: str,
                            drop_names: Sequence[str],
                            direction: str = "downlink") -> DropFilter:
        drop_filter = DropFilter(tuple(drop_names), direction)
        self.testbed.station(station_name).link.interceptor = drop_filter
        return drop_filter

    def cut_network(self, station_name: str) -> None:
        """Detach the MME so the UE only hears the attacker."""
        self.testbed.station(station_name).link.detach_mme()

    # -- injection / replay -------------------------------------------------
    def replay_to_ue(self, station_name: str, frame: bytes) -> None:
        self.testbed.station(station_name).link.inject_downlink(frame)

    def replay_to_all_ues(self, frame: bytes) -> None:
        """The P2 step: a rogue base station replays to every UE in cell."""
        for station in self.testbed.stations.values():
            station.link.inject_downlink(frame)

    def inject_plain_to_ue(self, station_name: str, message_name: str,
                           fields: Optional[Dict] = None) -> None:
        message = NasMessage(name=message_name, fields=dict(fields or {}))
        self.replay_to_ue(station_name, message.to_wire())

    def inject_plain_to_mme(self, station_name: str, message_name: str,
                            fields: Optional[Dict] = None) -> None:
        message = NasMessage(name=message_name, fields=dict(fields or {}))
        self.testbed.station(station_name).link.inject_uplink(
            message.to_wire())

    # -- observation --------------------------------------------------------
    def response_frame(self, station_name: str,
                       since_index: int) -> Frame:
        """The UE's uplink responses after ``since_index`` as a CPV frame."""
        station = self.testbed.station(station_name)
        frame = Frame()
        for record in station.link.history[since_index:]:
            if record.direction != "uplink":
                continue
            try:
                message = NasMessage.from_wire(record.frame)
            except Exception:  # noqa: BLE001 - still an observation
                obs.count("channel.malformed_frames")
                frame.observe("unparseable", const("garbage"))
                continue
            frame.observe(message.name, _message_term(message))
        return frame

    def mark(self, station_name: str) -> int:
        """Current history position (pair with :meth:`response_frame`)."""
        return len(self.testbed.station(station_name).link.history)


def _message_term(message: NasMessage) -> Term:
    """A DY term view of an observed message (fields become atoms)."""
    parts: List[Term] = [const(message.name)]
    for key in sorted(message.fields):
        value = message.fields[key]
        rendered = value.hex() if isinstance(value, bytes) else str(value)
        parts.append(Atom(f"{key}:{rendered}", KIND_DATA, public=False))
    return pair(*parts)
