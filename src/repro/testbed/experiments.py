"""CPV secrecy/indistinguishability experiments (privacy verification).

These complement the attack scripts: they run honest (or lightly probed)
protocol exchanges on the testbed and pose Dolev-Yao queries about what
the adversary learned.  ``succeeded=True`` means the property is
VIOLATED (a leak or a distinguisher was found) — the same convention as
the attack registry, which these experiments share.
"""

from __future__ import annotations

from .. import obs
from ..cpv.deduction import Knowledge
from ..cpv.equivalence import Frame, distinguishable
from ..cpv.terms import Atom, KIND_DATA, KIND_KEY
from ..lte import constants as c
from ..lte.messages import NasMessage
from .attacker import Attacker, _message_term
from .attacks import AttackResult, attack
from .simulator import Testbed


def _channel_knowledge(testbed: Testbed, station: str) -> Knowledge:
    """Everything a passive adversary saw on the victim's link, as terms."""
    knowledge = Knowledge()
    for record in testbed.station(station).link.history:
        try:
            message = NasMessage.from_wire(record.frame)
        except Exception:  # noqa: BLE001
            obs.count("channel.malformed_frames")
            continue
        knowledge.observe(_message_term(message))
    return knowledge


@attack("SECRECY-permanent-key")
def secrecy_permanent_key(implementation: str) -> AttackResult:
    """The subscriber's permanent key K must never be channel-derivable."""
    testbed = Testbed(implementation)
    testbed.add_ue("victim")
    testbed.attach_all()
    victim = testbed.station("victim")
    knowledge = _channel_knowledge(testbed, "victim")
    key_term = Atom(f"K:{victim.subscriber.permanent_key.hex()}",
                    KIND_KEY, public=False)
    leaked = knowledge.can_construct(key_term)
    return AttackResult(
        "SECRECY-permanent-key", implementation, leaked,
        "permanent key derivable from channel traffic" if leaked
        else "permanent key underivable from observed traffic")


@attack("SECRECY-session-keys")
def secrecy_session_keys(implementation: str) -> AttackResult:
    """KASME / NAS keys must never be channel-derivable."""
    testbed = Testbed(implementation)
    testbed.add_ue("victim")
    testbed.attach_all()
    victim = testbed.station("victim")
    knowledge = _channel_knowledge(testbed, "victim")
    context = victim.ue.security_ctx
    if context is None:
        return AttackResult("SECRECY-session-keys", implementation, False,
                            "no context established")
    leaked = any(
        knowledge.can_construct(Atom(f"key:{key.hex()}", KIND_KEY))
        for key in (context.kasme, context.k_nas_int, context.k_nas_enc))
    return AttackResult(
        "SECRECY-session-keys", implementation, leaked,
        "session key derivable" if leaked
        else "session keys underivable from observed traffic")


@attack("SECRECY-imsi-guti-attach")
def secrecy_imsi_guti_attach(implementation: str) -> AttackResult:
    """A GUTI-based re-attach must not expose the IMSI on the channel."""
    testbed = Testbed(implementation)
    testbed.add_ue("victim")
    testbed.attach_all()
    victim = testbed.station("victim")
    # Second session: the UE now holds a GUTI and should identify with it.
    first_session_end = len(victim.link.history)
    victim.ue.emm_state = c.EMM_DEREGISTERED
    victim.mme.emm_state = "MME_EMM_DEREGISTERED"
    victim.ue.power_on()
    imsi = str(victim.subscriber.imsi)
    knowledge = Knowledge()
    for record in victim.link.history[first_session_end:]:
        try:
            message = NasMessage.from_wire(record.frame)
        except Exception:  # noqa: BLE001
            obs.count("channel.malformed_frames")
            continue
        knowledge.observe(_message_term(message))
    imsi_atom = Atom(f"imsi:{imsi}", KIND_DATA, public=False)
    leaked = knowledge.can_construct(imsi_atom)
    return AttackResult(
        "SECRECY-imsi-guti-attach", implementation, leaked,
        "IMSI observable in the GUTI-based re-attach" if leaked
        else "re-attach exchange reveals no IMSI")


@attack("GUTI-reattach")
def guti_reattach(implementation: str) -> AttackResult:
    """After a GUTI is assigned, re-attach identifies with the GUTI."""
    testbed = Testbed(implementation)
    testbed.add_ue("victim")
    testbed.attach_all()
    victim = testbed.station("victim")
    mark = len(victim.link.history)
    victim.ue.emm_state = c.EMM_DEREGISTERED
    victim.ue.power_on()
    used_imsi = False
    for record in victim.link.history[mark:]:
        if record.direction != "uplink":
            continue
        try:
            message = NasMessage.from_wire(record.frame)
        except Exception:  # noqa: BLE001
            obs.count("channel.malformed_frames")
            continue
        if message.name == c.ATTACH_REQUEST and "imsi" in message.fields:
            used_imsi = True
    return AttackResult(
        "GUTI-reattach", implementation, used_imsi,
        "re-attach exposed the IMSI despite an assigned GUTI"
        if used_imsi else "re-attach used the GUTI")


@attack("ATTACH-replay-indistinguishable")
def attach_replay_indistinguishable(implementation: str) -> AttackResult:
    """Replaying a captured attach_request yields the same *type* of
    network response for every subscriber — no distinguisher."""
    testbed = Testbed(implementation)
    testbed.add_ue("a")
    testbed.add_ue("b")
    testbed.attach_all()
    attacker = Attacker(testbed)
    frames = {}
    for name in ("a", "b"):
        mark = attacker.mark(name)
        imsi = str(testbed.station(name).subscriber.imsi)
        attacker.inject_plain_to_mme(name, c.ATTACH_REQUEST,
                                     {"imsi": imsi})
        frame = Frame()
        for record in testbed.station(name).link.history[mark:]:
            if record.direction != "downlink":
                continue
            try:
                message = NasMessage.from_wire(record.frame)
            except Exception:  # noqa: BLE001
                obs.count("channel.malformed_frames")
                continue
            # The distinguisher is the response *type*; payloads are
            # subscriber-specific by construction.
            frame.observe(message.name, Atom(message.name, KIND_DATA,
                                             public=True))
        frames[name] = frame
    verdict = distinguishable(frames["a"], frames["b"])
    return AttackResult(
        "ATTACH-replay-indistinguishable", implementation, bool(verdict),
        f"subscribers distinguishable: {verdict.test}" if verdict
        else "response types identical across subscribers")


# ---------------------------------------------------------------------------
# Fuzzer deviation replay (repro.fuzz -> testbed bridge)
# ---------------------------------------------------------------------------
def replay_deviation(payload) -> AttackResult:
    """Re-run a minimised fuzzer deviation as a testbed experiment.

    ``payload`` is a :class:`repro.fuzz.Deviation` or its ``to_dict``
    wire form (the ``deviations/<digest>.json`` artifact a campaign
    persists).  The minimised schedule is re-executed in lockstep
    against the reference; ``succeeded=True`` means the divergence
    signature reproduced — the implementation still leaves its
    extracted FSM on this input.  ``attack_id`` is ``FUZZ-<digest>``
    so replays file alongside the Table I scripts.
    """
    # Lazy import: repro.fuzz reaches core.prochecker, which reaches
    # back into repro.testbed at module-import time.
    from ..fuzz import run_schedule
    from ..fuzz.deviation import Deviation

    deviation = (payload if isinstance(payload, Deviation)
                 else Deviation.from_dict(payload))
    with obs.span("testbed.replay_deviation",
                  implementation=deviation.implementation):
        result = run_schedule(deviation.implementation, deviation.schedule,
                              reference=deviation.reference)
    expected = deviation.signature()
    reproduced = result.diverged \
        and result.divergence_signature() == expected
    detail = "signature did not reproduce"
    if reproduced:
        detail = (f"diverges from {deviation.reference} at step "
                  f"{result.divergence_index}")
    elif result.diverged:
        detail = (f"diverged at step {result.divergence_index} with a "
                  f"different signature")
    return AttackResult(
        f"FUZZ-{deviation.digest[:12]}", deviation.implementation,
        reproduced, detail,
        details={
            "classification": deviation.classification,
            "digest": deviation.digest,
            "step_index": result.divergence_index,
            "schedule_length": len(deviation.schedule),
        })
