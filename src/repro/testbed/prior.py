"""Testbed validation of the 14 previously-known attacks (Table I).

Each function exercises one prior attack end-to-end.  Two rows of the
paper's table are marked "-" (not applicable: linkability via
TMSI_reallocation and the downgrade via tracking_area_reject were not
evaluated); their scripts return ``succeeded=False`` with an explanatory
note, matching the table.
"""

from __future__ import annotations

from typing import List

from ..cpv.equivalence import distinguishable
from ..lte import constants as c
from .attacker import Attacker
from .attacks import AttackResult, attack
from .simulator import Testbed


@attack("PRIOR-auth-sync-failure")
def prior_auth_sync_failure(implementation: str) -> AttackResult:
    """Hussain et al.: replayed authentication_request in the victim's own
    IND slot drives the USIM into a synchronisation-failure loop (DoS)."""
    testbed = Testbed(implementation)
    testbed.add_ue("victim")
    testbed.attach_all()
    attacker = Attacker(testbed)
    captured = attacker.captured_frame(c.AUTHENTICATION_REQUEST)
    victim = testbed.station("victim")
    # A second legitimate authentication moves the slot's SEQ past the
    # captured value, so the replay now triggers sync failures.
    attacker.inject_plain_to_mme(
        "victim", c.ATTACH_REQUEST,
        {"imsi": str(victim.subscriber.imsi)})
    mark = attacker.mark("victim")
    attacker.cut_network("victim")
    sync_failures = 0
    for _ in range(3):
        attacker.replay_to_ue("victim", captured)
    labels = attacker.response_frame("victim", mark).labels
    sync_failures = labels.count(c.AUTH_SYNC_FAILURE)
    responded = sync_failures > 0 or c.AUTHENTICATION_RESPONSE in labels
    return AttackResult(
        "PRIOR-auth-sync-failure", implementation, responded,
        (f"{sync_failures} auth_sync_failure responses elicited by "
         f"replays (DoS amplification)" if responded else "no reaction"),
        {"responses": labels},
    )


@attack("PRIOR-stealthy-kickoff")
def prior_stealthy_kickoff(implementation: str) -> AttackResult:
    """Spoofed plaintext detach_request to the MME detaches the victim."""
    testbed = Testbed(implementation)
    testbed.add_ue("victim")
    testbed.attach_all()
    victim = testbed.station("victim")
    attacker = Attacker(testbed)
    victim.link.detach_ue()   # victim hears nothing (stealthy)
    attacker.inject_plain_to_mme("victim", c.DETACH_REQUEST,
                                 {"switch_off": 1})
    kicked = victim.mme.emm_state == c.MME_DEREGISTERED
    return AttackResult(
        "PRIOR-stealthy-kickoff", implementation, kicked,
        ("MME deregistered the victim on a spoofed plaintext "
         "detach_request; UE unaware" if kicked else "MME kept session"),
        {"mme_state": victim.mme.emm_state},
    )


@attack("PRIOR-panic")
def prior_panic(implementation: str) -> AttackResult:
    """Injected paging moves every registered UE off normal service."""
    testbed = Testbed(implementation)
    testbed.add_ue("victim")
    testbed.attach_all()
    victim = testbed.station("victim")
    attacker = Attacker(testbed)
    attacker.cut_network("victim")
    attacker.inject_plain_to_ue(
        "victim", c.PAGING, {"paging_id": str(victim.ue.current_guti)})
    hijacked = victim.ue.emm_state == c.EMM_SERVICE_REQUEST_INITIATED
    return AttackResult(
        "PRIOR-panic", implementation, hijacked,
        ("unauthenticated paging accepted; UE diverted into service "
         "request" if hijacked else "paging ignored"),
        {"ue_state": victim.ue.emm_state},
    )


@attack("PRIOR-linkability-tmsi-realloc")
def prior_tmsi_realloc(implementation: str) -> AttackResult:
    """Arapinis et al. TMSI reallocation linkability — '-' in Table I."""
    return AttackResult(
        "PRIOR-linkability-tmsi-realloc", implementation, False,
        "not applicable: 3G TMSI reallocation procedure not part of the "
        "evaluated NAS configuration (Table I marks this row '-')",
        applicable=False)


@attack("PRIOR-linkability-imsi-paging")
def prior_imsi_paging(implementation: str) -> AttackResult:
    """Paging with IMSI: only the paged subscriber reacts — linkable."""
    testbed = Testbed(implementation)
    testbed.add_ue("victim")
    testbed.add_ue("bystander")
    testbed.attach_all()
    attacker = Attacker(testbed)
    victim_imsi = str(testbed.station("victim").subscriber.imsi)
    marks = {name: attacker.mark(name) for name in testbed.stations}
    for name in testbed.stations:
        attacker.cut_network(name)
        attacker.inject_plain_to_ue(name, c.PAGING,
                                    {"paging_id": victim_imsi})
    victim_frame = attacker.response_frame("victim", marks["victim"])
    bystander_frame = attacker.response_frame("bystander",
                                              marks["bystander"])
    verdict = distinguishable(victim_frame, bystander_frame)
    return AttackResult(
        "PRIOR-linkability-imsi-paging", implementation, bool(verdict),
        (f"IMSI-paging links the victim: {verdict.test}" if verdict
         else "indistinguishable"),
        {"victim": victim_frame.labels,
         "bystander": bystander_frame.labels},
    )


@attack("PRIOR-linkability-auth-sync")
def prior_auth_sync_linkability(implementation: str) -> AttackResult:
    """Arapinis et al.: sync-failure vs MAC-failure distinguishes UEs."""
    testbed = Testbed(implementation)
    testbed.add_ue("victim")
    testbed.add_ue("bystander")
    testbed.attach_all()
    attacker = Attacker(testbed)
    captured = attacker.captured_frame(c.AUTHENTICATION_REQUEST)
    victim = testbed.station("victim")
    attacker.inject_plain_to_mme(
        "victim", c.ATTACH_REQUEST,
        {"imsi": str(victim.subscriber.imsi)})
    marks = {name: attacker.mark(name) for name in testbed.stations}
    for name in testbed.stations:
        attacker.cut_network(name)
    attacker.replay_to_all_ues(captured)
    victim_frame = attacker.response_frame("victim", marks["victim"])
    bystander_frame = attacker.response_frame("bystander",
                                              marks["bystander"])
    verdict = distinguishable(victim_frame, bystander_frame)
    return AttackResult(
        "PRIOR-linkability-auth-sync", implementation, bool(verdict),
        (f"failure-message oracle: {verdict.test}" if verdict
         else "indistinguishable"),
        {"victim": victim_frame.labels,
         "bystander": bystander_frame.labels},
    )


@attack("PRIOR-auth-relay")
def prior_auth_relay(implementation: str) -> AttackResult:
    """Authentication relay: a transparent MITM completes the attach with
    neither endpoint able to detect the relay (no channel binding)."""
    testbed = Testbed(implementation)
    testbed.add_ue("victim")

    relayed: List[str] = []

    class Relay:
        def intercept(self, direction: str, frame: bytes):
            relayed.append(direction)
            return frame   # forwarded verbatim from a remote location

    testbed.station("victim").link.interceptor = Relay()
    testbed.attach_all()
    completed = testbed.station("victim").ue.emm_state == c.EMM_REGISTERED
    undetected = completed and len(relayed) > 0
    return AttackResult(
        "PRIOR-auth-relay", implementation, undetected,
        (f"attach completed through a relay carrying {len(relayed)} "
         f"frames; no channel binding detects it" if undetected
         else "relay detected or attach failed"),
        {"frames_relayed": len(relayed)},
    )


@attack("PRIOR-numb")
def prior_numb(implementation: str) -> AttackResult:
    """Injected plaintext authentication_reject mid-attach numbs the UE."""
    testbed = Testbed(implementation)
    testbed.add_ue("victim")
    victim = testbed.station("victim")
    attacker = Attacker(testbed)
    attacker.install_drop_filter("victim", (c.AUTHENTICATION_REQUEST,))
    victim.ue.power_on()          # attach stalls mid-procedure
    victim.link.interceptor = None
    attacker.cut_network("victim")
    attacker.inject_plain_to_ue("victim", c.AUTHENTICATION_REJECT, {})
    numbed = victim.ue.emm_state == c.EMM_DEREGISTERED
    return AttackResult(
        "PRIOR-numb", implementation, numbed,
        ("plaintext authentication_reject accepted; UE deregistered with "
         "no retry (prolonged DoS)" if numbed
         else f"UE in {victim.ue.emm_state}"),
        {"ue_state": victim.ue.emm_state},
    )


@attack("PRIOR-downgrade-tau-reject")
def prior_tau_reject(implementation: str) -> AttackResult:
    """Shaik et al. downgrade via tracking_area_reject — '-' in Table I."""
    return AttackResult(
        "PRIOR-downgrade-tau-reject", implementation, False,
        "not applicable: RRC-level downgrade outside the NAS-layer "
        "configuration (Table I marks this row '-')",
        applicable=False)


@attack("PRIOR-denial-all-services")
def prior_denial_all_services(implementation: str) -> AttackResult:
    """Injected service_reject during a service request denies service."""
    testbed = Testbed(implementation)
    testbed.add_ue("victim")
    testbed.attach_all()
    victim = testbed.station("victim")
    attacker = Attacker(testbed)
    attacker.cut_network("victim")
    attacker.inject_plain_to_ue(
        "victim", c.PAGING, {"paging_id": str(victim.ue.current_guti)})
    attacker.inject_plain_to_ue("victim", c.SERVICE_REJECT,
                                {"cause": c.CAUSE_EPS_NOT_ALLOWED})
    denied = victim.ue.emm_state == c.EMM_DEREGISTERED_ATTACH_NEEDED
    return AttackResult(
        "PRIOR-denial-all-services", implementation, denied,
        ("plaintext service_reject accepted; UE pushed out of service"
         if denied else f"UE in {victim.ue.emm_state}"),
        {"ue_state": victim.ue.emm_state},
    )


@attack("PRIOR-paging-hijack")
def prior_paging_hijack(implementation: str) -> AttackResult:
    """Attacker paging captures the victim's service request flow."""
    testbed = Testbed(implementation)
    testbed.add_ue("victim")
    testbed.attach_all()
    victim = testbed.station("victim")
    attacker = Attacker(testbed)
    mark = attacker.mark("victim")
    attacker.cut_network("victim")
    attacker.inject_plain_to_ue(
        "victim", c.PAGING, {"paging_id": str(victim.ue.current_guti)})
    labels = attacker.response_frame("victim", mark).labels
    hijacked = c.SERVICE_REQUEST in labels
    return AttackResult(
        "PRIOR-paging-hijack", implementation, hijacked,
        ("victim's service_request answered an attacker paging occasion"
         if hijacked else "no reaction"),
        {"responses": labels},
    )


@attack("PRIOR-detach-downgrade")
def prior_detach_downgrade(implementation: str) -> AttackResult:
    """Plaintext detach_request during attach (pre-context) detaches."""
    testbed = Testbed(implementation)
    testbed.add_ue("victim")
    victim = testbed.station("victim")
    attacker = Attacker(testbed)
    attacker.install_drop_filter("victim", (c.AUTHENTICATION_REQUEST,))
    victim.ue.power_on()
    victim.link.interceptor = None
    attacker.cut_network("victim")
    attacker.inject_plain_to_ue("victim", c.DETACH_REQUEST,
                                {"reattach": 0})
    detached = victim.ue.emm_state == c.EMM_DEREGISTERED
    return AttackResult(
        "PRIOR-detach-downgrade", implementation, detached,
        ("pre-context plaintext detach_request accepted (TS 24.301 "
         "4.4.4.2 exception); UE detached" if detached
         else f"UE in {victim.ue.emm_state}"),
        {"ue_state": victim.ue.emm_state},
    )


@attack("PRIOR-service-denial")
def prior_service_denial(implementation: str) -> AttackResult:
    """Injected attach_reject mid-attach denies service."""
    testbed = Testbed(implementation)
    testbed.add_ue("victim")
    victim = testbed.station("victim")
    attacker = Attacker(testbed)
    attacker.install_drop_filter("victim", (c.AUTHENTICATION_REQUEST,))
    victim.ue.power_on()
    victim.link.interceptor = None
    attacker.cut_network("victim")
    attacker.inject_plain_to_ue("victim", c.ATTACH_REJECT,
                                {"cause": c.CAUSE_PLMN_NOT_ALLOWED})
    denied = victim.ue.emm_state == c.EMM_DEREGISTERED_ATTACH_NEEDED
    return AttackResult(
        "PRIOR-service-denial", implementation, denied,
        ("plaintext attach_reject accepted mid-attach; service denied"
         if denied else f"UE in {victim.ue.emm_state}"),
        {"ue_state": victim.ue.emm_state},
    )


@attack("PRIOR-linkability-guti")
def prior_guti_linkability(implementation: str) -> AttackResult:
    """GUTI persistence (forced by P3-style dropping) links a user across
    observation windows."""
    testbed = Testbed(implementation)
    testbed.add_ue("victim")
    testbed.attach_all()
    victim = testbed.station("victim")
    attacker = Attacker(testbed)
    guti_before = str(victim.ue.current_guti)
    attacker.install_drop_filter("victim", (c.GUTI_REALLOCATION_COMMAND,))
    victim.mme.initiate_guti_reallocation()
    for _ in range(6):
        testbed.advance(10.0)
    guti_after = str(victim.ue.current_guti)
    linkable = guti_before == guti_after
    return AttackResult(
        "PRIOR-linkability-guti", implementation, linkable,
        (f"GUTI {guti_before} survives a denied reallocation; repeated "
         f"paging observations link the user" if linkable
         else "GUTI changed"),
        {"guti_before": guti_before, "guti_after": guti_after},
    )


#: the 14 prior-attack identifiers, in Table I order
PRIOR_ATTACK_IDS = (
    "PRIOR-auth-sync-failure",
    "PRIOR-stealthy-kickoff",
    "PRIOR-panic",
    "PRIOR-linkability-tmsi-realloc",
    "PRIOR-linkability-imsi-paging",
    "PRIOR-linkability-auth-sync",
    "PRIOR-auth-relay",
    "PRIOR-numb",
    "PRIOR-downgrade-tau-reject",
    "PRIOR-denial-all-services",
    "PRIOR-paging-hijack",
    "PRIOR-detach-downgrade",
    "PRIOR-service-denial",
    "PRIOR-linkability-guti",
)
