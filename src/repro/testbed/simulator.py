"""The software testbed (the paper's SDR + srsLTE lab, simulated).

A :class:`Testbed` stands up one or more UEs — each on its own radio link
to its own MME endpoint, all MMEs sharing one HSS/subscriber database —
plus an :class:`repro.testbed.attacker.Attacker` that can sniff every
link, cut MME↔UE paths, and inject crafted or captured frames.  Attack
scripts (:mod:`repro.testbed.attacks`) drive exactly the message sequence
of the paper's counterexamples against the *real* Python implementations,
which is the validation step ProChecker performs "on the testbed" after
the CPV confirms a counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .. import faults
from ..lte.channel import RadioLink
from ..lte.hss import Hss
from ..lte.identifiers import Subscriber, make_subscriber
from ..lte.implementations import REGISTRY
from ..lte.mme import MmeNas
from ..lte.timers import SimClock


@dataclass
class UeStation:
    """One UE with its dedicated link and serving MME endpoint."""

    name: str
    subscriber: Subscriber
    link: RadioLink
    ue: object
    mme: MmeNas


class Testbed:
    """A lab with one shared core network and N UEs."""

    __test__ = False   # not a pytest collection target despite the name

    def __init__(self, implementation: str = "reference"):
        if implementation not in REGISTRY:
            raise ValueError(f"unknown implementation {implementation!r}")
        self.implementation = implementation
        self.ue_class = REGISTRY[implementation]
        self.clock = SimClock()
        self.hss = Hss()
        self.stations: Dict[str, UeStation] = {}
        self._msin_counter = 0

    # ------------------------------------------------------------------
    def add_ue(self, name: str, policy=None) -> UeStation:
        """Provision a subscriber and stand up its UE + MME endpoint."""
        if name in self.stations:
            raise ValueError(f"duplicate UE name {name!r}")
        self._msin_counter += 1
        subscriber = make_subscriber(str(self._msin_counter).zfill(9))
        self.hss.provision(subscriber)
        link = RadioLink()
        mme = MmeNas(self.hss, link, clock=self.clock)
        ue = self.ue_class(subscriber, link, clock=self.clock,
                           policy=policy)
        station = UeStation(name, subscriber, link, ue, mme)
        self.stations[name] = station
        return station

    def station(self, name: str) -> UeStation:
        try:
            return self.stations[name]
        except KeyError:
            raise ValueError(f"unknown UE {name!r}") from None

    def attach_all(self) -> None:
        for station in self.stations.values():
            station.ue.power_on()

    def advance(self, seconds: float) -> int:
        faults.trip("testbed.advance")
        return self.clock.advance(seconds)
